//! # Koios: exact top-k semantic overlap set search
//!
//! This is the facade crate of the Koios workspace, a from-scratch Rust
//! reproduction of *"Koios: Top-k Semantic Overlap Set Search"* (ICDE 2023).
//!
//! The **semantic overlap** `SO(Q, C)` of two sets is the score of a maximum
//! weight bipartite matching between their elements, where edge weights are
//! a user-defined element similarity (cosine of embeddings, q-gram Jaccard,
//! edit similarity, …) thresholded at `α`. Koios answers top-k queries under
//! this measure *exactly* while running the cubic matching verification for
//! only a few percent of the candidate sets, thanks to a filter–verification
//! pipeline of incrementally maintained lower/upper bounds.
//!
//! ## Quick start
//!
//! Import everything through [`prelude`]; its module docs compile the
//! README quick-start snippet verbatim (build a repository, attach
//! synthetic embeddings, search top-k under semantic overlap), so start
//! there.
//!
//! ## Serving queries
//!
//! Long-lived applications should not rebuild an engine per query. Wrap an
//! owned engine in a [`SearchService`](service::SearchService): it runs
//! requests on a persistent worker pool fed by a submission queue
//! (submit-then-await via [`submit`](service::SearchService::submit), or
//! batch via [`search_batch`](service::SearchService::search_batch)),
//! enforces per-request deadlines, answers repeated queries from a
//! TTL-aware LRU result cache, and shares complete per-element kNN lists
//! across *overlapping* queries through a
//! [`TokenKnnCache`](index::knn_cache::TokenKnnCache) (see
//! `ARCHITECTURE.md` for the seam). To serve remote clients, put a
//! [`KoiosServer`](net::KoiosServer) in front of the service: a
//! dependency-free HTTP/1.1 listener exposing `POST /search`,
//! `GET /stats`, `GET /healthz` and `POST /invalidate` over a JSON wire
//! contract ([`net::wire`]).
//!
//! ## Restarting without a rebuild
//!
//! All of that state — repository, token vectors, inverted indexes — is
//! durable: snapshot a backend with
//! [`EngineBackend::write_snapshot`](core::EngineBackend::write_snapshot)
//! (a versioned, checksummed binary format, see [`store`]) and any later
//! process warm-starts it with
//! [`EngineBackend::from_snapshot`](core::EngineBackend::from_snapshot) or
//! [`SearchService::from_snapshot`](service::SearchService::from_snapshot)
//! — byte-identical results, a fraction of the build time, on both the
//! single and the sharded layout.
//!
//! ## Observability
//!
//! The stack measures itself with [`telemetry`]: lock-free counters,
//! gauges and log2-bucketed histograms behind a named registry that
//! renders Prometheus text exposition. A [`SearchService`](service::SearchService)
//! keeps per-stage latency histograms under the paper's pipeline names
//! (`refine`/`verify`/`postprocess`/`merge`), per-shard search times,
//! worker-queue depth and wait, and cache mutex lock-wait; scrape them via
//! `GET /metrics` on the server or
//! [`render_metrics`](service::SearchService::render_metrics) in process,
//! and catch outliers with the structured slow-query log
//! ([`service::slowlog`]).
//!
//! Every request additionally records a **span tree**
//! ([`telemetry::trace`]): queue wait, cache probes, the shard-executor
//! batch, the refine/verify/merge stage breakdown, and epoch-stamped
//! mutation spans, all under one trace id that propagates across the HTTP
//! boundary via a `traceparent`-style header. A tail-based sampler keeps
//! the interesting traces (timeouts, rejections, slow and top-percentile
//! requests, plus a deterministic random sample) in a fixed ring served by
//! `GET /traces`; slow-log lines and `/metrics` exemplars carry the
//! joinable `trace_id`. See the "Observability" section of
//! `ARCHITECTURE.md` for the full instrument map.
//!
//! ```
//! use koios::prelude::*;
//! use std::sync::Arc;
//!
//! let mut builder = RepositoryBuilder::new();
//! builder.add_set("c1", ["LA", "Blain", "Appleton"]);
//! builder.add_set("c2", ["LA", "Sacramento", "SC"]);
//! let repo = Arc::new(builder.build());
//!
//! let service = SearchService::new(
//!     Arc::clone(&repo),
//!     Arc::new(EqualitySimilarity),
//!     KoiosConfig::new(1, 0.9),
//!     ServiceConfig::new().with_workers(2),
//! );
//! let query = repo.intern_query(["LA", "Blain"]);
//! let first = service.search(SearchRequest::new(query.clone()));
//! let second = service.search(SearchRequest::new(query)); // identical query
//! assert_eq!(first.cache, CacheOutcome::Miss);
//! assert_eq!(second.cache, CacheOutcome::Hit);
//! assert_eq!(first.result.hits, second.result.hits);
//! assert_eq!(service.stats().cache_hits, 1);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`common`] | `koios-common` | ids, ordered similarities, top-k lists, memory accounting |
//! | [`matching`] | `koios-matching` | greedy + Hungarian matching, early termination |
//! | [`embed`] | `koios-embed` | embeddings and element similarity functions |
//! | [`index`] | `koios-index` | inverted index, kNN sources, token stream |
//! | [`datagen`] | `koios-datagen` | synthetic corpora, dataset profiles, query benchmarks |
//! | [`core`] | `koios-core` | the Koios search engine (refinement + post-processing) |
//! | [`baselines`] | `koios-baselines` | exhaustive baseline, SilkMoth, vanilla top-k |
//! | [`store`] | `koios-store` | versioned binary snapshots: save query-ready state, warm-start restore |
//! | [`telemetry`] | `koios-telemetry` | lock-free counters/gauges/histograms, registry, Prometheus text rendering |
//! | [`service`] | `koios-service` | concurrent query serving: persistent worker pool, result cache, stats |
//! | [`net`] | `koios-net` | HTTP/1.1 front-end: server over `std::net`, JSON wire contract, blocking client |

pub use koios_baselines as baselines;
pub use koios_common as common;
pub use koios_core as core;
pub use koios_datagen as datagen;
pub use koios_embed as embed;
pub use koios_index as index;
pub use koios_matching as matching;
pub use koios_net as net;
pub use koios_service as service;
pub use koios_store as store;
pub use koios_telemetry as telemetry;

/// One-stop imports for applications.
///
/// This compiles the README quick start verbatim, so the snippet can never
/// rot:
///
/// ```
/// use koios::prelude::*;
/// use std::sync::Arc;
///
/// let mut builder = RepositoryBuilder::new();
/// builder.add_set("c1", ["LA", "Blain", "Appleton", "MtPleasant"]);
/// builder.add_set("c2", ["LA", "Sacramento", "Blain", "SC", "NewYorkCity"]);
/// let mut repo = builder.build();
///
/// let embeddings = SyntheticEmbeddings::builder()
///     .dimensions(32)
///     .seed(7)
///     .synonyms(&mut repo, &[&["NewYorkCity", "BigApple"], &["LA", "WestCoast"]])
///     .build(&repo);
/// let sim = Arc::new(CosineSimilarity::new(Arc::new(embeddings)));
///
/// let engine = Koios::new(&repo, sim, KoiosConfig::new(1, 0.7));
/// let query = repo.intern_query(["LA", "Blaine", "BigApple", "Charleston"]);
/// let result = engine.search(&query);
/// # assert_eq!(result.hits.len(), 1);
/// ```
pub mod prelude {
    pub use koios_common::prelude::*;
    pub use koios_core::{
        cosine_factory, EngineBackend, Hit, Koios, KoiosConfig, MutableEngine, OwnedKoios,
        OwnedPartitionedKoios, PartitionedKoios, ScoreBound, SearchResult, ShardExecutor,
        SharedTheta, SimFactory, UbMode,
    };
    pub use koios_embed::ops::CorpusOp;
    pub use koios_embed::repository::{RepoRef, Repository, RepositoryBuilder};
    pub use koios_embed::sim::{
        CosineSimilarity, EditSimilarity, ElementSimilarity, EqualitySimilarity, QGramJaccard,
    };
    pub use koios_embed::synthetic::SyntheticEmbeddings;
    pub use koios_index::knn_cache::{KnnCacheSnapshot, TokenKnnCache};
    pub use koios_matching::{solve_max_matching, MatchOutcome};
    pub use koios_net::{KoiosClient, KoiosServer};
    pub use koios_service::{
        CacheOutcome, IngestOutcome, LiveServiceError, ResponseHandle, SearchRequest,
        SearchService, ServiceConfig, ServiceResponse, ServiceStats, SnapshotInfo,
    };
    pub use koios_store::{SnapshotLayout, SnapshotMeta, StoreError};
    pub use koios_telemetry::{
        Counter, Gauge, Histogram, HistogramSnapshot, Registry, SamplingPolicy, Span, Trace,
        TraceConfig, TraceContext, TraceSink,
    };
}
