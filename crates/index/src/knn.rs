//! Per-query-element kNN sources over the vocabulary.
//!
//! The paper plugs a GPU Faiss index into the token stream; any index that
//! returns, for a query element, the vocabulary tokens in exact descending
//! similarity order can take its place (§IV: "K OIOS returns an exact
//! solution as long as the index returns exact results"). Two exact
//! implementations are provided:
//!
//! * [`ExactScanKnn`] — on the first probe of a query element, scores the
//!   whole vocabulary, keeps everything `≥ α`, and sorts it once; subsequent
//!   probes pop from the sorted list. Best when streams are consumed far.
//! * [`HeapKnn`] — same scoring pass but keeps a lazy max-heap instead of
//!   sorting; cheaper when the search prunes early and most of the stream
//!   is never pulled.
//!
//! Both honour the stream contract of §V: the **query element itself is the
//! first result of its own probe** (similarity 1), which seeds the bounds
//! with the vanilla overlap and covers out-of-vocabulary elements.

use koios_common::{HeapSize, TokenId};
use koios_embed::sim::ElementSimilarity;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A source of descending-similarity `(token, sim)` pairs per query element.
pub trait KnnSource {
    /// The next most similar unseen vocabulary token for query element
    /// `q_idx` (an index into the query token vector), or `None` once all
    /// tokens with similarity `≥ α` are exhausted.
    fn next(&mut self, q_idx: usize) -> Option<(TokenId, f64)>;

    /// Estimated heap bytes held by the source (for the memory experiments).
    fn heap_bytes(&self) -> usize;

    /// Token-cache effectiveness of this source, if it is (or wraps) a
    /// [`CachedKnn`](crate::knn_cache::CachedKnn). Plain sources report
    /// `None`; the engine folds `Some` counters into its `SearchStats`.
    fn cache_counters(&self) -> Option<crate::knn_cache::KnnCacheSearchStats> {
        None
    }
}

/// Shared scoring pass: all vocabulary tokens with `simα(q, t) ≥ α`,
/// the query token itself always included (sim 1.0, emitted first via the
/// ordinary descending order). Delegates to the similarity's batch scan
/// ([`ElementSimilarity::scores_above`]) so columnar implementations can
/// avoid per-pair dispatch.
fn score_vocab(
    sim: &Arc<dyn ElementSimilarity>,
    vocab: usize,
    q: TokenId,
    alpha: f64,
) -> Vec<(f64, TokenId)> {
    let mut out = Vec::new();
    sim.scores_above(q, vocab, alpha, &mut out);
    out
}

/// Exact scan source with fully sorted per-element lists (computed lazily on
/// the first probe of each element).
pub struct ExactScanKnn {
    sim: Arc<dyn ElementSimilarity>,
    query: Vec<TokenId>,
    vocab: usize,
    alpha: f64,
    lists: Vec<Option<SortedList>>,
}

struct SortedList {
    /// Descending by similarity, ties by ascending token id.
    items: Vec<(f64, TokenId)>,
    pos: usize,
}

impl ExactScanKnn {
    /// Creates a source for `query` over a vocabulary of `vocab` tokens.
    pub fn new(
        sim: Arc<dyn ElementSimilarity>,
        query: Vec<TokenId>,
        vocab: usize,
        alpha: f64,
    ) -> Self {
        let lists = (0..query.len()).map(|_| None).collect();
        ExactScanKnn {
            sim,
            query,
            vocab,
            alpha,
            lists,
        }
    }
}

impl KnnSource for ExactScanKnn {
    fn next(&mut self, q_idx: usize) -> Option<(TokenId, f64)> {
        let list = self.lists[q_idx].get_or_insert_with(|| {
            let mut items = score_vocab(&self.sim, self.vocab, self.query[q_idx], self.alpha);
            items.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("similarities are never NaN")
                    .then_with(|| a.1.cmp(&b.1))
            });
            SortedList { items, pos: 0 }
        });
        let &(s, t) = list.items.get(list.pos)?;
        list.pos += 1;
        Some((t, s))
    }

    fn heap_bytes(&self) -> usize {
        self.query.heap_size()
            + self
                .lists
                .iter()
                .flatten()
                .map(|l| l.items.capacity() * std::mem::size_of::<(f64, TokenId)>())
                .sum::<usize>()
    }
}

/// Exact source backed by lazy max-heaps (no full sort).
pub struct HeapKnn {
    sim: Arc<dyn ElementSimilarity>,
    query: Vec<TokenId>,
    vocab: usize,
    alpha: f64,
    heaps: Vec<Option<BinaryHeap<HeapItem>>>,
}

#[derive(PartialEq)]
struct HeapItem(f64, TokenId);

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("similarities are never NaN")
            // Max-heap pops the highest similarity; among ties, the lowest
            // token id (Reverse ordering on the id).
            .then_with(|| other.1.cmp(&self.1))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl HeapKnn {
    /// Creates a heap-backed source for `query`.
    pub fn new(
        sim: Arc<dyn ElementSimilarity>,
        query: Vec<TokenId>,
        vocab: usize,
        alpha: f64,
    ) -> Self {
        let heaps = (0..query.len()).map(|_| None).collect();
        HeapKnn {
            sim,
            query,
            vocab,
            alpha,
            heaps,
        }
    }
}

impl KnnSource for HeapKnn {
    fn next(&mut self, q_idx: usize) -> Option<(TokenId, f64)> {
        let heap = self.heaps[q_idx].get_or_insert_with(|| {
            score_vocab(&self.sim, self.vocab, self.query[q_idx], self.alpha)
                .into_iter()
                .map(|(s, t)| HeapItem(s, t))
                .collect()
        });
        heap.pop().map(|HeapItem(s, t)| (t, s))
    }

    fn heap_bytes(&self) -> usize {
        self.query.heap_size()
            + self
                .heaps
                .iter()
                .flatten()
                .map(|h| h.capacity() * std::mem::size_of::<HeapItem>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::QGramJaccard;

    fn setup() -> (Arc<dyn ElementSimilarity>, Vec<TokenId>, usize) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s", ["Blaine", "Blain", "Blainey", "Zurich", "Zurch"]);
        let repo = b.build();
        let q = repo.intern_query(["Blaine", "Zurich"]);
        let vocab = repo.vocab_size();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&repo, 3));
        (sim, q, vocab)
    }

    fn drain(src: &mut dyn KnnSource, q_idx: usize) -> Vec<(TokenId, f64)> {
        let mut out = Vec::new();
        while let Some(x) = src.next(q_idx) {
            out.push(x);
        }
        out
    }

    #[test]
    fn first_result_is_self_token() {
        let (sim, q, vocab) = setup();
        let q0 = q[0];
        let mut src = ExactScanKnn::new(sim, q, vocab, 0.3);
        let (t, s) = src.next(0).unwrap();
        assert_eq!(t, q0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn results_descend_and_respect_alpha() {
        let (sim, q, vocab) = setup();
        let mut src = ExactScanKnn::new(sim, q, vocab, 0.3);
        for q_idx in 0..2 {
            let items = drain(&mut src, q_idx);
            assert!(!items.is_empty());
            for w in items.windows(2) {
                assert!(w[0].1 >= w[1].1, "descending order violated");
            }
            for (i, &(_, s)) in items.iter().enumerate() {
                if i > 0 {
                    assert!(s >= 0.3, "sub-alpha similarity leaked: {s}");
                }
            }
        }
    }

    #[test]
    fn heap_and_scan_agree() {
        let (sim, q, vocab) = setup();
        let mut a = ExactScanKnn::new(sim.clone(), q.clone(), vocab, 0.2);
        let mut b = HeapKnn::new(sim, q, vocab, 0.2);
        for q_idx in 0..2 {
            assert_eq!(drain(&mut a, q_idx), drain(&mut b, q_idx));
        }
    }

    #[test]
    fn exhausted_source_stays_exhausted() {
        let (sim, q, vocab) = setup();
        let mut src = HeapKnn::new(sim, q, vocab, 0.99);
        let items = drain(&mut src, 0);
        // Only the self token survives a 0.99 threshold.
        assert_eq!(items.len(), 1);
        assert!(src.next(0).is_none());
        assert!(src.next(0).is_none());
    }

    #[test]
    fn heap_bytes_nonzero_after_probe() {
        let (sim, q, vocab) = setup();
        let mut src = ExactScanKnn::new(sim, q, vocab, 0.1);
        src.next(0);
        assert!(src.heap_bytes() > 0);
    }
}
