//! Index substrate for Koios (paper §IV).
//!
//! Two structures drive the refinement phase:
//!
//! * the **inverted index** `Is` ([`inverted::InvertedIndex`]), mapping each
//!   vocabulary token to the sets containing it, and
//! * the **token stream** `Ie` ([`token_stream::TokenStream`]), which emits
//!   `(query element, vocabulary token, similarity)` tuples in globally
//!   descending similarity order until the similarity falls below `α`.
//!
//! The stream is realised exactly as the paper describes: one [`knn`] source
//! per query element (the paper uses a GPU Faiss index; we provide exact
//! in-memory equivalents, see DESIGN.md §3) merged through a priority queue
//! of size `|Q|`, with the query element itself emitted first so vanilla
//! overlap seeds the bounds and out-of-vocabulary elements are handled.
//!
//! Because per-element kNN lists depend only on `(token, α)` — never on the
//! rest of the query — they repeat across *similar* queries. The
//! [`knn_cache`] module exploits that seam: [`TokenKnnCache`] shares
//! complete per-element lists across searches and [`CachedKnn`] wraps any
//! source with transparent probe/record caching.

pub mod inverted;
pub mod knn;
pub mod knn_cache;
pub mod live;
pub mod minhash;
pub mod token_stream;

pub use inverted::InvertedIndex;
pub use knn::{ExactScanKnn, HeapKnn, KnnSource};
pub use knn_cache::{
    CachedKnn, KnnCacheCounters, KnnCacheSearchStats, KnnCacheSnapshot, TokenKnnCache,
};
pub use live::{apply_op, Applied, LiveError};
pub use minhash::{MinHashIndex, MinHashKnn, MinHashParams};
pub use token_stream::{StreamTuple, TokenStream};
