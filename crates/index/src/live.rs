//! Applying corpus mutations to query-ready state.
//!
//! [`apply_op`] is the **one** implementation of "what a [`CorpusOp`] does
//! to a repository, its embeddings and its indexes". Three very different
//! callers replay ops through it — the mutable engine in `koios-core`
//! (live ingest), the snapshot delta replay in `koios-store` (warm
//! restart), and cold-rebuild references in tests and benches — and the
//! mutate-equals-rebuild guarantee holds precisely because they cannot
//! diverge on the semantics.
//!
//! Determinism contract: given the same starting state and the same op
//! sequence, every replay assigns identical set ids (appends claim dense
//! ids), identical token ids (the interner is append-only), identical
//! embedding bit patterns (raw `f32` rows, never re-normalised), and
//! identical index contents (postings spliced in sorted order, MinHash
//! signatures folded with the build-time permutation family).

use crate::inverted::InvertedIndex;
use crate::minhash::{token_grams, MinHashIndex};
use koios_common::SetId;
use koios_embed::ops::CorpusOp;
use koios_embed::repository::Repository;
use koios_embed::vectors::Embeddings;

/// Q-gram width used when patching MinHash signatures for newly interned
/// tokens (matches [`crate::minhash::vocabulary_grams`]'s conventional
/// width in this workspace).
pub const MINHASH_GRAM_WIDTH: usize = 3;

/// What one applied op changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// A set was appended under this id.
    Inserted(SetId),
    /// This set was tombstoned.
    Removed(SetId),
}

/// A rejected mutation. Every variant is a caller error (bad op), not a
/// state corruption: the op is rejected **before** any state is touched,
/// so a failed batch leaves repository, embeddings and indexes unchanged
/// up to the failing op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// `Remove` named a set that does not exist or is already tombstoned.
    UnknownSet(SetId),
    /// An embedding row's length does not match the table dimensionality.
    DimMismatch {
        /// The token the row was supplied for.
        token: String,
        /// Supplied row length.
        got: usize,
        /// The embedding table's dimensionality.
        expected: usize,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::UnknownSet(s) => {
                write!(
                    f,
                    "cannot remove set {}: not present or already removed",
                    s.0
                )
            }
            LiveError::DimMismatch {
                token,
                got,
                expected,
            } => write!(
                f,
                "embedding row for {token:?} has {got} values, table dimensionality is {expected}"
            ),
        }
    }
}

impl std::error::Error for LiveError {}

/// Applies one [`CorpusOp`] to a repository plus its derived state.
///
/// `indexes` are the per-shard inverted indexes (one entry for a single-
/// index engine); `route` maps a set id to the shard that owns it (`|_| 0`
/// for single engines, the deterministic partitioner for sharded ones).
/// Every index is grown to the post-op vocabulary so `num_tokens` stays
/// aligned with `vocab_size` on all shards, not just the owning one.
///
/// Validation runs before mutation: a returned error means nothing
/// changed.
pub fn apply_op(
    repo: &mut Repository,
    embeddings: Option<&mut Embeddings>,
    indexes: &mut [&mut InvertedIndex],
    minhash: Option<&mut MinHashIndex>,
    route: &dyn Fn(SetId) -> usize,
    op: &CorpusOp,
) -> Result<Applied, LiveError> {
    match op {
        CorpusOp::Insert {
            name,
            tokens,
            vectors,
        } => {
            if let Some(emb) = embeddings.as_deref() {
                for (token, row) in vectors {
                    if row.len() != emb.dim() {
                        return Err(LiveError::DimMismatch {
                            token: token.clone(),
                            got: row.len(),
                            expected: emb.dim(),
                        });
                    }
                }
            }
            let vocab_before = repo.vocab_size();
            let id = repo.append_set(name, tokens);
            let vocab_after = repo.vocab_size();
            if let Some(emb) = embeddings {
                emb.grow(vocab_after);
                for (token, row) in vectors {
                    // Rows apply only to tokens this op interned: existing
                    // vectors are immutable, so a replay can never
                    // retroactively change already-served scores.
                    match repo.token_id(token) {
                        Some(t) if t.idx() >= vocab_before => emb.set_raw_row(t, row),
                        _ => {}
                    }
                }
            }
            if let Some(mh) = minhash {
                for t in vocab_before..vocab_after {
                    let s = repo.token_str(koios_common::TokenId(t as u32));
                    mh.insert_signature(&token_grams(s, MINHASH_GRAM_WIDTH));
                }
            }
            let owner = route(id);
            for (shard, index) in indexes.iter_mut().enumerate() {
                index.grow_vocab(vocab_after);
                if shard == owner {
                    index.insert_postings(id, repo.set(id));
                }
            }
            Ok(Applied::Inserted(id))
        }
        CorpusOp::Remove { set } => {
            if !repo.is_live(*set) {
                return Err(LiveError::UnknownSet(*set));
            }
            let tokens = repo.set(*set).to_vec();
            repo.remove_set(*set);
            let owner = route(*set);
            if let Some(index) = indexes.get_mut(owner) {
                index.remove_set(*set, &tokens);
            }
            if let Some(mh) = minhash {
                mh.remove_set(*set); // documented no-op (token-level index)
            }
            Ok(Applied::Removed(*set))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_common::TokenId;
    use koios_embed::repository::RepositoryBuilder;

    fn base() -> (Repository, Embeddings) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b"]);
        b.add_set("s1", ["b", "c"]);
        let repo = b.build();
        let mut emb = Embeddings::new(2, repo.vocab_size());
        for t in 0..repo.vocab_size() as u32 {
            emb.set(TokenId(t), &[1.0, t as f64]);
        }
        (repo, emb)
    }

    #[test]
    fn insert_then_remove_equals_cold_rebuild() {
        let (mut repo, mut emb) = base();
        let mut index = InvertedIndex::build(&repo);
        let ops = vec![
            CorpusOp::Insert {
                name: "s2".into(),
                tokens: vec!["c".into(), "d".into()],
                vectors: vec![("d".into(), vec![0.6, 0.8])],
            },
            CorpusOp::remove(SetId(0)),
        ];
        for op in &ops {
            apply_op(
                &mut repo,
                Some(&mut emb),
                &mut [&mut index],
                None,
                &|_| 0,
                op,
            )
            .unwrap();
        }
        // Cold rebuild: replay the same ops onto a fresh copy of the base.
        let (mut repo2, mut emb2) = base();
        let mut index2 = InvertedIndex::build(&repo2);
        for op in &ops {
            apply_op(
                &mut repo2,
                Some(&mut emb2),
                &mut [&mut index2],
                None,
                &|_| 0,
                op,
            )
            .unwrap();
        }
        assert_eq!(repo.num_sets(), repo2.num_sets());
        assert_eq!(emb.raw_data(), emb2.raw_data());
        assert_eq!(emb.present_mask(), emb2.present_mask());
        for t in 0..repo.vocab_size() as u32 {
            assert_eq!(index.postings(TokenId(t)), index2.postings(TokenId(t)));
        }
        // And equals a from-scratch InvertedIndex over the mutated repo.
        let fresh = InvertedIndex::build(&repo);
        assert_eq!(index.total_postings(), fresh.total_postings());
        for t in 0..repo.vocab_size() as u32 {
            assert_eq!(index.postings(TokenId(t)), fresh.postings(TokenId(t)));
        }
    }

    #[test]
    fn bad_ops_are_rejected_without_mutation() {
        let (mut repo, mut emb) = base();
        let mut index = InvertedIndex::build(&repo);
        let sets_before = repo.num_sets();
        let vocab_before = repo.vocab_size();

        let err = apply_op(
            &mut repo,
            Some(&mut emb),
            &mut [&mut index],
            None,
            &|_| 0,
            &CorpusOp::remove(SetId(99)),
        )
        .unwrap_err();
        assert_eq!(err, LiveError::UnknownSet(SetId(99)));

        let err = apply_op(
            &mut repo,
            Some(&mut emb),
            &mut [&mut index],
            None,
            &|_| 0,
            &CorpusOp::Insert {
                name: "bad".into(),
                tokens: vec!["zz".into()],
                vectors: vec![("zz".into(), vec![1.0, 2.0, 3.0])],
            },
        )
        .unwrap_err();
        assert!(matches!(err, LiveError::DimMismatch { .. }), "{err}");
        assert_eq!(repo.num_sets(), sets_before);
        assert_eq!(repo.vocab_size(), vocab_before);
        assert_eq!(emb.vocab(), vocab_before);
    }

    #[test]
    fn existing_vectors_are_immutable() {
        let (mut repo, mut emb) = base();
        let a_row = emb.get(repo.token_id("a").unwrap()).unwrap().to_vec();
        let mut index = InvertedIndex::build(&repo);
        apply_op(
            &mut repo,
            Some(&mut emb),
            &mut [&mut index],
            None,
            &|_| 0,
            &CorpusOp::Insert {
                name: "s2".into(),
                tokens: vec!["a".into()],
                vectors: vec![("a".into(), vec![9.0, 9.0])],
            },
        )
        .unwrap();
        assert_eq!(
            emb.get(repo.token_id("a").unwrap()).unwrap(),
            &a_row[..],
            "row for an existing token must be ignored"
        );
    }

    #[test]
    fn partitioned_routing_updates_only_the_owner_shard() {
        let (mut repo, _) = base();
        let mut i0 = InvertedIndex::build_subset(&repo, [SetId(0)]);
        let mut i1 = InvertedIndex::build_subset(&repo, [SetId(1)]);
        let applied = apply_op(
            &mut repo,
            None,
            &mut [&mut i0, &mut i1],
            None,
            &|id| (id.0 % 2) as usize,
            &CorpusOp::insert("s2", ["a", "e"]),
        )
        .unwrap();
        assert_eq!(applied, Applied::Inserted(SetId(2)));
        let a = repo.token_id("a").unwrap();
        // SetId(2) routes to shard 0; shard 1 must only have grown.
        assert!(i0.postings(a).contains(&SetId(2)));
        assert!(!i1.postings(a).contains(&SetId(2)));
        assert_eq!(i0.num_tokens(), repo.vocab_size());
        assert_eq!(i1.num_tokens(), repo.vocab_size());
    }
}
