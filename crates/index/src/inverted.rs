//! The inverted index `Is`: token → sets containing it.
//!
//! Posting lists are built once per repository (the paper builds them
//! "on the fly" per dataset, 1.3–80 s) and shared by all searches. The
//! space is linear in the input: `|D|` keys plus `Σ|C|` postings (§VII-B).

use koios_common::{HeapSize, SetId, TokenId};
use koios_embed::repository::Repository;

/// Vocabulary-aligned posting lists.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Box<[SetId]>>,
    total_postings: usize,
}

impl InvertedIndex {
    /// Builds the index over every set of `repo`.
    pub fn build(repo: &Repository) -> Self {
        Self::build_subset(repo, repo.iter_sets().map(|(id, _)| id))
    }

    /// Builds the index over a subset of sets (used by partitioned search,
    /// where each partition indexes only its own sets).
    pub fn build_subset(repo: &Repository, sets: impl IntoIterator<Item = SetId>) -> Self {
        let mut lists: Vec<Vec<SetId>> = vec![Vec::new(); repo.vocab_size()];
        let mut total = 0usize;
        for id in sets {
            for &t in repo.set(id) {
                lists[t.idx()].push(id);
                total += 1;
            }
        }
        // Sets are inserted in ascending id order per token; keep as-is.
        InvertedIndex {
            postings: lists.into_iter().map(Vec::into_boxed_slice).collect(),
            total_postings: total,
        }
    }

    /// Rebuilds an index from decoded posting lists (the snapshot restore
    /// path of `koios-store`): one list per vocabulary token, each sorted
    /// ascending — exactly the layout [`Self::build`] produces and the
    /// snapshot writer reads back via [`Self::iter_postings`].
    pub fn from_postings(postings: Vec<Box<[SetId]>>) -> Self {
        let total = postings.iter().map(|p| p.len()).sum();
        InvertedIndex {
            postings,
            total_postings: total,
        }
    }

    /// Iterates every posting list in token-id order (including empty
    /// lists, so positions align with token ids — the snapshot writer
    /// relies on that alignment).
    pub fn iter_postings(&self) -> impl ExactSizeIterator<Item = &[SetId]> {
        self.postings.iter().map(|p| &**p)
    }

    /// Number of posting-list slots (the vocabulary size at build time).
    pub fn num_tokens(&self) -> usize {
        self.postings.len()
    }

    /// The sets containing token `t` (empty for unknown/query-only tokens).
    #[inline]
    pub fn postings(&self, t: TokenId) -> &[SetId] {
        self.postings.get(t.idx()).map(|p| &**p).unwrap_or(&[])
    }

    /// Number of distinct tokens with at least one posting.
    pub fn active_tokens(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Total number of postings (`Σ_C |C|`).
    pub fn total_postings(&self) -> usize {
        self.total_postings
    }

    /// Length of the longest posting list (the skew the paper highlights
    /// for WDC).
    pub fn max_posting_len(&self) -> usize {
        self.postings.iter().map(|p| p.len()).max().unwrap_or(0)
    }
}

impl HeapSize for InvertedIndex {
    fn heap_size(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Box<[SetId]>>()
            + self
                .postings
                .iter()
                .map(|p| p.len() * std::mem::size_of::<SetId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c"]);
        b.add_set("s1", ["b", "c", "d"]);
        b.add_set("s2", ["c"]);
        b.build()
    }

    #[test]
    fn postings_are_complete() {
        let r = repo();
        let idx = InvertedIndex::build(&r);
        let c = r.token_id("c").unwrap();
        assert_eq!(idx.postings(c), &[SetId(0), SetId(1), SetId(2)]);
        let a = r.token_id("a").unwrap();
        assert_eq!(idx.postings(a), &[SetId(0)]);
        assert_eq!(idx.total_postings(), 7);
        assert_eq!(idx.active_tokens(), 4);
        assert_eq!(idx.max_posting_len(), 3);
    }

    #[test]
    fn subset_index_restricts_postings() {
        let r = repo();
        let idx = InvertedIndex::build_subset(&r, [SetId(1), SetId(2)]);
        let c = r.token_id("c").unwrap();
        assert_eq!(idx.postings(c), &[SetId(1), SetId(2)]);
        let a = r.token_id("a").unwrap();
        assert!(idx.postings(a).is_empty());
    }

    #[test]
    fn from_postings_matches_build() {
        let r = repo();
        let built = InvertedIndex::build(&r);
        let restored = InvertedIndex::from_postings(built.iter_postings().map(Box::from).collect());
        assert_eq!(restored.num_tokens(), built.num_tokens());
        assert_eq!(restored.total_postings(), built.total_postings());
        assert_eq!(restored.max_posting_len(), built.max_posting_len());
        for t in 0..built.num_tokens() as u32 {
            assert_eq!(restored.postings(TokenId(t)), built.postings(TokenId(t)));
        }
    }

    #[test]
    fn unknown_token_has_empty_postings() {
        let r = repo();
        let idx = InvertedIndex::build(&r);
        assert!(idx.postings(koios_common::TokenId(999)).is_empty());
    }

    #[test]
    fn heap_size_scales_with_postings() {
        let r = repo();
        let idx = InvertedIndex::build(&r);
        assert!(idx.heap_size() >= 7 * std::mem::size_of::<SetId>());
    }
}
