//! The inverted index `Is`: token → sets containing it.
//!
//! Posting lists are built once per repository (the paper builds them
//! "on the fly" per dataset, 1.3–80 s) and shared by all searches. The
//! space is linear in the input: `|D|` keys plus `Σ|C|` postings (§VII-B).

use koios_common::{HeapSize, SetId, TokenId};
use koios_embed::repository::Repository;

/// Vocabulary-aligned posting lists.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Box<[SetId]>>,
    total_postings: usize,
}

impl InvertedIndex {
    /// Builds the index over every **live** set of `repo` (tombstoned slots
    /// are skipped, so a fresh build over a mutated repository equals an
    /// index maintained incrementally through [`Self::insert_postings`] /
    /// [`Self::remove_set`]).
    pub fn build(repo: &Repository) -> Self {
        Self::build_subset(repo, repo.iter_sets().map(|(id, _)| id))
    }

    /// Builds the index over a subset of sets (used by partitioned search,
    /// where each partition indexes only its own sets). Tombstoned ids in
    /// `sets` are skipped.
    pub fn build_subset(repo: &Repository, sets: impl IntoIterator<Item = SetId>) -> Self {
        let mut lists: Vec<Vec<SetId>> = vec![Vec::new(); repo.vocab_size()];
        let mut total = 0usize;
        for id in sets {
            if !repo.is_live(id) {
                continue;
            }
            for &t in repo.set(id) {
                lists[t.idx()].push(id);
                total += 1;
            }
        }
        // Sets are inserted in ascending id order per token; keep as-is.
        InvertedIndex {
            postings: lists.into_iter().map(Vec::into_boxed_slice).collect(),
            total_postings: total,
        }
    }

    /// Grows the posting table to cover `vocab` tokens (new slots start
    /// empty). A no-op when the table already covers them; the vocabulary
    /// is append-only, so shrinking is not supported. Live ingest calls
    /// this on every shard index when appends intern new tokens, keeping
    /// `num_tokens == vocab` — the alignment the snapshot writer asserts.
    pub fn grow_vocab(&mut self, vocab: usize) {
        while self.postings.len() < vocab {
            self.postings.push(Box::from([]));
        }
    }

    /// Splices `set` into the posting list of each of its `tokens` —
    /// in-place index maintenance for a live append. The table is grown to
    /// cover every token first. Postings stay sorted ascending: appends
    /// claim dense max ids, so this is normally a push at the end, but the
    /// insert position is searched so out-of-order maintenance (e.g. a
    /// replayed shard) stays correct. Inserting a set already present in a
    /// list is a no-op for that token.
    pub fn insert_postings(&mut self, set: SetId, tokens: &[TokenId]) {
        if let Some(max) = tokens.iter().max() {
            self.grow_vocab(max.idx() + 1);
        }
        for &t in tokens {
            let list = &mut self.postings[t.idx()];
            if list.last().is_some_and(|&last| last < set) || list.is_empty() {
                let mut v = std::mem::take(list).into_vec();
                v.push(set);
                *list = v.into_boxed_slice();
                self.total_postings += 1;
            } else if let Err(at) = list.binary_search(&set) {
                let mut v = std::mem::take(list).into_vec();
                v.insert(at, set);
                *list = v.into_boxed_slice();
                self.total_postings += 1;
            }
        }
    }

    /// Splices `set` out of the posting list of each of its `tokens` —
    /// in-place index maintenance for a live removal (the caller reads the
    /// tokens from the tombstoned repository slot). Tokens whose lists do
    /// not contain the set are ignored, so removing a set that another
    /// shard owns is harmless.
    pub fn remove_set(&mut self, set: SetId, tokens: &[TokenId]) {
        for &t in tokens {
            let Some(list) = self.postings.get_mut(t.idx()) else {
                continue;
            };
            if let Ok(at) = list.binary_search(&set) {
                let mut v = std::mem::take(list).into_vec();
                v.remove(at);
                *list = v.into_boxed_slice();
                self.total_postings -= 1;
            }
        }
    }

    /// Rebuilds an index from decoded posting lists (the snapshot restore
    /// path of `koios-store`): one list per vocabulary token, each sorted
    /// ascending — exactly the layout [`Self::build`] produces and the
    /// snapshot writer reads back via [`Self::iter_postings`].
    pub fn from_postings(postings: Vec<Box<[SetId]>>) -> Self {
        let total = postings.iter().map(|p| p.len()).sum();
        InvertedIndex {
            postings,
            total_postings: total,
        }
    }

    /// Iterates every posting list in token-id order (including empty
    /// lists, so positions align with token ids — the snapshot writer
    /// relies on that alignment).
    pub fn iter_postings(&self) -> impl ExactSizeIterator<Item = &[SetId]> {
        self.postings.iter().map(|p| &**p)
    }

    /// Number of posting-list slots (the vocabulary size at build time).
    pub fn num_tokens(&self) -> usize {
        self.postings.len()
    }

    /// The sets containing token `t` (empty for unknown/query-only tokens).
    #[inline]
    pub fn postings(&self, t: TokenId) -> &[SetId] {
        self.postings.get(t.idx()).map(|p| &**p).unwrap_or(&[])
    }

    /// Number of distinct tokens with at least one posting.
    pub fn active_tokens(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Total number of postings (`Σ_C |C|`).
    pub fn total_postings(&self) -> usize {
        self.total_postings
    }

    /// Length of the longest posting list (the skew the paper highlights
    /// for WDC).
    pub fn max_posting_len(&self) -> usize {
        self.postings.iter().map(|p| p.len()).max().unwrap_or(0)
    }

    /// Log2-bucketed histogram of non-empty posting-list lengths: bucket
    /// `b` counts lists whose length has bit width `b + 1` (bucket 0 =
    /// length 1, bucket 1 = lengths 2–3, …). The introspection view
    /// `GET /debug/engine` renders this — posting skew is the paper's
    /// first-order explanation of slow refinement on WDC-like corpora.
    pub fn posting_len_histogram(&self) -> Vec<u64> {
        let mut hist = Vec::new();
        for p in &self.postings {
            if p.is_empty() {
                continue;
            }
            let b = (usize::BITS - p.len().leading_zeros() - 1) as usize;
            if hist.len() <= b {
                hist.resize(b + 1, 0);
            }
            hist[b] += 1;
        }
        hist
    }
}

impl HeapSize for InvertedIndex {
    fn heap_size(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Box<[SetId]>>()
            + self
                .postings
                .iter()
                .map(|p| p.len() * std::mem::size_of::<SetId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c"]);
        b.add_set("s1", ["b", "c", "d"]);
        b.add_set("s2", ["c"]);
        b.build()
    }

    #[test]
    fn postings_are_complete() {
        let r = repo();
        let idx = InvertedIndex::build(&r);
        let c = r.token_id("c").unwrap();
        assert_eq!(idx.postings(c), &[SetId(0), SetId(1), SetId(2)]);
        let a = r.token_id("a").unwrap();
        assert_eq!(idx.postings(a), &[SetId(0)]);
        assert_eq!(idx.total_postings(), 7);
        assert_eq!(idx.active_tokens(), 4);
        assert_eq!(idx.max_posting_len(), 3);
        // Lengths: a→1, b→2, c→3, d→1 ⇒ bucket0 (len 1) = 2, bucket1 = 2.
        assert_eq!(idx.posting_len_histogram(), vec![2, 2]);
        let total: u64 = idx.posting_len_histogram().iter().sum();
        assert_eq!(total as usize, idx.active_tokens());
    }

    #[test]
    fn subset_index_restricts_postings() {
        let r = repo();
        let idx = InvertedIndex::build_subset(&r, [SetId(1), SetId(2)]);
        let c = r.token_id("c").unwrap();
        assert_eq!(idx.postings(c), &[SetId(1), SetId(2)]);
        let a = r.token_id("a").unwrap();
        assert!(idx.postings(a).is_empty());
    }

    #[test]
    fn from_postings_matches_build() {
        let r = repo();
        let built = InvertedIndex::build(&r);
        let restored = InvertedIndex::from_postings(built.iter_postings().map(Box::from).collect());
        assert_eq!(restored.num_tokens(), built.num_tokens());
        assert_eq!(restored.total_postings(), built.total_postings());
        assert_eq!(restored.max_posting_len(), built.max_posting_len());
        for t in 0..built.num_tokens() as u32 {
            assert_eq!(restored.postings(TokenId(t)), built.postings(TokenId(t)));
        }
    }

    #[test]
    fn unknown_token_has_empty_postings() {
        let r = repo();
        let idx = InvertedIndex::build(&r);
        assert!(idx.postings(koios_common::TokenId(999)).is_empty());
    }

    #[test]
    fn heap_size_scales_with_postings() {
        let r = repo();
        let idx = InvertedIndex::build(&r);
        assert!(idx.heap_size() >= 7 * std::mem::size_of::<SetId>());
    }

    #[test]
    fn incremental_insert_and_remove_match_fresh_build() {
        let mut r = repo();
        let mut idx = InvertedIndex::build(&r);

        // Append a set with one new token, patch the index in place.
        let id = r.append_set("s3", ["c", "e"]);
        idx.grow_vocab(r.vocab_size());
        idx.insert_postings(id, r.set(id));

        // Tombstone an existing set, splice it out.
        let dead_tokens = r.set(SetId(0)).to_vec();
        r.remove_set(SetId(0));
        idx.remove_set(SetId(0), &dead_tokens);

        // The patched index equals a cold build over the mutated repo.
        let fresh = InvertedIndex::build(&r);
        assert_eq!(idx.num_tokens(), fresh.num_tokens());
        assert_eq!(idx.total_postings(), fresh.total_postings());
        for t in 0..fresh.num_tokens() as u32 {
            assert_eq!(idx.postings(TokenId(t)), fresh.postings(TokenId(t)));
        }
    }

    #[test]
    fn insert_is_idempotent_and_remove_of_absent_is_harmless() {
        let r = repo();
        let mut idx = InvertedIndex::build(&r);
        let before = idx.total_postings();
        // Re-inserting an indexed set changes nothing.
        idx.insert_postings(SetId(1), r.set(SetId(1)));
        assert_eq!(idx.total_postings(), before);
        // Removing a set from lists that don't hold it changes nothing.
        idx.remove_set(SetId(99), r.set(SetId(0)));
        assert_eq!(idx.total_postings(), before);
        let c = r.token_id("c").unwrap();
        assert_eq!(idx.postings(c), &[SetId(0), SetId(1), SetId(2)]);
    }

    #[test]
    fn build_skips_tombstoned_sets() {
        let mut r = repo();
        r.remove_set(SetId(1));
        let idx = InvertedIndex::build(&r);
        let c = r.token_id("c").unwrap();
        assert_eq!(idx.postings(c), &[SetId(0), SetId(2)]);
        let d = r.token_id("d").unwrap();
        assert!(idx.postings(d).is_empty());
        assert_eq!(idx.total_postings(), 4);
    }
}
