//! MinHash-LSH kNN source for Jaccard element similarity.
//!
//! §IV of the paper: "when `sim` is … the Jaccard of the token set of
//! elements, the Faiss Index or **minhash LSH** can be plugged into the
//! algorithm". This module provides that plug: per-token MinHash signatures
//! over the q-gram sets, banded into LSH buckets; a probe collects the
//! query token's bucket collisions, rescores them with *exact* Jaccard, and
//! streams them in descending order.
//!
//! LSH is a recall/efficiency trade: candidates missed by every band are
//! never streamed, so Koios built on this source is exact *with respect to
//! the index's recall* (the paper's caveat: "K OIOS returns an exact
//! solution as long as the index returns exact results"). With the default
//! 32 bands × 4 rows the collision probability at Jaccard 0.8 is
//! `1 − (1 − 0.8⁴)³² ≈ 1 − 10⁻⁸`; the tests measure recall empirically
//! against the exact scan.

use crate::knn::KnnSource;
use koios_common::{HeapSize, SetId, TokenId};
use koios_embed::sim::{ElementSimilarity, QGramJaccard};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the LSH table.
#[derive(Debug, Clone, Copy)]
pub struct MinHashParams {
    /// Number of bands (`b`).
    pub bands: usize,
    /// Hash rows per band (`r`); signature length is `b·r`.
    pub rows_per_band: usize,
    /// Seed for the permutation family.
    pub seed: u64,
}

impl Default for MinHashParams {
    fn default() -> Self {
        MinHashParams {
            bands: 32,
            rows_per_band: 4,
            seed: 0x5EED,
        }
    }
}

/// Bucket occupancy of one LSH band (see [`MinHashIndex::band_occupancy`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandOccupancy {
    /// Band index (`0..params.bands`).
    pub band: usize,
    /// Distinct buckets in this band.
    pub buckets: usize,
    /// Size of the largest bucket.
    pub largest_bucket: usize,
    /// Mean bucket size (`0.0` for an empty band).
    pub mean_bucket: f64,
}

/// A MinHash-LSH index over the vocabulary's q-gram sets.
pub struct MinHashIndex {
    params: MinHashParams,
    /// Band tables: `band → bucket hash → tokens`.
    tables: Vec<HashMap<u64, Vec<TokenId>>>,
    /// Per-token signatures (row-major, `bands·rows_per_band` values).
    signatures: Vec<Box<[u64]>>,
}

impl std::fmt::Debug for MinHashIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MinHashIndex")
            .field("params", &self.params)
            .field("tokens", &self.signatures.len())
            .finish_non_exhaustive()
    }
}

/// Cheap 2-universal-ish hash of a gram under permutation `i`.
#[inline]
fn perm_hash(gram: u64, perm_seed: u64) -> u64 {
    let mut x = gram ^ perm_seed;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The seed of permutation `i` in the family `params.seed` defines — the
/// single definition both the batch build and incremental inserts fold
/// over, so a patched index is bit-identical to a rebuilt one.
#[inline]
fn perm_seed(seed: u64, i: usize) -> u64 {
    seed.wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((i as u64 + 1).wrapping_mul(0xD1B54A32D192ED03))
}

/// FNV-1a fold of one band's signature slice into its bucket key.
#[inline]
fn band_hash(slice: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &v in slice {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// MinHash signature of one gram set (all-`u64::MAX` for an empty set).
fn signature_of(grams: &[u64], params: &MinHashParams) -> Box<[u64]> {
    let sig_len = params.bands * params.rows_per_band;
    let mut sig = vec![u64::MAX; sig_len];
    for &g in grams {
        for (i, s) in sig.iter_mut().enumerate() {
            let h = perm_hash(g, perm_seed(params.seed, i));
            if h < *s {
                *s = h;
            }
        }
    }
    sig.into_boxed_slice()
}

impl MinHashIndex {
    /// Builds signatures and band tables for every token whose q-gram set
    /// is produced by `grams` (a vocabulary-aligned list).
    pub fn build(grams: &[Box<[u64]>], params: MinHashParams) -> Self {
        let signatures = grams.iter().map(|gs| signature_of(gs, &params)).collect();
        Self::from_signatures(params, signatures)
    }

    /// Rebuilds the index from per-token signatures — the snapshot restore
    /// path of `koios-store`. The band tables are derived data (a hash of
    /// each signature slice), so snapshots store only the signatures and
    /// this constructor regenerates the tables, bit-identically to
    /// [`Self::build`] on the original grams.
    ///
    /// Each signature must be `params.bands * params.rows_per_band` values
    /// long (an all-`u64::MAX` signature marks an empty gram set and is not
    /// banded, exactly as in [`Self::build`]).
    pub fn from_signatures(params: MinHashParams, signatures: Vec<Box<[u64]>>) -> Self {
        let mut tables: Vec<HashMap<u64, Vec<TokenId>>> = vec![HashMap::new(); params.bands];
        for (t, sig) in signatures.iter().enumerate() {
            if sig.iter().all(|&v| v == u64::MAX) {
                continue; // empty gram set: nothing to index
            }
            for (band, table) in tables.iter_mut().enumerate() {
                let slice = &sig[band * params.rows_per_band..(band + 1) * params.rows_per_band];
                table
                    .entry(band_hash(slice))
                    .or_default()
                    .push(TokenId(t as u32));
            }
        }
        MinHashIndex {
            params,
            tables,
            signatures,
        }
    }

    /// Appends the signature for the **next** token id (live ingest: a
    /// newly interned vocabulary token) and patches its band buckets in
    /// place — no table rebuild. The signature is folded with the same
    /// permutation family as [`Self::build`], so an index maintained this
    /// way is bit-identical to one rebuilt over the grown vocabulary.
    /// Returns the token id the signature now covers.
    pub fn insert_signature(&mut self, grams: &[u64]) -> TokenId {
        let t = TokenId(self.signatures.len() as u32);
        let sig = signature_of(grams, &self.params);
        if !sig.iter().all(|&v| v == u64::MAX) {
            for (band, table) in self.tables.iter_mut().enumerate() {
                let r = self.params.rows_per_band;
                let slice = &sig[band * r..(band + 1) * r];
                table.entry(band_hash(slice)).or_default().push(t);
            }
        }
        self.signatures.push(sig);
        t
    }

    /// Set removal is a **no-op** on this index, by design: MinHash-LSH
    /// indexes *tokens* (vocabulary q-gram sets), not sets, and the
    /// vocabulary is append-only — tombstoning a set removes none of its
    /// tokens from the corpus language. Dead sets are filtered downstream:
    /// the inverted index splices their postings out and the refinement
    /// phase skips tombstoned candidates. The method exists so mutable
    /// engines can treat every index uniformly.
    pub fn remove_set(&mut self, _set: SetId) {}

    /// The LSH parameters this index was built with.
    pub fn params(&self) -> MinHashParams {
        self.params
    }

    /// Per-token signatures in token-id order (`bands * rows_per_band`
    /// values each) — with [`Self::params`], everything
    /// [`Self::from_signatures`] needs to reconstruct the index.
    pub fn signatures(&self) -> &[Box<[u64]>] {
        &self.signatures
    }

    /// Tokens colliding with `t` in at least one band (including `t`).
    pub fn collisions(&self, t: TokenId) -> Vec<TokenId> {
        let Some(sig) = self.signatures.get(t.idx()) else {
            return Vec::new();
        };
        if sig.iter().all(|&v| v == u64::MAX) {
            return vec![t];
        }
        let mut out = Vec::new();
        for (band, table) in self.tables.iter().enumerate() {
            let r = self.params.rows_per_band;
            let slice = &sig[band * r..(band + 1) * r];
            if let Some(bucket) = table.get(&band_hash(slice)) {
                out.extend(bucket.iter().copied());
            }
        }
        out.push(t);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-band bucket occupancy: for each band, `(buckets, largest bucket,
    /// mean bucket size)`. The introspection view `GET /debug/engine`
    /// surfaces — skewed bands (one giant bucket) explain slow LSH probes
    /// the same way long postings explain slow refinement.
    pub fn band_occupancy(&self) -> Vec<BandOccupancy> {
        self.tables
            .iter()
            .enumerate()
            .map(|(band, table)| {
                let buckets = table.len();
                let largest = table.values().map(Vec::len).max().unwrap_or(0);
                let entries: usize = table.values().map(Vec::len).sum();
                BandOccupancy {
                    band,
                    buckets,
                    largest_bucket: largest,
                    mean_bucket: if buckets == 0 {
                        0.0
                    } else {
                        entries as f64 / buckets as f64
                    },
                }
            })
            .collect()
    }

    /// Estimated heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let sig: usize = self
            .signatures
            .iter()
            .map(|s| s.len() * std::mem::size_of::<u64>())
            .sum();
        let tables: usize = self.tables.iter().map(|t| t.heap_size()).sum();
        sig + tables
    }
}

/// One query element's lazily materialised candidate list plus the cursor
/// into it.
type ScoredList = (Vec<(f64, TokenId)>, usize);

/// A [`KnnSource`] that generates candidates by LSH collision and rescored
/// exact Jaccard (descending, `≥ α`, self pair first).
pub struct MinHashKnn {
    index: Arc<MinHashIndex>,
    sim: Arc<QGramJaccard>,
    query: Vec<TokenId>,
    alpha: f64,
    lists: Vec<Option<ScoredList>>,
}

impl MinHashKnn {
    /// Creates a source over a shared LSH index and the matching Jaccard
    /// similarity (same `q`, same vocabulary snapshot).
    pub fn new(
        index: Arc<MinHashIndex>,
        sim: Arc<QGramJaccard>,
        query: Vec<TokenId>,
        alpha: f64,
    ) -> Self {
        let lists = (0..query.len()).map(|_| None).collect();
        MinHashKnn {
            index,
            sim,
            query,
            alpha,
            lists,
        }
    }
}

impl KnnSource for MinHashKnn {
    fn next(&mut self, q_idx: usize) -> Option<(TokenId, f64)> {
        let (items, pos) = self.lists[q_idx].get_or_insert_with(|| {
            let q = self.query[q_idx];
            let mut items: Vec<(f64, TokenId)> = self
                .index
                .collisions(q)
                .into_iter()
                .filter_map(|t| {
                    let s = if t == q { 1.0 } else { self.sim.sim(q, t) };
                    (s >= self.alpha || t == q).then_some((s, t))
                })
                .collect();
            items.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("similarities are never NaN")
                    .then_with(|| a.1.cmp(&b.1))
            });
            (items, 0)
        });
        let &(s, t) = items.get(*pos)?;
        *pos += 1;
        Some((t, s))
    }

    fn heap_bytes(&self) -> usize {
        self.query.heap_size()
            + self
                .lists
                .iter()
                .flatten()
                .map(|(l, _)| l.capacity() * std::mem::size_of::<(f64, TokenId)>())
                .sum::<usize>()
    }
}

/// The lowercase q-gram hash set of one token string, matching
/// [`QGramJaccard`]'s tokenisation — the per-token unit of
/// [`vocabulary_grams`], exposed so live ingest can gram newly interned
/// tokens one at a time and feed [`MinHashIndex::insert_signature`].
pub fn token_grams(s: &str, q: usize) -> Box<[u64]> {
    let lower = s.to_lowercase();
    let chars: Vec<char> = lower.chars().collect();
    let hash = |cs: &[char]| {
        let mut h = 0xcbf29ce484222325u64;
        for &c in cs {
            h ^= c as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    };
    let mut grams: Vec<u64> = if chars.is_empty() {
        Vec::new()
    } else if chars.len() < q {
        vec![hash(&chars)]
    } else {
        chars.windows(q).map(hash).collect()
    };
    grams.sort_unstable();
    grams.dedup();
    grams.into_boxed_slice()
}

/// Builds lowercase q-gram hash sets for the whole vocabulary (the
/// [`MinHashIndex`] input), matching [`QGramJaccard`]'s tokenisation.
pub fn vocabulary_grams(repo: &koios_embed::repository::Repository, q: usize) -> Vec<Box<[u64]>> {
    (0..repo.vocab_size())
        .map(|i| token_grams(repo.token_str(TokenId(i as u32)), q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::ExactScanKnn;
    use koios_embed::repository::RepositoryBuilder;

    fn setup() -> (koios_embed::repository::Repository, Vec<TokenId>) {
        let mut b = RepositoryBuilder::new();
        b.add_set(
            "s",
            [
                "Blaine",
                "Blain",
                "Blainey",
                "Blaines",
                "Charleston",
                "Charlestown",
                "Columbia",
                "Columbias",
                "Zebra",
                "",
            ],
        );
        let repo = b.build();
        let q = repo.intern_query(["Blaine", "Charleston", ""]);
        (repo, q)
    }

    fn drain(src: &mut dyn KnnSource, q_idx: usize) -> Vec<(TokenId, f64)> {
        let mut out = Vec::new();
        while let Some(x) = src.next(q_idx) {
            out.push(x);
        }
        out
    }

    #[test]
    fn lsh_recall_matches_exact_scan_at_high_similarity() {
        let (repo, q) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let index = Arc::new(MinHashIndex::build(&grams, MinHashParams::default()));
        let sim = Arc::new(QGramJaccard::new(&repo, 3));
        let alpha = 0.6;
        let mut lsh = MinHashKnn::new(index, Arc::clone(&sim), q.clone(), alpha);
        let exact_sim: Arc<dyn ElementSimilarity> = sim.clone();
        let mut exact = ExactScanKnn::new(exact_sim, q.clone(), repo.vocab_size(), alpha);
        for q_idx in 0..q.len() {
            let l = drain(&mut lsh, q_idx);
            let e = drain(&mut exact, q_idx);
            // With b=32, r=4, recall at J >= 0.6 is essentially 1 on this
            // tiny vocabulary; demand exact agreement.
            assert_eq!(l, e, "q_idx={q_idx}");
        }
    }

    #[test]
    fn stream_is_descending_and_self_first() {
        let (repo, q) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let index = Arc::new(MinHashIndex::build(&grams, MinHashParams::default()));
        let sim = Arc::new(QGramJaccard::new(&repo, 3));
        let mut lsh = MinHashKnn::new(index, sim, q.clone(), 0.5);
        let items = drain(&mut lsh, 0);
        assert_eq!(items[0], (q[0], 1.0));
        for w in items.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn collisions_contain_near_duplicates() {
        let (repo, _) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let index = MinHashIndex::build(&grams, MinHashParams::default());
        let blaine = repo.token_id("Blaine").unwrap();
        let blain = repo.token_id("Blain").unwrap();
        let zebra = repo.token_id("Zebra").unwrap();
        let c = index.collisions(blaine);
        assert!(c.contains(&blain), "J=0.75 pair must collide");
        assert!(c.contains(&blaine), "self always included");
        // An unrelated token colliding in 0 bands is overwhelmingly likely
        // to be absent (probability of a false collision ≈ b·2^-64·...).
        assert!(!c.contains(&zebra));
    }

    #[test]
    fn from_signatures_reconstructs_collisions() {
        let (repo, _) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let built = MinHashIndex::build(&grams, MinHashParams::default());
        let restored = MinHashIndex::from_signatures(built.params(), built.signatures().to_vec());
        assert_eq!(restored.params().bands, built.params().bands);
        assert_eq!(restored.signatures(), built.signatures());
        for t in 0..repo.vocab_size() as u32 {
            assert_eq!(
                restored.collisions(TokenId(t)),
                built.collisions(TokenId(t)),
                "token {t}"
            );
        }
    }

    #[test]
    fn empty_gram_token_matches_only_itself() {
        let (repo, q) = setup();
        let empty = repo.token_id("").unwrap();
        let grams = vocabulary_grams(&repo, 3);
        let index = Arc::new(MinHashIndex::build(&grams, MinHashParams::default()));
        let sim = Arc::new(QGramJaccard::new(&repo, 3));
        let q_idx = q.iter().position(|&t| t == empty).unwrap();
        let mut lsh = MinHashKnn::new(index, sim, q.clone(), 0.5);
        let items = drain(&mut lsh, q_idx);
        assert_eq!(items, vec![(empty, 1.0)]);
    }

    #[test]
    fn insert_signature_matches_batch_build() {
        let (repo, _) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let full = MinHashIndex::build(&grams, MinHashParams::default());

        // Build over a prefix, then insert the remaining tokens one by one.
        let split = grams.len() / 2;
        let mut grown = MinHashIndex::build(&grams[..split], MinHashParams::default());
        for gs in &grams[split..] {
            grown.insert_signature(gs);
        }
        assert_eq!(grown.signatures(), full.signatures());
        for t in 0..repo.vocab_size() as u32 {
            assert_eq!(
                grown.collisions(TokenId(t)),
                full.collisions(TokenId(t)),
                "token {t}"
            );
        }
        // Set removal is a documented no-op on the token-level index.
        grown.remove_set(SetId(0));
        assert_eq!(grown.signatures(), full.signatures());
    }

    #[test]
    fn band_occupancy_covers_every_band() {
        let (repo, _) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let index = MinHashIndex::build(&grams, MinHashParams::default());
        let occ = index.band_occupancy();
        assert_eq!(occ.len(), MinHashParams::default().bands);
        // Every non-empty token lands in exactly one bucket per band, so
        // each band holds vocab-minus-empties entries.
        let non_empty = repo.vocab_size() - 1; // setup interns one "" token
        for row in &occ {
            assert!(row.buckets > 0 && row.buckets <= non_empty);
            assert!(row.largest_bucket >= 1);
            let entries = row.mean_bucket * row.buckets as f64;
            assert!((entries - non_empty as f64).abs() < 1e-9, "{row:?}");
        }
    }

    #[test]
    fn heap_bytes_nonzero() {
        let (repo, q) = setup();
        let grams = vocabulary_grams(&repo, 3);
        let index = Arc::new(MinHashIndex::build(&grams, MinHashParams::default()));
        assert!(index.heap_bytes() > 0);
        let sim = Arc::new(QGramJaccard::new(&repo, 3));
        let mut lsh = MinHashKnn::new(index, sim, q, 0.5);
        lsh.next(0);
        assert!(lsh.heap_bytes() > 0);
    }
}
