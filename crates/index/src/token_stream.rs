//! The token stream `Ie` (paper §IV).
//!
//! Merges the per-query-element kNN sources through a priority queue of
//! size `|Q|`: the queue holds, for every query element, its next unseen
//! most-similar vocabulary token; popping the maximum yields the globally
//! next tuple and re-probes only that element's source. Tuples therefore
//! arrive in non-increasing similarity order, which is the property every
//! refinement bound relies on. The stream ends when the best remaining
//! similarity drops below `α` (sources enforce the cutoff).

use crate::knn::KnnSource;
use koios_common::TokenId;
use std::collections::BinaryHeap;

/// One stream element: query element `q_idx` (index into the query vector)
/// is similar to vocabulary token `token` with similarity `sim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTuple {
    /// Index of the query element in the query token vector.
    pub q_idx: u32,
    /// The vocabulary token.
    pub token: TokenId,
    /// Their similarity (`≥ α`).
    pub sim: f64,
}

#[derive(PartialEq)]
struct Entry {
    sim: f64,
    q_idx: u32,
    token: TokenId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .expect("similarities are never NaN")
            // Deterministic tie-break: lower q_idx, then lower token first.
            .then_with(|| other.q_idx.cmp(&self.q_idx))
            .then_with(|| other.token.cmp(&self.token))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The merged descending token stream.
pub struct TokenStream<K: KnnSource> {
    source: K,
    heap: BinaryHeap<Entry>,
    emitted: usize,
    last_sim: f64,
}

impl<K: KnnSource> TokenStream<K> {
    /// Builds the stream over `query_len` elements, probing each source once
    /// to fill the initial queue (the paper's initialisation step).
    pub fn new(mut source: K, query_len: usize) -> Self {
        let mut heap = BinaryHeap::with_capacity(query_len);
        for q_idx in 0..query_len {
            if let Some((token, sim)) = source.next(q_idx) {
                heap.push(Entry {
                    sim,
                    q_idx: q_idx as u32,
                    token,
                });
            }
        }
        TokenStream {
            source,
            heap,
            emitted: 0,
            last_sim: f64::INFINITY,
        }
    }

    /// The next tuple in non-increasing similarity order.
    ///
    /// Named `next` deliberately (the stream is iterator-like but needs
    /// `&mut self` state the `Iterator` trait cannot capture cheaply).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<StreamTuple> {
        let top = self.heap.pop()?;
        // Refill from the popped element's source only (§IV).
        if let Some((token, sim)) = self.source.next(top.q_idx as usize) {
            self.heap.push(Entry {
                sim,
                q_idx: top.q_idx,
                token,
            });
        }
        debug_assert!(
            top.sim <= self.last_sim + 1e-12,
            "token stream order violated: {} after {}",
            top.sim,
            self.last_sim
        );
        self.last_sim = top.sim;
        self.emitted += 1;
        Some(StreamTuple {
            q_idx: top.q_idx,
            token: top.token,
            sim: top.sim,
        })
    }

    /// Number of tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The merged kNN source (e.g. to read
    /// [`KnnSource::cache_counters`] after the stream was consumed).
    pub fn source(&self) -> &K {
        &self.source
    }

    /// Estimated heap bytes of the stream (queue + sources), for the memory
    /// experiments.
    pub fn heap_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<Entry>() + self.source.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{ExactScanKnn, HeapKnn};
    use koios_common::TokenId;
    use koios_embed::repository::{Repository, RepositoryBuilder};
    use koios_embed::sim::{ElementSimilarity, QGramJaccard};
    use std::sync::Arc;

    fn setup(_alpha: f64) -> (Repository, Arc<dyn ElementSimilarity>, Vec<TokenId>) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["Blaine", "Charleston", "Columbia"]);
        b.add_set("s1", ["Blain", "Charlestown", "Columbias"]);
        b.add_set("s2", ["Blainey", "Charlton", "Col"]);
        let repo = b.build();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&repo, 3));
        let q = repo.intern_query(["Blaine", "Charleston"]);
        (repo, sim, q)
    }

    fn drain<K: KnnSource>(mut ts: TokenStream<K>) -> Vec<StreamTuple> {
        let mut out = Vec::new();
        while let Some(t) = ts.next() {
            out.push(t);
        }
        out
    }

    #[test]
    fn stream_is_descending() {
        let (repo, sim, q) = setup(0.2);
        let src = ExactScanKnn::new(sim, q.clone(), repo.vocab_size(), 0.2);
        let tuples = drain(TokenStream::new(src, q.len()));
        assert!(!tuples.is_empty());
        for w in tuples.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
    }

    #[test]
    fn stream_is_complete_vs_bruteforce() {
        let alpha = 0.2;
        let (repo, sim, q) = setup(alpha);
        let src = ExactScanKnn::new(sim.clone(), q.clone(), repo.vocab_size(), alpha);
        let tuples = drain(TokenStream::new(src, q.len()));
        // Oracle: every (q_idx, token) pair with sim >= alpha, plus the self
        // pair, appears exactly once.
        let mut expected = std::collections::HashSet::new();
        for (qi, &qt) in q.iter().enumerate() {
            for t in 0..repo.vocab_size() as u32 {
                let t = TokenId(t);
                let s = if t == qt { 1.0 } else { sim.sim(qt, t) };
                if s >= alpha || t == qt {
                    expected.insert((qi as u32, t));
                }
            }
        }
        let got: std::collections::HashSet<_> = tuples.iter().map(|t| (t.q_idx, t.token)).collect();
        assert_eq!(got.len(), tuples.len(), "duplicate tuples emitted");
        assert_eq!(got, expected);
    }

    #[test]
    fn self_tokens_emitted_first() {
        let (repo, sim, q) = setup(0.2);
        let src = ExactScanKnn::new(sim, q.clone(), repo.vocab_size(), 0.2);
        let tuples = drain(TokenStream::new(src, q.len()));
        // The first |Q| tuples all have similarity 1.0 and include each
        // query element matched to itself.
        let head: Vec<_> = tuples.iter().take(q.len()).collect();
        assert!(head.iter().all(|t| t.sim == 1.0));
        for (qi, &qt) in q.iter().enumerate() {
            assert!(
                head.iter().any(|t| t.q_idx == qi as u32 && t.token == qt),
                "self pair for query element {qi} missing from the head"
            );
        }
    }

    #[test]
    fn heap_and_scan_streams_agree() {
        let (repo, sim, q) = setup(0.25);
        let a = TokenStream::new(
            ExactScanKnn::new(sim.clone(), q.clone(), repo.vocab_size(), 0.25),
            q.len(),
        );
        let b = TokenStream::new(
            HeapKnn::new(sim, q.clone(), repo.vocab_size(), 0.25),
            q.len(),
        );
        assert_eq!(drain(a), drain(b));
    }

    #[test]
    fn empty_query_yields_empty_stream() {
        let (repo, sim, _) = setup(0.2);
        let src = ExactScanKnn::new(sim, Vec::new(), repo.vocab_size(), 0.2);
        let mut ts = TokenStream::new(src, 0);
        assert!(ts.next().is_none());
        assert_eq!(ts.emitted(), 0);
    }

    #[test]
    fn emitted_counter_tracks() {
        let (repo, sim, q) = setup(0.5);
        let src = ExactScanKnn::new(sim, q.clone(), repo.vocab_size(), 0.5);
        let mut ts = TokenStream::new(src, q.len());
        let mut n = 0;
        while ts.next().is_some() {
            n += 1;
            assert_eq!(ts.emitted(), n);
        }
    }
}
