//! A token-level kNN cache shared across similar queries.
//!
//! The dominant cost of a Koios search is streaming per-element kNN lists
//! (paper §IV–§V): for every query element the source scores the whole
//! vocabulary against `α`. Two queries that *share* an element repeat that
//! work verbatim — the per-element list depends only on `(token, α)`, never
//! on the rest of the query. The PR-1 result LRU only catches exact query
//! repeats; this module catches the much more common *overlapping* repeat.
//!
//! [`TokenKnnCache`] is a concurrent, memory-bounded map from
//! `(token, α, generation, similarity-tag)` to a **complete** descending
//! similarity list
//! (every vocabulary token with `simα ≥ α`, self token first). Completeness
//! is the exactness invariant: a cached list is only ever inserted after its
//! producing source was drained to exhaustion, so replaying it is
//! indistinguishable from recomputing it — truncated prefixes are never
//! stored, because a search that prunes early would otherwise poison later
//! searches that stream further.
//!
//! [`CachedKnn`] is the decorator that any engine wraps around an exact
//! source ([`ExactScanKnn`](crate::knn::ExactScanKnn) or
//! [`HeapKnn`](crate::knn::HeapKnn)): per query element it first probes the
//! cache, and on a miss it transparently records the inner source's emissions,
//! publishing the list once (and only if) the element's stream completes.
//!
//! The `generation` key component makes invalidation O(1) and race-free:
//! swapping the repository or similarity model bumps the generation
//! ([`TokenKnnCache::bump_generation`]), after which entries recorded by
//! in-flight searches of the old world can never be served again.

use crate::knn::KnnSource;
use koios_common::TokenId;
use koios_embed::sim::ElementSimilarity;
use koios_telemetry::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// A complete per-element kNN list: `(similarity, token)` descending by
/// similarity, ties by ascending token id — exactly the emission order of
/// the exact sources.
pub type KnnList = Arc<Vec<(f64, TokenId)>>;

/// Cache key: which element, under which threshold, of which world —
/// `sim_tag` namespaces entries by similarity-function identity so engines
/// over *different* metrics sharing one cache can never replay each
/// other's lists (see [`CachedKnn::with_sim_tag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    token: TokenId,
    alpha_bits: u64,
    generation: u64,
    sim_tag: u64,
}

/// Bytes attributed to one cached list (entry payload + bookkeeping).
/// Charges *capacity*, not length, so the budget bounds resident heap
/// even for lists whose backing allocation grew past their final size.
fn list_bytes(list: &KnnList) -> usize {
    list.capacity() * std::mem::size_of::<(f64, TokenId)>() + ENTRY_OVERHEAD
}

/// Flat per-entry overhead charged against the byte budget (key, map slot,
/// recency slot, `Arc` header).
const ENTRY_OVERHEAD: usize = 96;

/// Monotone counters describing global cache behaviour.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KnnCacheCounters {
    /// Probes that returned a complete list.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Complete lists stored.
    pub insertions: u64,
    /// Entries displaced by the byte budget.
    pub evictions: u64,
    /// Entries dropped by a generation bump.
    pub invalidations: u64,
    /// Entries evicted at probe time because they outlived the cache's
    /// entry TTL (see [`TokenKnnCache::with_ttl`]); each expiry is also a
    /// miss.
    pub expirations: u64,
    /// Inserts skipped because a single list exceeded the whole budget or
    /// its generation was already stale.
    pub rejected_inserts: u64,
}

impl KnnCacheCounters {
    /// `hits / (hits + misses)`, or 0 when the cache was never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A point-in-time view of the cache for observability surfaces
/// (`koios-service` reports this through its `ServiceStats`).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KnnCacheSnapshot {
    /// Monotone behaviour counters.
    pub counters: KnnCacheCounters,
    /// Cached lists currently held.
    pub entries: usize,
    /// Bytes currently held (payload + per-entry overhead).
    pub bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Current generation.
    pub generation: u64,
}

struct Entry {
    list: KnnList,
    bytes: usize,
    stamp: u64,
    inserted_at: Instant,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    recency: BTreeMap<u64, Key>, // stamp -> key, oldest first
    tick: u64,
    bytes: usize,
    counters: KnnCacheCounters,
}

/// A concurrent, memory-bounded cache of complete per-element kNN lists,
/// keyed by `(token, α, generation, sim_tag)` and shared by any number of
/// engines (all methods take `&self`; share it as `Arc<TokenKnnCache>`).
///
/// Eviction is LRU by bytes: inserts displace the least-recently-probed
/// lists until the payload fits the budget. A single list larger than the
/// entire budget is not cached at all.
pub struct TokenKnnCache {
    budget_bytes: usize,
    ttl: Option<Duration>,
    generation: AtomicU64,
    inner: Mutex<Inner>,
    // Observability hook: time spent blocked acquiring `inner` on the hot
    // probe/insert paths, recorded when a serving layer installs a
    // histogram (see `install_lock_wait`). Empty = one atomic load per
    // acquisition, no timing.
    lock_wait: OnceLock<Arc<Histogram>>,
    // Similarity-identity registry for `sim_tag`. Holding a `Weak` pins
    // the `ArcInner` allocation (freed only at strong == weak == 0), so a
    // registered address can never be reused by a *different* similarity
    // while its entry lives — tags are ABA-safe, unlike raw addresses.
    sim_tags: Mutex<Vec<(std::sync::Weak<dyn ElementSimilarity>, u64)>>,
    next_sim_tag: AtomicU64,
}

impl std::fmt::Debug for TokenKnnCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("TokenKnnCache")
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .field("budget_bytes", &s.budget_bytes)
            .field("generation", &s.generation)
            .field("hits", &s.counters.hits)
            .field("misses", &s.counters.misses)
            .finish()
    }
}

impl TokenKnnCache {
    /// A cache bounded to `budget_bytes` of list payload. A budget of 0
    /// disables caching (every probe misses, every insert is rejected).
    pub fn new(budget_bytes: usize) -> Self {
        TokenKnnCache {
            budget_bytes,
            ttl: None,
            generation: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
            lock_wait: OnceLock::new(),
            sim_tags: Mutex::new(Vec::new()),
            // Tag 0 is the untagged namespace of bare `CachedKnn::new`.
            next_sim_tag: AtomicU64::new(1),
        }
    }

    /// Gives entries a time-to-live (builder style, before the cache is
    /// shared): a probe that finds an entry older than `ttl` evicts it and
    /// misses, so stale similarity lists age out even without memory
    /// pressure — the knob long-lived services use when embeddings are
    /// refreshed out of band on a schedule rather than via an explicit
    /// [`Self::bump_generation`]. `None` (the default) keeps entries until
    /// displaced or invalidated. Expiries are counted in
    /// [`KnnCacheCounters::expirations`] (each is also a miss).
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// The entry time-to-live, if one was configured.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Installs a histogram that records, in nanoseconds, the time each
    /// probe/insert spends **blocked acquiring the cache mutex** — the
    /// contention signal ROADMAP's scaling item asks for. Idempotent: the
    /// first installation wins (callers sharing one cache share one
    /// histogram); before any installation the acquisition path does no
    /// timing at all.
    pub fn install_lock_wait(&self, histogram: Arc<Histogram>) {
        let _ = self.lock_wait.set(histogram);
    }

    /// Acquires `inner`, recording the blocked time when a lock-wait
    /// histogram is installed.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        match self.lock_wait.get() {
            None => self.inner.lock().expect("knn cache lock"),
            Some(h) => {
                let start = Instant::now();
                let guard = self.inner.lock().expect("knn cache lock");
                h.record_duration(start.elapsed());
                guard
            }
        }
    }

    /// The stable tag identifying `sim` within this cache (assigned on
    /// first sight, monotonically). Engines pass it to
    /// [`CachedKnn::with_sim_tag`] so entries are namespaced per
    /// similarity function: clones of one `Arc<dyn ElementSimilarity>`
    /// (engine clones, config siblings, partition engines) share a tag,
    /// while a *different* similarity — even one allocated at a reused
    /// address after the first was dropped — always gets a fresh tag.
    pub fn sim_tag(&self, sim: &Arc<dyn ElementSimilarity>) -> u64 {
        let mut tags = self.sim_tags.lock().expect("sim tag lock");
        for (weak, tag) in tags.iter() {
            if let Some(known) = weak.upgrade() {
                if Arc::ptr_eq(&known, sim) {
                    return *tag;
                }
            }
        }
        // Drop registrations whose similarity died; their cache entries
        // are unreachable (dead tags are never handed out again) and age
        // out through LRU eviction.
        tags.retain(|(weak, _)| weak.strong_count() > 0);
        let tag = self.next_sim_tag.fetch_add(1, Ordering::Relaxed);
        tags.push((Arc::downgrade(sim), tag));
        tag
    }

    /// The byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The current generation. Sources snapshot this at construction so a
    /// bump mid-search invalidates their inserts, not their reads.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every cached list: bumps the generation (so stale keys
    /// can never be probed again) and drops current entries eagerly.
    /// Call after swapping the repository, embeddings or similarity model.
    pub fn bump_generation(&self) -> u64 {
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let mut inner = self.inner.lock().expect("knn cache lock");
        inner.counters.invalidations += inner.map.len() as u64;
        inner.map.clear();
        inner.recency.clear();
        inner.bytes = 0;
        gen
    }

    /// Looks up the complete list for `(token, α, generation, sim_tag)`,
    /// refreshing its recency on a hit.
    pub fn get(
        &self,
        token: TokenId,
        alpha_bits: u64,
        generation: u64,
        sim_tag: u64,
    ) -> Option<KnnList> {
        let key = Key {
            token,
            alpha_bits,
            generation,
            sim_tag,
        };
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        // Probe-time TTL eviction: an expired entry is removed and reported
        // as a miss, so the prober recomputes (and republishes) a fresh
        // list.
        let expired = match inner.map.get(&key) {
            None => {
                inner.counters.misses += 1;
                return None;
            }
            Some(entry) => self
                .ttl
                .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl),
        };
        if expired {
            let dead = inner.map.remove(&key).expect("entry just probed");
            inner.recency.remove(&dead.stamp);
            inner.bytes -= dead.bytes;
            inner.counters.expirations += 1;
            inner.counters.misses += 1;
            return None;
        }
        let entry = inner.map.get_mut(&key).expect("entry just probed");
        inner.recency.remove(&entry.stamp);
        inner.tick += 1;
        entry.stamp = inner.tick;
        inner.recency.insert(entry.stamp, key);
        inner.counters.hits += 1;
        Some(Arc::clone(&entry.list))
    }

    /// Stores a **complete** list for `(token, α, generation, sim_tag)`,
    /// evicting LRU entries until it fits. Returns whether the list was
    /// stored (a stale generation or an over-budget list is rejected;
    /// re-inserting an existing key replaces the entry).
    pub fn insert(
        &self,
        token: TokenId,
        alpha_bits: u64,
        generation: u64,
        sim_tag: u64,
        list: KnnList,
    ) -> bool {
        let bytes = list_bytes(&list);
        let mut inner = self.lock_inner();
        if bytes > self.budget_bytes || generation != self.generation.load(Ordering::Acquire) {
            inner.counters.rejected_inserts += 1;
            return false;
        }
        let key = Key {
            token,
            alpha_bits,
            generation,
            sim_tag,
        };
        inner.tick += 1;
        let stamp = inner.tick;
        let entry = Entry {
            list,
            bytes,
            stamp,
            inserted_at: Instant::now(),
        };
        if let Some(old) = inner.map.insert(key, entry) {
            inner.recency.remove(&old.stamp);
            inner.bytes -= old.bytes;
        }
        inner.recency.insert(stamp, key);
        inner.bytes += bytes;
        inner.counters.insertions += 1;
        while inner.bytes > self.budget_bytes {
            let (&oldest, &victim) = inner
                .recency
                .iter()
                .next()
                .expect("over-budget cache cannot be empty");
            // The entry just inserted fits the budget on its own (checked
            // above), so eviction always terminates before removing it.
            debug_assert!(!(victim == key && inner.map.len() == 1));
            inner.recency.remove(&oldest);
            let evicted = inner.map.remove(&victim).expect("recency maps into map");
            inner.bytes -= evicted.bytes;
            inner.counters.evictions += 1;
        }
        true
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("knn cache lock").map.len()
    }

    /// Whether the cache holds no lists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("knn cache lock").bytes
    }

    /// The behaviour counters.
    pub fn counters(&self) -> KnnCacheCounters {
        self.inner.lock().expect("knn cache lock").counters
    }

    /// Zeroes the behaviour counters (entries are kept) — metric windowing.
    pub fn reset_counters(&self) {
        self.inner.lock().expect("knn cache lock").counters = KnnCacheCounters::default();
    }

    /// A consistent observability snapshot.
    pub fn snapshot(&self) -> KnnCacheSnapshot {
        let inner = self.inner.lock().expect("knn cache lock");
        KnnCacheSnapshot {
            counters: inner.counters,
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget_bytes,
            generation: self.generation.load(Ordering::Acquire),
        }
    }
}

/// Per-search cache effectiveness, folded into
/// `koios_core::SearchStats::knn_cache` and summed across searches by the
/// service layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KnnCacheSearchStats {
    /// Query elements answered from the cache (no vocabulary scan ran).
    pub hits: usize,
    /// Query elements that scanned the vocabulary.
    pub misses: usize,
    /// Complete lists this search published into the cache.
    pub inserted: usize,
    /// Payload bytes served from cached lists.
    pub bytes_served: usize,
}

impl KnnCacheSearchStats {
    /// Accumulates another search's counters (service/partition merging).
    pub fn merge(&mut self, other: &KnnCacheSearchStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserted += other.inserted;
        self.bytes_served += other.bytes_served;
    }
}

/// Per-element state of a [`CachedKnn`].
enum Elem {
    /// Never probed by this search.
    Untouched,
    /// Replaying a complete cached list.
    Cached { list: KnnList, pos: usize },
    /// Cache miss: delegating to the inner source and recording its
    /// emissions; `done` marks inner exhaustion (buffer published).
    Streaming {
        buf: Vec<(f64, TokenId)>,
        done: bool,
    },
}

/// A caching decorator over any exact [`KnnSource`].
///
/// Per query element the first probe consults the shared
/// [`TokenKnnCache`]; a hit replays the complete cached list (the inner
/// source never computes that element), a miss falls through to the inner
/// source while recording every emission. When — and only when — the inner
/// source reports exhaustion for the element, the recorded list is complete
/// and is published to the cache. A search that stops pulling mid-stream
/// therefore caches nothing for that element, which is exactly what keeps
/// cached replays byte-identical to fresh scans.
pub struct CachedKnn<K: KnnSource> {
    cache: Arc<TokenKnnCache>,
    inner: K,
    query: Vec<TokenId>,
    alpha_bits: u64,
    generation: u64,
    sim_tag: u64,
    elems: Vec<Elem>,
    stats: KnnCacheSearchStats,
}

impl<K: KnnSource> CachedKnn<K> {
    /// Wraps `inner` (built for exactly `query` under `alpha`) with the
    /// shared cache. The cache generation is snapshotted here: a
    /// [`TokenKnnCache::bump_generation`] between construction and search
    /// start only disables this search's inserts, never its correctness.
    pub fn new(cache: Arc<TokenKnnCache>, query: Vec<TokenId>, alpha: f64, inner: K) -> Self {
        let elems = (0..query.len()).map(|_| Elem::Untouched).collect();
        let generation = cache.generation();
        CachedKnn {
            cache,
            inner,
            query,
            alpha_bits: alpha.to_bits(),
            generation,
            sim_tag: 0,
            elems,
            stats: KnnCacheSearchStats::default(),
        }
    }

    /// Namespaces this source's cache entries by similarity-function
    /// identity (builder style). Sources with different tags never share
    /// entries, so one cache can safely serve engines over *different*
    /// similarity metrics — obtain the tag from
    /// [`TokenKnnCache::sim_tag`], which keeps all clones of one engine
    /// (and its partition siblings) sharing while isolating every other
    /// similarity. Defaults to `0` (one shared untagged namespace) when
    /// the caller guarantees a single similarity per cache.
    pub fn with_sim_tag(mut self, tag: u64) -> Self {
        self.sim_tag = tag;
        self
    }

    /// This search's cache effectiveness so far.
    pub fn search_stats(&self) -> KnnCacheSearchStats {
        self.stats
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<TokenKnnCache> {
        &self.cache
    }

    /// The wrapped source.
    pub fn inner(&self) -> &K {
        &self.inner
    }
}

impl<K: KnnSource> KnnSource for CachedKnn<K> {
    fn next(&mut self, q_idx: usize) -> Option<(TokenId, f64)> {
        if let Elem::Untouched = self.elems[q_idx] {
            match self.cache.get(
                self.query[q_idx],
                self.alpha_bits,
                self.generation,
                self.sim_tag,
            ) {
                Some(list) => {
                    self.stats.hits += 1;
                    self.stats.bytes_served += list.len() * std::mem::size_of::<(f64, TokenId)>();
                    self.elems[q_idx] = Elem::Cached { list, pos: 0 };
                }
                None => {
                    self.stats.misses += 1;
                    self.elems[q_idx] = Elem::Streaming {
                        buf: Vec::new(),
                        done: false,
                    };
                }
            }
        }
        match &mut self.elems[q_idx] {
            Elem::Untouched => unreachable!("resolved above"),
            Elem::Cached { list, pos } => {
                let &(s, t) = list.get(*pos)?;
                *pos += 1;
                Some((t, s))
            }
            Elem::Streaming { buf, done } => {
                if *done {
                    return None;
                }
                match self.inner.next(q_idx) {
                    Some((t, s)) => {
                        buf.push((s, t));
                        Some((t, s))
                    }
                    None => {
                        *done = true;
                        // Push-grown buffers can hold up to 2× their length
                        // in capacity; trim so the cache's byte accounting
                        // (which charges capacity) stays tight.
                        buf.shrink_to_fit();
                        let list: KnnList = Arc::new(std::mem::take(buf));
                        if self.cache.insert(
                            self.query[q_idx],
                            self.alpha_bits,
                            self.generation,
                            self.sim_tag,
                            list,
                        ) {
                            self.stats.inserted += 1;
                        }
                        None
                    }
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        // Cached `Arc` lists are attributed to the search that holds them:
        // they are live memory this search keeps reachable, shared or not.
        self.inner.heap_bytes()
            + self
                .elems
                .iter()
                .map(|e| match e {
                    Elem::Untouched => 0,
                    Elem::Cached { list, .. } => {
                        list.capacity() * std::mem::size_of::<(f64, TokenId)>()
                    }
                    Elem::Streaming { buf, .. } => {
                        buf.capacity() * std::mem::size_of::<(f64, TokenId)>()
                    }
                })
                .sum::<usize>()
    }

    fn cache_counters(&self) -> Option<KnnCacheSearchStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{ExactScanKnn, HeapKnn};
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::{ElementSimilarity, QGramJaccard};

    fn setup() -> (Arc<dyn ElementSimilarity>, Vec<TokenId>, usize) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s", ["Blaine", "Blain", "Blainey", "Zurich", "Zurch"]);
        let repo = b.build();
        let q = repo.intern_query(["Blaine", "Zurich"]);
        let vocab = repo.vocab_size();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&repo, 3));
        (sim, q, vocab)
    }

    fn drain(src: &mut dyn KnnSource, q_idx: usize) -> Vec<(TokenId, f64)> {
        let mut out = Vec::new();
        while let Some(x) = src.next(q_idx) {
            out.push(x);
        }
        out
    }

    fn cached(
        cache: &Arc<TokenKnnCache>,
        sim: &Arc<dyn ElementSimilarity>,
        q: &[TokenId],
        vocab: usize,
        alpha: f64,
    ) -> CachedKnn<ExactScanKnn> {
        CachedKnn::new(
            Arc::clone(cache),
            q.to_vec(),
            alpha,
            ExactScanKnn::new(Arc::clone(sim), q.to_vec(), vocab, alpha),
        )
    }

    #[test]
    fn warm_replay_is_identical_to_cold_scan() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut cold = cached(&cache, &sim, &q, vocab, 0.3);
        let cold_lists: Vec<_> = (0..q.len()).map(|i| drain(&mut cold, i)).collect();
        assert_eq!(cold.search_stats().misses, q.len());
        assert_eq!(cold.search_stats().inserted, q.len());

        let mut warm = cached(&cache, &sim, &q, vocab, 0.3);
        for (i, expect) in cold_lists.iter().enumerate() {
            assert_eq!(&drain(&mut warm, i), expect);
        }
        assert_eq!(warm.search_stats().hits, q.len());
        assert_eq!(warm.search_stats().misses, 0);
        assert!(warm.search_stats().bytes_served > 0);

        // Reference: a bare exact scan agrees too.
        let mut bare = ExactScanKnn::new(sim, q.clone(), vocab, 0.3);
        for (i, expect) in cold_lists.iter().enumerate() {
            assert_eq!(&drain(&mut bare, i), expect);
        }
    }

    #[test]
    fn heap_inner_source_caches_identically() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut via_heap = CachedKnn::new(
            Arc::clone(&cache),
            q.clone(),
            0.2,
            HeapKnn::new(Arc::clone(&sim), q.clone(), vocab, 0.2),
        );
        let recorded: Vec<_> = (0..q.len()).map(|i| drain(&mut via_heap, i)).collect();
        let mut warm = cached(&cache, &sim, &q, vocab, 0.2);
        for (i, expect) in recorded.iter().enumerate() {
            assert_eq!(&drain(&mut warm, i), expect);
        }
        assert_eq!(warm.search_stats().hits, q.len());
    }

    #[test]
    fn partial_consumption_is_never_cached() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut src = cached(&cache, &sim, &q, vocab, 0.2);
        // Pull a single tuple and stop: an incomplete prefix.
        assert!(src.next(0).is_some());
        drop(src);
        assert!(cache.is_empty(), "truncated prefix must not be cached");
        assert_eq!(cache.counters().insertions, 0);
    }

    #[test]
    fn alpha_values_do_not_share_entries() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut a = cached(&cache, &sim, &q, vocab, 0.2);
        drain(&mut a, 0);
        let mut b = cached(&cache, &sim, &q, vocab, 0.9);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 0, "different α must miss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sim_tags_namespace_entries() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3); // tag 0
        drain(&mut a, 0);
        let mut b = CachedKnn::new(
            Arc::clone(&cache),
            q.clone(),
            0.3,
            ExactScanKnn::new(Arc::clone(&sim), q.clone(), vocab, 0.3),
        )
        .with_sim_tag(7);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 0, "different sim tag must miss");
        assert_eq!(cache.len(), 2, "entries live side by side");
        // Same tag hits its own namespace.
        let mut c = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut c, 0);
        assert_eq!(c.search_stats().hits, 1);
    }

    #[test]
    fn sim_tag_registry_is_identity_stable() {
        let (sim, _q, _vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let t1 = cache.sim_tag(&sim);
        assert_eq!(cache.sim_tag(&Arc::clone(&sim)), t1, "clones share a tag");
        let (other, ..) = setup();
        let t2 = cache.sim_tag(&other);
        assert_ne!(t1, t2, "distinct similarities get distinct tags");
        // Dropping a similarity never recycles its tag: a successor gets a
        // fresh one even if the allocator reuses the address.
        drop(other);
        for _ in 0..32 {
            let (fresh, ..) = setup();
            let t = cache.sim_tag(&fresh);
            assert_ne!(t, t2, "dead tag must not be reassigned");
            drop(fresh);
        }
    }

    #[test]
    fn generation_bump_invalidates() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut a, 0);
        assert_eq!(cache.len(), 1);
        cache.bump_generation();
        assert!(cache.is_empty());
        assert_eq!(cache.counters().invalidations, 1);
        let mut b = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 0);
        assert_eq!(b.search_stats().misses, 1);
    }

    #[test]
    fn stale_generation_inserts_are_rejected() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        // Source built against generation 0 …
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        // … but the world changes mid-search.
        cache.bump_generation();
        drain(&mut src, 0);
        assert_eq!(src.search_stats().inserted, 0);
        assert!(cache.is_empty());
        assert!(cache.counters().rejected_inserts >= 1);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let (sim, q, vocab) = setup();
        // Budget fits roughly one list (payload + overhead).
        let mut probe = cached(&Arc::new(TokenKnnCache::new(1 << 20)), &sim, &q, vocab, 0.2);
        let one_list_bytes = list_bytes(&Arc::new(
            drain(&mut probe, 0)
                .into_iter()
                .map(|(t, s)| (s, t))
                .collect::<Vec<_>>(),
        ));
        let cache = Arc::new(TokenKnnCache::new(one_list_bytes + ENTRY_OVERHEAD / 2));
        let mut src = cached(&cache, &sim, &q, vocab, 0.2);
        drain(&mut src, 0);
        drain(&mut src, 1);
        assert_eq!(cache.len(), 1, "budget holds one list");
        assert!(cache.counters().evictions >= 1);
        assert!(cache.bytes() <= cache.budget_bytes());
    }

    #[test]
    fn ttl_expires_entries_at_probe_time() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20).with_ttl(Some(Duration::ZERO)));
        assert_eq!(cache.ttl(), Some(Duration::ZERO));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3);
        let fresh = drain(&mut a, 0);
        assert!(!fresh.is_empty());
        assert_eq!(cache.len(), 1, "entry is stored until probed");
        // A zero TTL makes every later probe find an expired entry: it is
        // evicted, counted, and the prober recomputes identically.
        let mut b = cached(&cache, &sim, &q, vocab, 0.3);
        assert_eq!(drain(&mut b, 0), fresh);
        assert_eq!(b.search_stats().hits, 0);
        assert_eq!(b.search_stats().misses, 1);
        let c = cache.counters();
        assert_eq!(c.expirations, 1);
        // Two misses total: the cold fill, then the expiry-as-miss.
        assert_eq!(c.misses, 2);
        assert!(cache.bytes() <= cache.budget_bytes());
    }

    #[test]
    fn generous_ttl_never_expires() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20).with_ttl(Some(Duration::from_secs(3600))));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut a, 0);
        let mut b = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 1);
        assert_eq!(cache.counters().expirations, 0);
    }

    #[test]
    fn no_ttl_is_the_default() {
        let cache = TokenKnnCache::new(1 << 20);
        assert_eq!(cache.ttl(), None);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(0));
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        let fresh = drain(&mut src, 0);
        assert!(!fresh.is_empty(), "search still works without caching");
        assert!(cache.is_empty());
        assert!(cache.counters().rejected_inserts >= 1);
    }

    #[test]
    fn snapshot_reports_state() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut src, 0);
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 1);
        assert!(snap.bytes > 0);
        assert_eq!(snap.generation, 0);
        assert_eq!(snap.counters.insertions, 1);
        assert_eq!(snap.budget_bytes, 1 << 20);
        assert!(format!("{cache:?}").contains("TokenKnnCache"));
    }

    #[test]
    fn concurrent_fill_and_probe_is_safe_and_exact() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let expect: Vec<Vec<(TokenId, f64)>> = {
            let mut bare = ExactScanKnn::new(Arc::clone(&sim), q.clone(), vocab, 0.25);
            (0..q.len()).map(|i| drain(&mut bare, i)).collect()
        };
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    let mut src = cached(&cache, &sim, &q, vocab, 0.25);
                    for (i, exp) in expect.iter().enumerate() {
                        assert_eq!(&drain(&mut src, i), exp);
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 8 * q.len() as u64);
        assert!(c.hits > 0, "overlapping threads should hit");
    }

    #[test]
    fn installed_lock_wait_histogram_counts_acquisitions() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let lock_wait = Arc::new(Histogram::new());
        cache.install_lock_wait(Arc::clone(&lock_wait));
        // A second installation is ignored — the first histogram keeps
        // receiving samples.
        cache.install_lock_wait(Arc::new(Histogram::new()));
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        let fresh = drain(&mut src, 0);
        assert!(!fresh.is_empty());
        // One probe (miss) + one insert = two timed acquisitions.
        assert_eq!(lock_wait.snapshot().count(), 2);
        let mut warm = cached(&cache, &sim, &q, vocab, 0.3);
        assert_eq!(
            drain(&mut warm, 0),
            fresh,
            "instrumentation changes nothing"
        );
        assert_eq!(lock_wait.snapshot().count(), 3);
    }

    #[test]
    fn search_stats_merge_accumulates() {
        let mut a = KnnCacheSearchStats {
            hits: 1,
            misses: 2,
            inserted: 2,
            bytes_served: 100,
        };
        let b = KnnCacheSearchStats {
            hits: 3,
            misses: 0,
            inserted: 0,
            bytes_served: 50,
        };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 2);
        assert_eq!(a.inserted, 2);
        assert_eq!(a.bytes_served, 150);
    }
}
