//! A token-level kNN cache shared across similar queries.
//!
//! The dominant cost of a Koios search is streaming per-element kNN lists
//! (paper §IV–§V): for every query element the source scores the whole
//! vocabulary against `α`. Two queries that *share* an element repeat that
//! work verbatim — the per-element list depends only on `(token, α)`, never
//! on the rest of the query. The PR-1 result LRU only catches exact query
//! repeats; this module catches the much more common *overlapping* repeat.
//!
//! [`TokenKnnCache`] is a concurrent, memory-bounded map from
//! `(token, α, generation, similarity-tag)` to a **complete** descending
//! similarity list
//! (every vocabulary token with `simα ≥ α`, self token first). Completeness
//! is the exactness invariant: a cached list is only ever inserted after its
//! producing source was drained to exhaustion, so replaying it is
//! indistinguishable from recomputing it — truncated prefixes are never
//! stored, because a search that prunes early would otherwise poison later
//! searches that stream further.
//!
//! [`CachedKnn`] is the decorator that any engine wraps around an exact
//! source ([`ExactScanKnn`](crate::knn::ExactScanKnn) or
//! [`HeapKnn`](crate::knn::HeapKnn)): per query element it first probes the
//! cache, and on a miss it transparently records the inner source's emissions,
//! publishing the list once (and only if) the element's stream completes.
//!
//! The `generation` key component makes invalidation O(1) and race-free:
//! swapping the repository or similarity model bumps the generation
//! ([`TokenKnnCache::bump_generation`]), after which entries recorded by
//! in-flight searches of the old world can never be served again.
//!
//! Internally the map is **striped**: entries live in N token-hash-selected
//! segments, each behind its own mutex, so concurrent searches probing
//! different tokens never serialize on one lock (the ROADMAP scaling item's
//! second serializer). The stripes share one byte budget, one generation
//! counter and one monotone recency clock — eviction still removes the
//! globally least-recently-used list, wherever it lives — so the striping
//! is invisible in semantics: completeness, counters and the budget bound
//! are exactly those of the single-lock cache.

use crate::knn::KnnSource;
use koios_common::fingerprint::mix64;
use koios_common::TokenId;
use koios_embed::sim::ElementSimilarity;
use koios_telemetry::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A complete per-element kNN list: `(similarity, token)` descending by
/// similarity, ties by ascending token id — exactly the emission order of
/// the exact sources.
pub type KnnList = Arc<Vec<(f64, TokenId)>>;

/// Cache key: which element, under which threshold, of which world —
/// `sim_tag` namespaces entries by similarity-function identity so engines
/// over *different* metrics sharing one cache can never replay each
/// other's lists (see [`CachedKnn::with_sim_tag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    token: TokenId,
    alpha_bits: u64,
    generation: u64,
    sim_tag: u64,
}

/// Bytes attributed to one cached list (entry payload + bookkeeping).
/// Charges *capacity*, not length, so the budget bounds resident heap
/// even for lists whose backing allocation grew past their final size.
fn list_bytes(list: &KnnList) -> usize {
    list.capacity() * std::mem::size_of::<(f64, TokenId)>() + ENTRY_OVERHEAD
}

/// Flat per-entry overhead charged against the byte budget (key, map slot,
/// recency slot, `Arc` header).
const ENTRY_OVERHEAD: usize = 96;

/// Monotone counters describing global cache behaviour.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KnnCacheCounters {
    /// Probes that returned a complete list.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Complete lists stored.
    pub insertions: u64,
    /// Entries displaced by the byte budget.
    pub evictions: u64,
    /// Entries dropped by a generation bump.
    pub invalidations: u64,
    /// Entries evicted at probe time because they outlived the cache's
    /// entry TTL (see [`TokenKnnCache::with_ttl`]); each expiry is also a
    /// miss.
    pub expirations: u64,
    /// Inserts skipped because a single list exceeded the whole budget or
    /// its generation was already stale.
    pub rejected_inserts: u64,
}

impl KnnCacheCounters {
    /// Accumulates another counter set — used to sum per-stripe counters
    /// into the cache-global view.
    pub fn merge(&mut self, other: &KnnCacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.expirations += other.expirations;
        self.rejected_inserts += other.rejected_inserts;
    }

    /// `hits / (hits + misses)`, or 0 when the cache was never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A point-in-time view of the cache for observability surfaces
/// (`koios-service` reports this through its `ServiceStats`).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KnnCacheSnapshot {
    /// Monotone behaviour counters.
    pub counters: KnnCacheCounters,
    /// Cached lists currently held.
    pub entries: usize,
    /// Bytes currently held (payload + per-entry overhead).
    pub bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Current generation.
    pub generation: u64,
}

struct Entry {
    list: KnnList,
    bytes: usize,
    stamp: u64,
    inserted_at: Instant,
}

/// One token-hash-selected segment of the cache. Each stripe owns its own
/// map, recency index and counters behind its own mutex; recency stamps
/// come from the cache-global [`TokenKnnCache::tick`] clock, so "oldest
/// stamp across all stripes" is exactly the globally least-recently-used
/// entry.
#[derive(Default)]
struct Stripe {
    map: HashMap<Key, Entry>,
    recency: BTreeMap<u64, Key>, // stamp -> key, oldest first
    bytes: usize,
    counters: KnnCacheCounters,
}

/// Stripe count when [`TokenKnnCache::with_stripes`] is not used; a small
/// power of two that already separates the hot tokens of concurrent
/// searches without bloating the cross-stripe eviction scan.
const DEFAULT_STRIPES: usize = 8;

/// A concurrent, memory-bounded cache of complete per-element kNN lists,
/// keyed by `(token, α, generation, sim_tag)` and shared by any number of
/// engines (all methods take `&self`; share it as `Arc<TokenKnnCache>`).
///
/// Eviction is LRU by bytes: inserts displace the least-recently-probed
/// lists until the payload fits the budget. A single list larger than the
/// entire budget is not cached at all.
///
/// The map is striped by token hash ([`Self::with_stripes`]): probes of
/// different tokens take different mutexes, while the byte budget,
/// generation and recency order remain global — see the module docs.
pub struct TokenKnnCache {
    budget_bytes: usize,
    ttl: Option<Duration>,
    generation: AtomicU64,
    // Token-hash-selected segments; `stripe_mask = len - 1` (len is a
    // power of two).
    stripes: Vec<Mutex<Stripe>>,
    stripe_mask: usize,
    // Cache-global recency clock: every probe/insert stamps its entry from
    // here, so stamps are unique and totally ordered across stripes.
    tick: AtomicU64,
    // Cache-global resident bytes, kept in sync with the per-stripe
    // `Stripe::bytes` it sums; the budget check reads this without taking
    // any stripe lock.
    bytes: AtomicUsize,
    // Observability hook: time spent blocked acquiring a stripe mutex on
    // the hot probe/insert paths, recorded when a serving layer installs a
    // histogram (see `install_lock_wait`). Empty = one atomic load per
    // acquisition, no timing.
    lock_wait: OnceLock<Arc<Histogram>>,
    // Similarity-identity registry for `sim_tag`. Holding a `Weak` pins
    // the `ArcInner` allocation (freed only at strong == weak == 0), so a
    // registered address can never be reused by a *different* similarity
    // while its entry lives — tags are ABA-safe, unlike raw addresses.
    // Read-mostly (every search resolves its tag once): RwLock keeps
    // concurrent lookups from serializing.
    sim_tags: RwLock<Vec<(std::sync::Weak<dyn ElementSimilarity>, u64)>>,
    next_sim_tag: AtomicU64,
}

impl std::fmt::Debug for TokenKnnCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("TokenKnnCache")
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .field("budget_bytes", &s.budget_bytes)
            .field("generation", &s.generation)
            .field("hits", &s.counters.hits)
            .field("misses", &s.counters.misses)
            .finish()
    }
}

impl TokenKnnCache {
    /// A cache bounded to `budget_bytes` of list payload. A budget of 0
    /// disables caching (every probe misses, every insert is rejected).
    pub fn new(budget_bytes: usize) -> Self {
        TokenKnnCache {
            budget_bytes,
            ttl: None,
            generation: AtomicU64::new(0),
            stripes: (0..DEFAULT_STRIPES).map(|_| Mutex::default()).collect(),
            stripe_mask: DEFAULT_STRIPES - 1,
            tick: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            lock_wait: OnceLock::new(),
            sim_tags: RwLock::new(Vec::new()),
            // Tag 0 is the untagged namespace of bare `CachedKnn::new`.
            next_sim_tag: AtomicU64::new(1),
        }
    }

    /// Sets the stripe count (builder style, before the cache is shared):
    /// `n` is rounded up to a power of two and clamped to `[1, 256]`.
    /// One stripe reproduces the single-lock cache exactly; more stripes
    /// trade a longer eviction scan for less probe contention.
    pub fn with_stripes(mut self, n: usize) -> Self {
        let n = n.clamp(1, 256).next_power_of_two();
        self.stripes = (0..n).map(|_| Mutex::default()).collect();
        self.stripe_mask = n - 1;
        self
    }

    /// The number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Per-stripe `(entries, bytes)` occupancy, in stripe order — the
    /// introspection surface the stripe invariant tests (and telemetry
    /// gauges) read. Stripes are sampled one at a time.
    pub fn stripe_usage(&self) -> Vec<(usize, usize)> {
        self.stripes
            .iter()
            .map(|stripe| {
                let s = stripe.lock().expect("knn cache stripe");
                (s.map.len(), s.bytes)
            })
            .collect()
    }

    /// Per-stripe `(entries, bytes, oldest entry age)` — the deep
    /// introspection view `GET /debug/cache` renders. The age is measured
    /// from insertion (not last probe), so a hot-but-old entry still shows
    /// its true residency; `None` marks an empty stripe. Stripes are
    /// sampled one at a time, like [`Self::stripe_usage`].
    pub fn stripe_debug(&self) -> Vec<(usize, usize, Option<Duration>)> {
        self.stripes
            .iter()
            .map(|stripe| {
                let s = stripe.lock().expect("knn cache stripe");
                let oldest = s.map.values().map(|e| e.inserted_at.elapsed()).max();
                (s.map.len(), s.bytes, oldest)
            })
            .collect()
    }

    /// The stripe index owning `token`. Mixed, not raw, so dense token-id
    /// ranges (interning hands them out sequentially) spread across
    /// stripes instead of clustering.
    fn stripe_of(&self, token: TokenId) -> usize {
        mix64(u64::from(token.0)) as usize & self.stripe_mask
    }

    /// Gives entries a time-to-live (builder style, before the cache is
    /// shared): a probe that finds an entry older than `ttl` evicts it and
    /// misses, so stale similarity lists age out even without memory
    /// pressure — the knob long-lived services use when embeddings are
    /// refreshed out of band on a schedule rather than via an explicit
    /// [`Self::bump_generation`]. `None` (the default) keeps entries until
    /// displaced or invalidated. Expiries are counted in
    /// [`KnnCacheCounters::expirations`] (each is also a miss).
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// The entry time-to-live, if one was configured.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Installs a histogram that records, in nanoseconds, the time each
    /// probe/insert spends **blocked acquiring its stripe mutex** — the
    /// contention signal ROADMAP's scaling item asks for. Idempotent: the
    /// first installation wins (callers sharing one cache share one
    /// histogram); before any installation the acquisition path does no
    /// timing at all. Eviction's cross-stripe scan is not timed — the
    /// series measures hot-path probe/insert contention only.
    pub fn install_lock_wait(&self, histogram: Arc<Histogram>) {
        let _ = self.lock_wait.set(histogram);
    }

    /// Acquires stripe `idx`, recording the blocked time when a lock-wait
    /// histogram is installed.
    fn lock_stripe(&self, idx: usize) -> MutexGuard<'_, Stripe> {
        match self.lock_wait.get() {
            None => self.stripes[idx].lock().expect("knn cache stripe"),
            Some(h) => {
                let start = Instant::now();
                let guard = self.stripes[idx].lock().expect("knn cache stripe");
                h.record_duration(start.elapsed());
                guard
            }
        }
    }

    /// The stable tag identifying `sim` within this cache (assigned on
    /// first sight, monotonically). Engines pass it to
    /// [`CachedKnn::with_sim_tag`] so entries are namespaced per
    /// similarity function: clones of one `Arc<dyn ElementSimilarity>`
    /// (engine clones, config siblings, partition engines) share a tag,
    /// while a *different* similarity — even one allocated at a reused
    /// address after the first was dropped — always gets a fresh tag.
    pub fn sim_tag(&self, sim: &Arc<dyn ElementSimilarity>) -> u64 {
        fn find(
            tags: &[(std::sync::Weak<dyn ElementSimilarity>, u64)],
            sim: &Arc<dyn ElementSimilarity>,
        ) -> Option<u64> {
            tags.iter().find_map(|(weak, tag)| {
                let known = weak.upgrade()?;
                Arc::ptr_eq(&known, sim).then_some(*tag)
            })
        }
        // Fast path: the tag already exists, under the shared lock only.
        if let Some(tag) = find(&self.sim_tags.read().expect("sim tag lock"), sim) {
            return tag;
        }
        let mut tags = self.sim_tags.write().expect("sim tag lock");
        // Re-scan under the exclusive lock: another thread may have
        // registered `sim` between our read and write acquisitions.
        if let Some(tag) = find(&tags, sim) {
            return tag;
        }
        // Drop registrations whose similarity died; their cache entries
        // are unreachable (dead tags are never handed out again) and age
        // out through LRU eviction.
        tags.retain(|(weak, _)| weak.strong_count() > 0);
        let tag = self.next_sim_tag.fetch_add(1, Ordering::Relaxed);
        tags.push((Arc::downgrade(sim), tag));
        tag
    }

    /// The byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The current generation. Sources snapshot this at construction so a
    /// bump mid-search invalidates their inserts, not their reads.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every cached list: bumps the generation (so stale keys
    /// can never be probed again) and drops current entries eagerly.
    /// Call after swapping the repository, embeddings or similarity model.
    ///
    /// The bump is published *before* the stripes are swept, so a search
    /// racing this call either sees its inserts rejected (stale
    /// generation) or has them cleared here — a stale list never survives.
    pub fn bump_generation(&self) -> u64 {
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        for stripe in &self.stripes {
            let mut s = stripe.lock().expect("knn cache stripe");
            s.counters.invalidations += s.map.len() as u64;
            s.map.clear();
            s.recency.clear();
            self.bytes.fetch_sub(s.bytes, Ordering::AcqRel);
            s.bytes = 0;
        }
        gen
    }

    /// Looks up the complete list for `(token, α, generation, sim_tag)`,
    /// refreshing its recency on a hit.
    pub fn get(
        &self,
        token: TokenId,
        alpha_bits: u64,
        generation: u64,
        sim_tag: u64,
    ) -> Option<KnnList> {
        let key = Key {
            token,
            alpha_bits,
            generation,
            sim_tag,
        };
        let mut stripe = self.lock_stripe(self.stripe_of(token));
        let stripe = &mut *stripe;
        // Probe-time TTL eviction: an expired entry is removed and reported
        // as a miss, so the prober recomputes (and republishes) a fresh
        // list.
        let expired = match stripe.map.get(&key) {
            None => {
                stripe.counters.misses += 1;
                return None;
            }
            Some(entry) => self
                .ttl
                .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl),
        };
        if expired {
            let dead = stripe.map.remove(&key).expect("entry just probed");
            stripe.recency.remove(&dead.stamp);
            stripe.bytes -= dead.bytes;
            self.bytes.fetch_sub(dead.bytes, Ordering::AcqRel);
            stripe.counters.expirations += 1;
            stripe.counters.misses += 1;
            return None;
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = stripe.map.get_mut(&key).expect("entry just probed");
        stripe.recency.remove(&entry.stamp);
        entry.stamp = stamp;
        stripe.recency.insert(stamp, key);
        stripe.counters.hits += 1;
        Some(Arc::clone(&entry.list))
    }

    /// Stores a **complete** list for `(token, α, generation, sim_tag)`,
    /// evicting LRU entries until it fits. Returns whether the list was
    /// stored (a stale generation or an over-budget list is rejected;
    /// re-inserting an existing key replaces the entry).
    pub fn insert(
        &self,
        token: TokenId,
        alpha_bits: u64,
        generation: u64,
        sim_tag: u64,
        list: KnnList,
    ) -> bool {
        let bytes = list_bytes(&list);
        let mut stripe = self.lock_stripe(self.stripe_of(token));
        if bytes > self.budget_bytes || generation != self.generation.load(Ordering::Acquire) {
            stripe.counters.rejected_inserts += 1;
            return false;
        }
        let key = Key {
            token,
            alpha_bits,
            generation,
            sim_tag,
        };
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Entry {
            list,
            bytes,
            stamp,
            inserted_at: Instant::now(),
        };
        if let Some(old) = stripe.map.insert(key, entry) {
            stripe.recency.remove(&old.stamp);
            stripe.bytes -= old.bytes;
            self.bytes.fetch_sub(old.bytes, Ordering::AcqRel);
        }
        stripe.recency.insert(stamp, key);
        stripe.bytes += bytes;
        self.bytes.fetch_add(bytes, Ordering::AcqRel);
        stripe.counters.insertions += 1;
        drop(stripe);
        self.rebalance();
        true
    }

    /// Evicts globally least-recently-used entries until total bytes fit
    /// the budget again. Runs after every insert (a no-op while under
    /// budget): each round peeks every stripe's oldest stamp — one lock at
    /// a time, never two stripes held together, so concurrent inserts can
    /// never deadlock against the scan — then re-locks the winning stripe
    /// and evicts whatever is oldest there *now* (the peeked entry may
    /// have been touched meanwhile; its successor is then the victim).
    ///
    /// The entry an in-progress insert just stored is safe: it carries the
    /// newest stamp, so it is only ever chosen once it is the last entry —
    /// at which point total bytes already fit (per-list budget check).
    fn rebalance(&self) {
        while self.bytes.load(Ordering::Acquire) > self.budget_bytes {
            let mut oldest: Option<(u64, usize)> = None;
            for (i, stripe) in self.stripes.iter().enumerate() {
                let s = stripe.lock().expect("knn cache stripe");
                if let Some((&stamp, _)) = s.recency.iter().next() {
                    if oldest.is_none_or(|(best, _)| stamp < best) {
                        oldest = Some((stamp, i));
                    }
                }
            }
            // Every stripe empty while the total reads over budget can
            // only be a transient of a concurrent sweep — nothing to evict.
            let Some((_, i)) = oldest else { return };
            let mut s = self.stripes[i].lock().expect("knn cache stripe");
            let s = &mut *s;
            if let Some((&stamp, &victim)) = s.recency.iter().next() {
                s.recency.remove(&stamp);
                let evicted = s.map.remove(&victim).expect("recency maps into map");
                s.bytes -= evicted.bytes;
                self.bytes.fetch_sub(evicted.bytes, Ordering::AcqRel);
                s.counters.evictions += 1;
            }
        }
    }

    /// Number of cached lists (sums the stripes, one lock at a time).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("knn cache stripe").map.len())
            .sum()
    }

    /// Whether the cache holds no lists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Acquire)
    }

    /// The behaviour counters, summed across stripes. Each monotone
    /// counter is exact once concurrent operations have completed; a
    /// mid-flight read may miss an operation still holding another stripe.
    pub fn counters(&self) -> KnnCacheCounters {
        let mut total = KnnCacheCounters::default();
        for stripe in &self.stripes {
            total.merge(&stripe.lock().expect("knn cache stripe").counters);
        }
        total
    }

    /// Zeroes the behaviour counters (entries are kept) — metric windowing.
    pub fn reset_counters(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("knn cache stripe").counters = KnnCacheCounters::default();
        }
    }

    /// An observability snapshot (consistent in the absence of concurrent
    /// mutation; stripe sums as in [`Self::counters`] otherwise).
    pub fn snapshot(&self) -> KnnCacheSnapshot {
        let mut entries = 0;
        let mut counters = KnnCacheCounters::default();
        for stripe in &self.stripes {
            let s = stripe.lock().expect("knn cache stripe");
            entries += s.map.len();
            counters.merge(&s.counters);
        }
        KnnCacheSnapshot {
            counters,
            entries,
            bytes: self.bytes.load(Ordering::Acquire),
            budget_bytes: self.budget_bytes,
            generation: self.generation.load(Ordering::Acquire),
        }
    }
}

/// Per-search cache effectiveness, folded into
/// `koios_core::SearchStats::knn_cache` and summed across searches by the
/// service layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KnnCacheSearchStats {
    /// Query elements answered from the cache (no vocabulary scan ran).
    pub hits: usize,
    /// Query elements that scanned the vocabulary.
    pub misses: usize,
    /// Complete lists this search published into the cache.
    pub inserted: usize,
    /// Payload bytes served from cached lists.
    pub bytes_served: usize,
}

impl KnnCacheSearchStats {
    /// Accumulates another search's counters (service/partition merging).
    pub fn merge(&mut self, other: &KnnCacheSearchStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserted += other.inserted;
        self.bytes_served += other.bytes_served;
    }
}

/// Per-element state of a [`CachedKnn`].
enum Elem {
    /// Never probed by this search.
    Untouched,
    /// Replaying a complete cached list.
    Cached { list: KnnList, pos: usize },
    /// Cache miss: delegating to the inner source and recording its
    /// emissions; `done` marks inner exhaustion (buffer published).
    Streaming {
        buf: Vec<(f64, TokenId)>,
        done: bool,
    },
}

/// A caching decorator over any exact [`KnnSource`].
///
/// Per query element the first probe consults the shared
/// [`TokenKnnCache`]; a hit replays the complete cached list (the inner
/// source never computes that element), a miss falls through to the inner
/// source while recording every emission. When — and only when — the inner
/// source reports exhaustion for the element, the recorded list is complete
/// and is published to the cache. A search that stops pulling mid-stream
/// therefore caches nothing for that element, which is exactly what keeps
/// cached replays byte-identical to fresh scans.
pub struct CachedKnn<K: KnnSource> {
    cache: Arc<TokenKnnCache>,
    inner: K,
    query: Vec<TokenId>,
    alpha_bits: u64,
    generation: u64,
    sim_tag: u64,
    elems: Vec<Elem>,
    stats: KnnCacheSearchStats,
}

impl<K: KnnSource> CachedKnn<K> {
    /// Wraps `inner` (built for exactly `query` under `alpha`) with the
    /// shared cache. The cache generation is snapshotted here: a
    /// [`TokenKnnCache::bump_generation`] between construction and search
    /// start only disables this search's inserts, never its correctness.
    pub fn new(cache: Arc<TokenKnnCache>, query: Vec<TokenId>, alpha: f64, inner: K) -> Self {
        let elems = (0..query.len()).map(|_| Elem::Untouched).collect();
        let generation = cache.generation();
        CachedKnn {
            cache,
            inner,
            query,
            alpha_bits: alpha.to_bits(),
            generation,
            sim_tag: 0,
            elems,
            stats: KnnCacheSearchStats::default(),
        }
    }

    /// Namespaces this source's cache entries by similarity-function
    /// identity (builder style). Sources with different tags never share
    /// entries, so one cache can safely serve engines over *different*
    /// similarity metrics — obtain the tag from
    /// [`TokenKnnCache::sim_tag`], which keeps all clones of one engine
    /// (and its partition siblings) sharing while isolating every other
    /// similarity. Defaults to `0` (one shared untagged namespace) when
    /// the caller guarantees a single similarity per cache.
    pub fn with_sim_tag(mut self, tag: u64) -> Self {
        self.sim_tag = tag;
        self
    }

    /// This search's cache effectiveness so far.
    pub fn search_stats(&self) -> KnnCacheSearchStats {
        self.stats
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<TokenKnnCache> {
        &self.cache
    }

    /// The wrapped source.
    pub fn inner(&self) -> &K {
        &self.inner
    }
}

impl<K: KnnSource> KnnSource for CachedKnn<K> {
    fn next(&mut self, q_idx: usize) -> Option<(TokenId, f64)> {
        if let Elem::Untouched = self.elems[q_idx] {
            match self.cache.get(
                self.query[q_idx],
                self.alpha_bits,
                self.generation,
                self.sim_tag,
            ) {
                Some(list) => {
                    self.stats.hits += 1;
                    self.stats.bytes_served += list.len() * std::mem::size_of::<(f64, TokenId)>();
                    self.elems[q_idx] = Elem::Cached { list, pos: 0 };
                }
                None => {
                    self.stats.misses += 1;
                    self.elems[q_idx] = Elem::Streaming {
                        buf: Vec::new(),
                        done: false,
                    };
                }
            }
        }
        match &mut self.elems[q_idx] {
            Elem::Untouched => unreachable!("resolved above"),
            Elem::Cached { list, pos } => {
                let &(s, t) = list.get(*pos)?;
                *pos += 1;
                Some((t, s))
            }
            Elem::Streaming { buf, done } => {
                if *done {
                    return None;
                }
                match self.inner.next(q_idx) {
                    Some((t, s)) => {
                        buf.push((s, t));
                        Some((t, s))
                    }
                    None => {
                        *done = true;
                        // Push-grown buffers can hold up to 2× their length
                        // in capacity; trim so the cache's byte accounting
                        // (which charges capacity) stays tight.
                        buf.shrink_to_fit();
                        let list: KnnList = Arc::new(std::mem::take(buf));
                        if self.cache.insert(
                            self.query[q_idx],
                            self.alpha_bits,
                            self.generation,
                            self.sim_tag,
                            list,
                        ) {
                            self.stats.inserted += 1;
                        }
                        None
                    }
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        // Cached `Arc` lists are attributed to the search that holds them:
        // they are live memory this search keeps reachable, shared or not.
        self.inner.heap_bytes()
            + self
                .elems
                .iter()
                .map(|e| match e {
                    Elem::Untouched => 0,
                    Elem::Cached { list, .. } => {
                        list.capacity() * std::mem::size_of::<(f64, TokenId)>()
                    }
                    Elem::Streaming { buf, .. } => {
                        buf.capacity() * std::mem::size_of::<(f64, TokenId)>()
                    }
                })
                .sum::<usize>()
    }

    fn cache_counters(&self) -> Option<KnnCacheSearchStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{ExactScanKnn, HeapKnn};
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::{ElementSimilarity, QGramJaccard};

    fn setup() -> (Arc<dyn ElementSimilarity>, Vec<TokenId>, usize) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s", ["Blaine", "Blain", "Blainey", "Zurich", "Zurch"]);
        let repo = b.build();
        let q = repo.intern_query(["Blaine", "Zurich"]);
        let vocab = repo.vocab_size();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(&repo, 3));
        (sim, q, vocab)
    }

    fn drain(src: &mut dyn KnnSource, q_idx: usize) -> Vec<(TokenId, f64)> {
        let mut out = Vec::new();
        while let Some(x) = src.next(q_idx) {
            out.push(x);
        }
        out
    }

    fn cached(
        cache: &Arc<TokenKnnCache>,
        sim: &Arc<dyn ElementSimilarity>,
        q: &[TokenId],
        vocab: usize,
        alpha: f64,
    ) -> CachedKnn<ExactScanKnn> {
        CachedKnn::new(
            Arc::clone(cache),
            q.to_vec(),
            alpha,
            ExactScanKnn::new(Arc::clone(sim), q.to_vec(), vocab, alpha),
        )
    }

    #[test]
    fn warm_replay_is_identical_to_cold_scan() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut cold = cached(&cache, &sim, &q, vocab, 0.3);
        let cold_lists: Vec<_> = (0..q.len()).map(|i| drain(&mut cold, i)).collect();
        assert_eq!(cold.search_stats().misses, q.len());
        assert_eq!(cold.search_stats().inserted, q.len());

        let mut warm = cached(&cache, &sim, &q, vocab, 0.3);
        for (i, expect) in cold_lists.iter().enumerate() {
            assert_eq!(&drain(&mut warm, i), expect);
        }
        assert_eq!(warm.search_stats().hits, q.len());
        assert_eq!(warm.search_stats().misses, 0);
        assert!(warm.search_stats().bytes_served > 0);

        // Reference: a bare exact scan agrees too.
        let mut bare = ExactScanKnn::new(sim, q.clone(), vocab, 0.3);
        for (i, expect) in cold_lists.iter().enumerate() {
            assert_eq!(&drain(&mut bare, i), expect);
        }
    }

    #[test]
    fn heap_inner_source_caches_identically() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut via_heap = CachedKnn::new(
            Arc::clone(&cache),
            q.clone(),
            0.2,
            HeapKnn::new(Arc::clone(&sim), q.clone(), vocab, 0.2),
        );
        let recorded: Vec<_> = (0..q.len()).map(|i| drain(&mut via_heap, i)).collect();
        let mut warm = cached(&cache, &sim, &q, vocab, 0.2);
        for (i, expect) in recorded.iter().enumerate() {
            assert_eq!(&drain(&mut warm, i), expect);
        }
        assert_eq!(warm.search_stats().hits, q.len());
    }

    #[test]
    fn partial_consumption_is_never_cached() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut src = cached(&cache, &sim, &q, vocab, 0.2);
        // Pull a single tuple and stop: an incomplete prefix.
        assert!(src.next(0).is_some());
        drop(src);
        assert!(cache.is_empty(), "truncated prefix must not be cached");
        assert_eq!(cache.counters().insertions, 0);
    }

    #[test]
    fn alpha_values_do_not_share_entries() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut a = cached(&cache, &sim, &q, vocab, 0.2);
        drain(&mut a, 0);
        let mut b = cached(&cache, &sim, &q, vocab, 0.9);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 0, "different α must miss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sim_tags_namespace_entries() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3); // tag 0
        drain(&mut a, 0);
        let mut b = CachedKnn::new(
            Arc::clone(&cache),
            q.clone(),
            0.3,
            ExactScanKnn::new(Arc::clone(&sim), q.clone(), vocab, 0.3),
        )
        .with_sim_tag(7);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 0, "different sim tag must miss");
        assert_eq!(cache.len(), 2, "entries live side by side");
        // Same tag hits its own namespace.
        let mut c = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut c, 0);
        assert_eq!(c.search_stats().hits, 1);
    }

    #[test]
    fn sim_tag_registry_is_identity_stable() {
        let (sim, _q, _vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let t1 = cache.sim_tag(&sim);
        assert_eq!(cache.sim_tag(&Arc::clone(&sim)), t1, "clones share a tag");
        let (other, ..) = setup();
        let t2 = cache.sim_tag(&other);
        assert_ne!(t1, t2, "distinct similarities get distinct tags");
        // Dropping a similarity never recycles its tag: a successor gets a
        // fresh one even if the allocator reuses the address.
        drop(other);
        for _ in 0..32 {
            let (fresh, ..) = setup();
            let t = cache.sim_tag(&fresh);
            assert_ne!(t, t2, "dead tag must not be reassigned");
            drop(fresh);
        }
    }

    #[test]
    fn generation_bump_invalidates() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut a, 0);
        assert_eq!(cache.len(), 1);
        cache.bump_generation();
        assert!(cache.is_empty());
        assert_eq!(cache.counters().invalidations, 1);
        let mut b = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 0);
        assert_eq!(b.search_stats().misses, 1);
    }

    #[test]
    fn stale_generation_inserts_are_rejected() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        // Source built against generation 0 …
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        // … but the world changes mid-search.
        cache.bump_generation();
        drain(&mut src, 0);
        assert_eq!(src.search_stats().inserted, 0);
        assert!(cache.is_empty());
        assert!(cache.counters().rejected_inserts >= 1);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let (sim, q, vocab) = setup();
        // Budget fits roughly one list (payload + overhead).
        let mut probe = cached(&Arc::new(TokenKnnCache::new(1 << 20)), &sim, &q, vocab, 0.2);
        let one_list_bytes = list_bytes(&Arc::new(
            drain(&mut probe, 0)
                .into_iter()
                .map(|(t, s)| (s, t))
                .collect::<Vec<_>>(),
        ));
        let cache = Arc::new(TokenKnnCache::new(one_list_bytes + ENTRY_OVERHEAD / 2));
        let mut src = cached(&cache, &sim, &q, vocab, 0.2);
        drain(&mut src, 0);
        drain(&mut src, 1);
        assert_eq!(cache.len(), 1, "budget holds one list");
        assert!(cache.counters().evictions >= 1);
        assert!(cache.bytes() <= cache.budget_bytes());
    }

    #[test]
    fn ttl_expires_entries_at_probe_time() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20).with_ttl(Some(Duration::ZERO)));
        assert_eq!(cache.ttl(), Some(Duration::ZERO));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3);
        let fresh = drain(&mut a, 0);
        assert!(!fresh.is_empty());
        assert_eq!(cache.len(), 1, "entry is stored until probed");
        // A zero TTL makes every later probe find an expired entry: it is
        // evicted, counted, and the prober recomputes identically.
        let mut b = cached(&cache, &sim, &q, vocab, 0.3);
        assert_eq!(drain(&mut b, 0), fresh);
        assert_eq!(b.search_stats().hits, 0);
        assert_eq!(b.search_stats().misses, 1);
        let c = cache.counters();
        assert_eq!(c.expirations, 1);
        // Two misses total: the cold fill, then the expiry-as-miss.
        assert_eq!(c.misses, 2);
        assert!(cache.bytes() <= cache.budget_bytes());
    }

    #[test]
    fn generous_ttl_never_expires() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20).with_ttl(Some(Duration::from_secs(3600))));
        let mut a = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut a, 0);
        let mut b = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut b, 0);
        assert_eq!(b.search_stats().hits, 1);
        assert_eq!(cache.counters().expirations, 0);
    }

    #[test]
    fn no_ttl_is_the_default() {
        let cache = TokenKnnCache::new(1 << 20);
        assert_eq!(cache.ttl(), None);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(0));
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        let fresh = drain(&mut src, 0);
        assert!(!fresh.is_empty(), "search still works without caching");
        assert!(cache.is_empty());
        assert!(cache.counters().rejected_inserts >= 1);
    }

    #[test]
    fn snapshot_reports_state() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        drain(&mut src, 0);
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 1);
        assert!(snap.bytes > 0);
        assert_eq!(snap.generation, 0);
        assert_eq!(snap.counters.insertions, 1);
        assert_eq!(snap.budget_bytes, 1 << 20);
        assert!(format!("{cache:?}").contains("TokenKnnCache"));
    }

    #[test]
    fn concurrent_fill_and_probe_is_safe_and_exact() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let expect: Vec<Vec<(TokenId, f64)>> = {
            let mut bare = ExactScanKnn::new(Arc::clone(&sim), q.clone(), vocab, 0.25);
            (0..q.len()).map(|i| drain(&mut bare, i)).collect()
        };
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    let mut src = cached(&cache, &sim, &q, vocab, 0.25);
                    for (i, exp) in expect.iter().enumerate() {
                        assert_eq!(&drain(&mut src, i), exp);
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 8 * q.len() as u64);
        assert!(c.hits > 0, "overlapping threads should hit");
    }

    #[test]
    fn installed_lock_wait_histogram_counts_acquisitions() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let lock_wait = Arc::new(Histogram::new());
        cache.install_lock_wait(Arc::clone(&lock_wait));
        // A second installation is ignored — the first histogram keeps
        // receiving samples.
        cache.install_lock_wait(Arc::new(Histogram::new()));
        let mut src = cached(&cache, &sim, &q, vocab, 0.3);
        let fresh = drain(&mut src, 0);
        assert!(!fresh.is_empty());
        // One probe (miss) + one insert = two timed acquisitions.
        assert_eq!(lock_wait.snapshot().count(), 2);
        let mut warm = cached(&cache, &sim, &q, vocab, 0.3);
        assert_eq!(
            drain(&mut warm, 0),
            fresh,
            "instrumentation changes nothing"
        );
        assert_eq!(lock_wait.snapshot().count(), 3);
    }

    #[test]
    fn stripe_count_is_configurable_and_rounded() {
        assert_eq!(TokenKnnCache::new(1 << 20).stripes(), 8, "default");
        assert_eq!(TokenKnnCache::new(1 << 20).with_stripes(1).stripes(), 1);
        assert_eq!(TokenKnnCache::new(1 << 20).with_stripes(5).stripes(), 8);
        assert_eq!(TokenKnnCache::new(1 << 20).with_stripes(0).stripes(), 1);
        assert_eq!(
            TokenKnnCache::new(1 << 20).with_stripes(9999).stripes(),
            256
        );
    }

    #[test]
    fn single_stripe_behaves_like_the_old_single_lock_cache() {
        let (sim, q, vocab) = setup();
        let cache = Arc::new(TokenKnnCache::new(1 << 20).with_stripes(1));
        let mut cold = cached(&cache, &sim, &q, vocab, 0.3);
        let lists: Vec<_> = (0..q.len()).map(|i| drain(&mut cold, i)).collect();
        let mut warm = cached(&cache, &sim, &q, vocab, 0.3);
        for (i, expect) in lists.iter().enumerate() {
            assert_eq!(&drain(&mut warm, i), expect);
        }
        assert_eq!(cache.stripe_usage().len(), 1);
        assert_eq!(cache.stripe_usage()[0].0, cache.len());
    }

    #[test]
    fn stripe_usage_sums_to_cache_totals() {
        let cache = TokenKnnCache::new(1 << 20);
        for t in 0..64u32 {
            let list: KnnList = Arc::new(vec![(0.9, TokenId(t))]);
            assert!(cache.insert(TokenId(t), 0.5f64.to_bits(), 0, 0, list));
        }
        let usage = cache.stripe_usage();
        assert_eq!(usage.len(), cache.stripes());
        assert_eq!(usage.iter().map(|(n, _)| n).sum::<usize>(), cache.len());
        assert_eq!(usage.iter().map(|(_, b)| b).sum::<usize>(), cache.bytes());
        // 64 hashed tokens across 8 stripes: more than one stripe is hot.
        assert!(
            usage.iter().filter(|(n, _)| *n > 0).count() > 1,
            "tokens must spread across stripes, got {usage:?}"
        );
    }

    #[test]
    fn stripe_debug_reports_ages_consistent_with_usage() {
        let cache = TokenKnnCache::new(1 << 20);
        for t in 0..16u32 {
            let list: KnnList = Arc::new(vec![(0.9, TokenId(t))]);
            assert!(cache.insert(TokenId(t), 0.5f64.to_bits(), 0, 0, list));
        }
        let usage = cache.stripe_usage();
        let debug = cache.stripe_debug();
        assert_eq!(debug.len(), usage.len());
        for ((n, b), (dn, db, oldest)) in usage.iter().zip(&debug) {
            assert_eq!(n, dn);
            assert_eq!(b, db);
            // Empty stripes report no age; occupied ones a real elapsed.
            assert_eq!(oldest.is_some(), *dn > 0, "{debug:?}");
        }
    }

    #[test]
    fn eviction_is_globally_lru_across_stripes() {
        // Budget for exactly two single-pair lists.
        let pair = std::mem::size_of::<(f64, TokenId)>();
        let cache = TokenKnnCache::new(2 * (pair + ENTRY_OVERHEAD));
        let alpha = 0.5f64.to_bits();
        let list = |t: u32| -> KnnList { Arc::new(vec![(0.9, TokenId(t))]) };
        assert!(cache.insert(TokenId(0), alpha, 0, 0, list(0)));
        assert!(cache.insert(TokenId(1), alpha, 0, 0, list(1)));
        // Touch token 0 so token 1 is now the global LRU entry …
        assert!(cache.get(TokenId(0), alpha, 0, 0).is_some());
        // … then force an eviction from whichever stripe holds it.
        assert!(cache.insert(TokenId(2), alpha, 0, 0, list(2)));
        assert!(cache.get(TokenId(1), alpha, 0, 0).is_none(), "LRU evicted");
        assert!(cache.get(TokenId(0), alpha, 0, 0).is_some(), "MRU kept");
        assert!(cache.get(TokenId(2), alpha, 0, 0).is_some(), "newest kept");
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.bytes() <= cache.budget_bytes());
    }

    #[test]
    fn striped_churn_holds_budget_and_counter_invariants() {
        // 8 threads hammer insert/probe over 64 tokens under a budget that
        // fits only a fraction of them, forcing constant cross-stripe
        // eviction. Afterwards every invariant of the single-lock cache
        // must still hold.
        let pair = std::mem::size_of::<(f64, TokenId)>();
        let budget = 8 * (4 * pair + ENTRY_OVERHEAD);
        let cache = Arc::new(TokenKnnCache::new(budget));
        let alpha = 0.5f64.to_bits();
        const THREADS: u64 = 8;
        const OPS: u64 = 400;
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                sc.spawn(move || {
                    // Disjoint per-thread token ranges: a list is only
                    // ever inserted by its owner, so no insert is a
                    // same-key replacement and the entry identity below
                    // is exact. Eviction still crosses threads/stripes.
                    for op in 0..OPS {
                        let token = TokenId((t * 8 + op % 8) as u32);
                        if cache.get(token, alpha, 0, 0).is_none() {
                            let list: KnnList =
                                Arc::new((0..4).map(|i| (0.9 - i as f64 * 0.1, token)).collect());
                            cache.insert(token, alpha, 0, 0, list);
                        }
                    }
                });
            }
        });
        let c = cache.counters();
        // Every get was a hit xor a miss.
        assert_eq!(c.hits + c.misses, THREADS * OPS);
        // Every miss triggered exactly one insert attempt.
        assert_eq!(c.insertions + c.rejected_inserts, c.misses);
        assert_eq!(c.rejected_inserts, 0, "nothing was stale or over-budget");
        // Live entries = inserted − (evicted + expired + invalidated).
        assert_eq!(
            cache.len() as u64,
            c.insertions - c.evictions - c.expirations - c.invalidations
        );
        assert!(c.evictions > 0, "budget pressure must have evicted");
        // Byte accounting: global total ≤ budget, and it equals the sum of
        // the per-stripe totals now that all threads are done.
        assert!(cache.bytes() <= budget, "{} > {budget}", cache.bytes());
        let usage = cache.stripe_usage();
        assert_eq!(usage.iter().map(|(_, b)| b).sum::<usize>(), cache.bytes());
        assert_eq!(usage.iter().map(|(n, _)| n).sum::<usize>(), cache.len());
    }

    #[test]
    fn ttl_expiry_is_exact_in_every_stripe() {
        // Zero TTL: every stored entry expires on its next probe, whatever
        // stripe it lives in — expirations land in the probed stripe and
        // sum exactly.
        let cache = TokenKnnCache::new(1 << 20).with_ttl(Some(Duration::ZERO));
        let alpha = 0.5f64.to_bits();
        for t in 0..32u32 {
            let list: KnnList = Arc::new(vec![(0.9, TokenId(t))]);
            assert!(cache.insert(TokenId(t), alpha, 0, 0, list));
        }
        for t in 0..32u32 {
            assert!(cache.get(TokenId(t), alpha, 0, 0).is_none());
        }
        let c = cache.counters();
        assert_eq!(c.expirations, 32, "each entry expired exactly once");
        assert_eq!(c.misses, 32, "each expiry is also a miss");
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn generation_bump_clears_every_stripe() {
        let cache = TokenKnnCache::new(1 << 20);
        let alpha = 0.5f64.to_bits();
        for t in 0..32u32 {
            let list: KnnList = Arc::new(vec![(0.9, TokenId(t))]);
            assert!(cache.insert(TokenId(t), alpha, 0, 0, list));
        }
        assert_eq!(cache.bump_generation(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.counters().invalidations, 32);
        assert!(cache.stripe_usage().iter().all(|&(n, b)| n == 0 && b == 0));
    }

    #[test]
    fn search_stats_merge_accumulates() {
        let mut a = KnnCacheSearchStats {
            hits: 1,
            misses: 2,
            inserted: 2,
            bytes_served: 100,
        };
        let b = KnnCacheSearchStats {
            hits: 3,
            misses: 0,
            inserted: 0,
            bytes_served: 50,
        };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 2);
        assert_eq!(a.inserted, 2);
        assert_eq!(a.bytes_served, 150);
    }
}
