//! Compact identifiers for tokens (set elements) and sets.
//!
//! Both wrap `u32`: the paper's largest corpus (WDC) has ~1M sets and ~330k
//! distinct tokens, so 32 bits leave ample headroom while halving the
//! footprint of posting lists and candidate tables compared to `usize`.

use std::fmt;

/// Identifier of a distinct set element (a *token* when elements are strings).
///
/// Token ids are assigned densely from 0 by the [`crate::Interner`]; they
/// index directly into vocabulary-aligned arrays (embedding tables, q-gram
/// caches, posting lists).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u32);

/// Identifier of a set in the repository `L`.
///
/// Set ids are dense indices into the repository's set table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(pub u32);

impl TokenId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SetId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for TokenId {
    fn from(v: u32) -> Self {
        TokenId(v)
    }
}

impl From<u32> for SetId {
    fn from(v: u32) -> Self {
        SetId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_id_roundtrip() {
        let t = TokenId(42);
        assert_eq!(t.idx(), 42);
        assert_eq!(format!("{t:?}"), "t42");
        assert_eq!(format!("{t}"), "42");
        assert_eq!(TokenId::from(42u32), t);
    }

    #[test]
    fn set_id_roundtrip() {
        let s = SetId(7);
        assert_eq!(s.idx(), 7);
        assert_eq!(format!("{s:?}"), "s7");
        assert_eq!(SetId::from(7u32), s);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TokenId(1) < TokenId(2));
        assert!(SetId(0) < SetId(100));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<TokenId>(), 4);
        assert_eq!(std::mem::size_of::<SetId>(), 4);
    }
}
