//! Cooperative wall-clock profiler — the *publishing* side.
//!
//! Sampling profilers answer "where does CPU time go *between* the
//! instrumented seams" without per-event overhead: each worker thread
//! publishes its current `(stage, shard)` into a private atomic slot, and
//! a sampler thread (see `koios-telemetry::profile`) reads every slot at a
//! fixed rate, accumulating a stage×shard count matrix. Because workers
//! only ever *store* one word and the sampler only ever *loads*, the hot
//! path never blocks and there are no locks between sampler and workers.
//!
//! This module owns the primitives the engine and service crates publish
//! through; it lives in `koios-common` so the engine crates can publish
//! stages without depending on the telemetry crate (the PR 6 layering
//! rule). When no sampler is running ([`profiling_enabled`] is false),
//! [`enter`] is a single relaxed atomic load returning `None` — the
//! disabled cost is one predictable branch per *phase*, not per tuple.
//!
//! ```
//! use koios_common::profile::{self, Stage};
//! // Worker side: publish the current stage for the scope of a guard.
//! {
//!     let _g = profile::enter(Stage::Refine); // None while disabled: free
//!     // ... refine ...
//! } // slot restored to the previous stage on drop
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The pipeline stages a worker can publish. `Idle` (0) is the default
/// state of every registered slot — a thread that registered but is not
/// inside any guarded scope samples as idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Registered but not inside any instrumented scope.
    Idle = 0,
    /// A service worker executing a search request end-to-end.
    Search = 1,
    /// The refinement phase (token stream + filters).
    Refine = 2,
    /// The post-processing phase (scheduling, No-EM, re-ranking).
    Postprocess = 3,
    /// Exact-matching verification (Hungarian runs).
    Verify = 4,
    /// The partitioned merge loop.
    Merge = 5,
    /// A shard task on the shard executor (carries the shard index).
    Shard = 6,
    /// A mutation (ingest/snapshot/reload) applying on a worker.
    Ingest = 7,
    /// Response serialization on a connection thread.
    Serialize = 8,
}

/// Number of distinct stages (matrix dimension for samplers).
pub const NUM_STAGES: usize = 9;

impl Stage {
    /// Every stage, in id order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Idle,
        Stage::Search,
        Stage::Refine,
        Stage::Postprocess,
        Stage::Verify,
        Stage::Merge,
        Stage::Shard,
        Stage::Ingest,
        Stage::Serialize,
    ];

    /// Stable lowercase name (collapsed-stack frames, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Idle => "idle",
            Stage::Search => "search",
            Stage::Refine => "refine",
            Stage::Postprocess => "postprocess",
            Stage::Verify => "verify",
            Stage::Merge => "merge",
            Stage::Shard => "shard",
            Stage::Ingest => "ingest",
            Stage::Serialize => "serialize",
        }
    }

    /// The stage with this id, if any.
    pub fn from_id(id: u8) -> Option<Stage> {
        Stage::ALL.get(id as usize).copied()
    }
}

/// Packs a `(stage, shard)` pair into one slot word: stage in the low 32
/// bits, `shard + 1` in the high 32 (0 = no shard), so a plain `0` is
/// "idle, no shard".
pub fn encode(stage: Stage, shard: Option<usize>) -> u64 {
    let shard_bits = match shard {
        Some(s) => (s as u64).saturating_add(1).min(u32::MAX as u64) << 32,
        None => 0,
    };
    stage as u64 | shard_bits
}

/// Unpacks a slot word into `(stage id, shard)`.
pub fn decode(bits: u64) -> (u8, Option<u32>) {
    let shard = (bits >> 32) as u32;
    ((bits & 0xFF) as u8, shard.checked_sub(1))
}

/// One thread's published state. Slots are created lazily on a thread's
/// first [`enter`] and removed from the registry when the thread exits, so
/// short-lived threads (scoped verification helpers) never leak entries.
#[derive(Debug)]
struct Slot {
    bits: AtomicU64,
}

fn registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Sampler refcount: publishing is enabled while at least one sampler
/// runs. A refcount (not a flag) lets two services in one process each
/// own a profiler without one's shutdown blinding the other.
static ENABLED: AtomicUsize = AtomicUsize::new(0);

/// Whether any sampler is currently running (workers publish only then).
#[inline]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) > 0
}

/// Enables publishing (called by a sampler when it starts). Pair every
/// call with exactly one [`disable`].
pub fn enable() {
    ENABLED.fetch_add(1, Ordering::Relaxed);
}

/// Disables publishing once the matching [`enable`]'s sampler stops.
pub fn disable() {
    ENABLED.fetch_sub(1, Ordering::Relaxed);
}

struct ThreadSlot {
    slot: Arc<Slot>,
}

impl ThreadSlot {
    fn register() -> Self {
        let slot = Arc::new(Slot {
            bits: AtomicU64::new(0),
        });
        registry().lock().unwrap().push(Arc::clone(&slot));
        ThreadSlot { slot }
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        let mut reg = registry().lock().unwrap();
        if let Some(i) = reg.iter().position(|s| Arc::ptr_eq(s, &self.slot)) {
            reg.swap_remove(i);
        }
    }
}

thread_local! {
    static SLOT: ThreadSlot = ThreadSlot::register();
}

/// RAII stage publication: the thread's slot holds the new `(stage,
/// shard)` until the guard drops, when the previous value is restored
/// (guards nest — `Verify` inside `Postprocess` inside `Search`).
#[derive(Debug)]
pub struct StageGuard {
    slot: Arc<Slot>,
    prev: u64,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        self.slot.bits.store(self.prev, Ordering::Relaxed);
    }
}

/// Publishes `stage` for the scope of the returned guard. Returns `None`
/// (for ~zero cost) while no sampler is running.
#[inline]
pub fn enter(stage: Stage) -> Option<StageGuard> {
    enter_with(stage, None)
}

/// Publishes `stage` on shard `shard` for the scope of the returned guard.
#[inline]
pub fn enter_shard(stage: Stage, shard: usize) -> Option<StageGuard> {
    enter_with(stage, Some(shard))
}

fn enter_with(stage: Stage, shard: Option<usize>) -> Option<StageGuard> {
    if !profiling_enabled() {
        return None;
    }
    let slot = SLOT.with(|s| Arc::clone(&s.slot));
    let prev = slot.bits.swap(encode(stage, shard), Ordering::Relaxed);
    Some(StageGuard { slot, prev })
}

/// Reads every registered slot's current word into `out` (the sampler's
/// per-tick scan). The registry lock is held only for the copy; workers
/// never take it.
pub fn sample_slots(out: &mut Vec<u64>) {
    out.clear();
    let reg = registry().lock().unwrap();
    out.extend(reg.iter().map(|s| s.bits.load(Ordering::Relaxed)));
}

/// Number of currently registered slots (threads that have published at
/// least once and are still alive).
pub fn registered_slots() -> usize {
    registry().lock().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable refcount is process-global; tests that toggle or assert
    // it serialize through this lock so the harness can stay parallel.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn encode_decode_round_trips() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_id(stage as u8), Some(stage));
            let (id, shard) = decode(encode(stage, None));
            assert_eq!(id, stage as u8);
            assert_eq!(shard, None);
            let (id, shard) = decode(encode(stage, Some(7)));
            assert_eq!(id, stage as u8);
            assert_eq!(shard, Some(7));
        }
        assert_eq!(decode(0), (0, None));
        assert_eq!(Stage::from_id(200), None);
    }

    #[test]
    fn disabled_enter_is_none() {
        let _lock = TEST_LOCK.lock().unwrap();
        assert!(!profiling_enabled());
        assert!(enter(Stage::Search).is_none());
    }

    #[test]
    fn guards_nest_and_restore() {
        let _lock = TEST_LOCK.lock().unwrap();
        enable();
        {
            let _outer = enter(Stage::Search).expect("enabled");
            let mut sampled = Vec::new();
            sample_slots(&mut sampled);
            assert!(sampled.contains(&encode(Stage::Search, None)));
            {
                let _inner = enter_shard(Stage::Shard, 3).expect("enabled");
                sample_slots(&mut sampled);
                assert!(sampled.contains(&encode(Stage::Shard, Some(3))));
            }
            sample_slots(&mut sampled);
            assert!(sampled.contains(&encode(Stage::Search, None)));
        }
        disable();
        assert!(!profiling_enabled());
    }

    #[test]
    fn short_lived_threads_deregister() {
        let _lock = TEST_LOCK.lock().unwrap();
        enable();
        let before = registered_slots();
        std::thread::spawn(|| {
            let _g = enter(Stage::Verify);
        })
        .join()
        .unwrap();
        assert_eq!(registered_slots(), before);
        disable();
    }
}
