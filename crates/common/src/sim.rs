//! Total-ordered similarity values.
//!
//! Semantic-overlap edge weights live in `[0, 1]` (Def. 1 of the paper:
//! `sim` returns 1 for identical elements and a value in `[0, 1]`
//! otherwise). [`Sim`] wraps `f64`, rejects NaN at construction, and
//! implements `Ord`, so bounds can be used as keys of ordered collections
//! (the paper's `Llb`/`Lub` lists, the bucket maps of the iUB filter)
//! without `unsafe` or panicking comparators.
//!
//! Scores (sums of similarities) can exceed 1; `Sim` therefore only clamps
//! negatives and NaN, not the upper range.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A non-NaN, non-negative similarity or score value with a total order.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Sim(f64);

impl Sim {
    /// The zero score.
    pub const ZERO: Sim = Sim(0.0);
    /// The maximal single-edge similarity (identical elements).
    pub const ONE: Sim = Sim(1.0);

    /// Creates a new `Sim`, clamping negatives to zero.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN — similarity functions must never produce NaN;
    /// failing fast here is preferable to corrupting ordered structures.
    #[inline]
    pub fn new(v: f64) -> Sim {
        assert!(!v.is_nan(), "similarity must not be NaN");
        Sim(v.max(0.0))
    }

    /// The raw `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether the value is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: Sim) -> Sim {
        Sim((self.0 - rhs.0).max(0.0))
    }

    /// Multiplies a score by a cardinality (used by the UB filters:
    /// `min(|Q|,|C|) · sim`).
    #[inline]
    pub fn times(self, n: usize) -> Sim {
        Sim(self.0 * n as f64)
    }
}

impl Eq for Sim {}

impl PartialOrd for Sim {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sim {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are never NaN by construction.
        self.0.partial_cmp(&other.0).expect("Sim is never NaN")
    }
}

impl Add for Sim {
    type Output = Sim;
    #[inline]
    fn add(self, rhs: Sim) -> Sim {
        Sim(self.0 + rhs.0)
    }
}

impl AddAssign for Sim {
    #[inline]
    fn add_assign(&mut self, rhs: Sim) {
        self.0 += rhs.0;
    }
}

impl Sub for Sim {
    type Output = Sim;
    /// Saturating at zero: scores are never negative.
    #[inline]
    fn sub(self, rhs: Sim) -> Sim {
        self.saturating_sub(rhs)
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl fmt::Display for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Sim {
    #[inline]
    fn from(v: f64) -> Self {
        Sim::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_negative() {
        assert_eq!(Sim::new(-0.5), Sim::ZERO);
        assert_eq!(Sim::new(0.25).get(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn construction_rejects_nan() {
        let _ = Sim::new(f64::NAN);
    }

    #[test]
    fn total_order() {
        let mut v = vec![Sim::new(0.9), Sim::ZERO, Sim::new(0.5), Sim::ONE];
        v.sort();
        assert_eq!(v, vec![Sim::ZERO, Sim::new(0.5), Sim::new(0.9), Sim::ONE]);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Sim::new(0.4) + Sim::new(0.6), Sim::ONE);
        assert_eq!(Sim::new(0.4) - Sim::new(0.6), Sim::ZERO);
        assert_eq!(Sim::new(0.6) - Sim::new(0.4), Sim::new(0.6 - 0.4));
        assert_eq!(Sim::new(0.5).times(4), Sim::new(2.0));
        let mut s = Sim::ZERO;
        s += Sim::new(1.5);
        assert_eq!(s.get(), 1.5);
    }

    #[test]
    fn scores_above_one_are_allowed() {
        let s = Sim::new(3.75);
        assert_eq!(s.get(), 3.75);
        assert!(s > Sim::ONE);
    }
}
