//! String interning for set elements.
//!
//! All crates refer to tokens by [`TokenId`]; the interner owns the actual
//! strings. Queries and the repository must share one interner so that
//! "identical element" (similarity 1, even out-of-vocabulary — §V of the
//! paper) is a simple id comparison.

use crate::ids::TokenId;
use crate::memsize::HeapSize;
use std::collections::HashMap;

/// A bidirectional map between token strings and dense [`TokenId`]s.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, TokenId>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` distinct tokens.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            map: HashMap::with_capacity(n),
            strings: Vec::with_capacity(n),
        }
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> TokenId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = TokenId(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Looks up the id of `s` without interning.
    pub fn get(&self, s: &str) -> Option<TokenId> {
        self.map.get(s).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.strings[id.idx()]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (TokenId(i as u32), &**s))
    }
}

impl HeapSize for Interner {
    fn heap_size(&self) -> usize {
        let strings: usize = self
            .strings
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Box<str>>())
            .sum();
        // Map keys are separate boxes sharing no storage with `strings`.
        let map_overhead = self.map.capacity() * (std::mem::size_of::<(Box<str>, TokenId)>() + 1)
            + self.strings.iter().map(|s| s.len()).sum::<usize>();
        strings + map_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("world");
        let a2 = i.intern("hello");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let id = i.intern("Charleston");
        assert_eq!(i.resolve(id), "Charleston");
        assert_eq!(i.get("Charleston"), Some(id));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        for (n, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(w), TokenId(n as u32));
        }
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn heap_size_grows() {
        let mut i = Interner::new();
        let empty = i.heap_size();
        for n in 0..1000 {
            i.intern(&format!("token-{n}"));
        }
        assert!(i.heap_size() > empty);
    }
}
