//! Stable 64-bit fingerprints.
//!
//! Serving layers key caches by a fingerprint of the normalized request
//! (query tokens + search parameters). `std::hash` deliberately does not
//! promise stability across releases or processes, so this module provides
//! a small FNV-1a–based hasher whose output is a pure function of the fed
//! bytes — stable across runs, platforms and compiler versions, which makes
//! fingerprints safe to log, shard on, or persist.
//!
//! Fingerprints are *identifiers, not proofs*: 64 bits can collide, so a
//! correct cache stores the full key alongside the entry and verifies
//! equality on lookup (see `koios-service`).

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental, order-sensitive 64-bit fingerprint builder.
///
/// ```
/// use koios_common::fingerprint::Fingerprinter;
///
/// let mut fp = Fingerprinter::new();
/// fp.write_bytes(b"query");
/// fp.write_u64(10);
/// let a = fp.finish();
/// assert_eq!(a, {
///     let mut fp = Fingerprinter::new();
///     fp.write_bytes(b"query");
///     fp.write_u64(10);
///     fp.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// Starts a fingerprint from the FNV offset basis.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` (so 32- and 64-bit platforms agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a sequence of `u32` ids (e.g. interned token ids) prefixed by
    /// its length, so `[1, 2]` followed by `[3]` differs from `[1, 2, 3]`.
    /// Takes an iterator so id-newtype callers can feed raw ids without
    /// allocating a temporary buffer.
    pub fn write_u32_ids<I>(&mut self, ids: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        self.write_usize(ids.len());
        for id in ids {
            self.write_u32(id);
        }
    }

    /// The fingerprint of everything fed so far. Does not consume the
    /// builder; feeding more afterwards continues from the same state.
    pub fn finish(&self) -> u64 {
        // One avalanche round on top of FNV-1a: plain FNV is weak in the
        // high bits, and cache shards may use them.
        mix64(self.state)
    }
}

/// Renders a fingerprint as the fixed-width hex string operators grep
/// for (`"0x1f2e3d4c5b6a7988"`) — the canonical display form in slow-query
/// logs and trace lines, stable across layers so one query can be
/// correlated between a response, a log line, and a cache key.
pub fn hex(fingerprint: u64) -> String {
    format!("{fingerprint:#018x}")
}

/// The splitmix64 finalizer: a full-avalanche bijective mix of 64 bits.
/// Shared by fingerprints and the deterministic pseudo-random partitioner
/// (`koios-core`), so the workspace has exactly one copy of the constants.
pub fn mix64(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random partition of a set id — the one shard-
/// assignment function of the workspace. The partitioned engine
/// (`koios-core`) routes every set through this at build time, and the
/// snapshot delta replay (`koios-store`) must route live-appended sets
/// **identically** or a reloaded engine would diverge from the one that
/// wrote the delta; a single definition here makes that agreement
/// structural.
///
/// # Panics
///
/// Panics if `partitions == 0`.
pub fn partition_of(seed: u64, set: crate::SetId, partitions: usize) -> usize {
    let z = mix64(seed ^ (set.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (z % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let mut a = Fingerprinter::new();
        let mut b = Fingerprinter::new();
        for fp in [&mut a, &mut b] {
            fp.write_bytes(b"koios");
            fp.write_u64(7);
            fp.write_u64(0.8f64.to_bits());
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn stable_known_value() {
        // Pin the algorithm: changing FNV/finalizer would silently
        // invalidate persisted fingerprints.
        let mut fp = Fingerprinter::new();
        fp.write_bytes(b"koios");
        assert_eq!(fp.finish(), 0xE6F2_8F54_69D3_412F);
    }

    #[test]
    fn hex_is_fixed_width_and_prefixed() {
        assert_eq!(hex(0), "0x0000000000000000");
        assert_eq!(hex(0xE6F2_8F54_69D3_412F), "0xe6f28f5469d3412f");
        assert_eq!(hex(u64::MAX), "0xffffffffffffffff");
    }

    #[test]
    fn order_and_content_sensitive() {
        let mut a = Fingerprinter::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fingerprinter::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u32_ids_are_length_prefixed() {
        let fp_of = |slices: &[&[u32]]| {
            let mut fp = Fingerprinter::new();
            for s in slices {
                fp.write_u32_ids(s.iter().copied());
            }
            fp.finish()
        };
        assert_ne!(fp_of(&[&[1, 2]]), fp_of(&[&[1, 2, 2]]));
        assert_ne!(fp_of(&[&[]]), fp_of(&[&[0]]));
        assert_eq!(fp_of(&[&[3, 5]]), fp_of(&[&[3, 5]]));
        // Length prefixes keep concatenations apart.
        assert_ne!(fp_of(&[&[1, 2], &[3]]), fp_of(&[&[1, 2, 3]]));
    }

    #[test]
    fn partition_of_is_deterministic_and_total() {
        use crate::SetId;
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            let p = partition_of(0xC0FFEE, SetId(i), 4);
            assert_eq!(p, partition_of(0xC0FFEE, SetId(i), 4));
            counts[p] += 1;
        }
        // Pseudo-random: every shard gets a substantial share.
        assert!(counts.iter().all(|&c| c > 150), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn finish_is_non_consuming() {
        let mut fp = Fingerprinter::new();
        fp.write_u64(1);
        let first = fp.finish();
        assert_eq!(first, fp.finish());
        fp.write_u64(2);
        assert_ne!(first, fp.finish());
    }
}
