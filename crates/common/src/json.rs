//! A minimal, dependency-free JSON value with an encoder and a decoder.
//!
//! The network front-end (`koios-net`) needs a serialized request/response
//! contract, and this environment cannot reach crates.io for `serde` — so
//! the subset of JSON the wire format needs is hand-rolled here: the six
//! value kinds, UTF-8 strings with the standard escapes (including `\uXXXX`
//! with surrogate pairs), `f64` numbers, and objects that preserve insertion
//! order. The parser is a recursive-descent scanner with a depth limit, so
//! malformed or adversarial payloads fail with a [`JsonError`] instead of
//! exhausting the stack.
//!
//! Encoding is the inverse of parsing for every value this module can
//! represent (`parse(v.encode()) == v`), with one caveat inherited from
//! JSON itself: non-finite numbers do not exist on the wire, so `NaN` and
//! infinities encode as `null`.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (duplicate keys keep the
    /// last occurrence on lookup, as most parsers do).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Serializes the value to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints the shortest round-trippable form;
                    // integral values get a plain integer rendering.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (last occurrence wins). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("digits required after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("digits required in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let encoded = v.encode();
        let parsed = Json::parse(&encoded).unwrap_or_else(|e| panic!("{encoded}: {e}"));
        assert_eq!(&parsed, v, "through {encoded}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-3.0),
            Json::Num(0.25),
            Json::Num(1e300),
            Json::Num(123456789.5),
            Json::Str(String::new()),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t \r \u{08} \u{0C} \u{1} ünïcödé 👍"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::obj([
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
            (
                "nested",
                Json::arr([Json::Null, Json::arr([Json::num(1.0)])]),
            ),
            (
                "obj",
                Json::obj([("a", Json::Bool(true)), ("b", Json::str("x"))]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn parses_standard_syntax() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5e1 , -3 ] , "b" : null , "c": "A😀" } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert!(v.get("b").unwrap().is_null());
        assert_eq!(v.get("c").unwrap().as_str(), Some("A😀"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "1 2",
            "[1] trailing",
            "nan",
            "--1",
            "1.",
            "1e",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(5.0).encode(), "5");
        assert_eq!(Json::num(5.5).encode(), "5.5");
        assert_eq!(Json::num(f64::NAN).encode(), "null");
        assert_eq!(Json::num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Json::num(7.0).as_u64(), Some(7));
        assert_eq!(Json::num(7.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
        assert_eq!(Json::str("7").as_u64(), None);
    }
}
