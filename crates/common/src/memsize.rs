//! Heap-footprint accounting.
//!
//! The paper reports the memory footprint of Koios as the sum of the
//! footprints of its search data structures (inverted index, token stream,
//! candidate states, buckets, top-k lists — §VIII-D). [`HeapSize`] is a
//! lightweight estimator of the *heap* bytes owned by a value; stack size is
//! excluded (add `size_of::<T>()` at the root if desired).
//!
//! Estimates intentionally mirror the container layouts (`Vec` capacity ×
//! element size, hash-map capacity × bucket size) rather than allocator
//! internals: they are meant for comparative plots (Fig. 5d/6d/7d), not
//! byte-exact accounting.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

/// Estimated number of heap bytes owned by a value.
pub trait HeapSize {
    /// Heap bytes owned (excluding the shallow `size_of` of `self`).
    fn heap_size(&self) -> usize;
}

macro_rules! zero_heap {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

zero_heap!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    crate::ids::TokenId,
    crate::ids::SetId,
    crate::sim::Sim
);

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

impl<A: HeapSize, B: HeapSize, C: HeapSize> HeapSize for (A, B, C) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size() + self.2.heap_size()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for VecDeque<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_size(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl HeapSize for Box<str> {
    fn heap_size(&self) -> usize {
        self.len()
    }
}

impl<T: HeapSize> HeapSize for BinaryHeap<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

/// Approximate per-slot overhead of `std::collections::HashMap` (SwissTable
/// control byte + load-factor headroom baked into `capacity()`).
const HASH_SLOT_OVERHEAD: usize = 1;

impl<K: HeapSize, V: HeapSize, S> HeapSize for HashMap<K, V, S> {
    fn heap_size(&self) -> usize {
        self.capacity() * (std::mem::size_of::<(K, V)>() + HASH_SLOT_OVERHEAD)
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl<T: HeapSize, S> HeapSize for HashSet<T, S> {
    fn heap_size(&self) -> usize {
        self.capacity() * (std::mem::size_of::<T>() + HASH_SLOT_OVERHEAD)
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

/// B-tree nodes hold up to 11 entries; ~2/3 average occupancy plus edge
/// pointers is approximated with a 1.5× factor on the entry payload.
fn btree_entry_bytes(n: usize, entry: usize) -> usize {
    (n * entry * 3) / 2
}

impl<K: HeapSize, V: HeapSize> HeapSize for BTreeMap<K, V> {
    fn heap_size(&self) -> usize {
        btree_entry_bytes(self.len(), std::mem::size_of::<(K, V)>())
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for BTreeSet<T> {
    fn heap_size(&self) -> usize {
        btree_entry_bytes(self.len(), std::mem::size_of::<T>())
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

/// A labelled memory report: structure name → bytes.
///
/// The harness sums these per phase to reproduce the paper's footprint
/// tables; `Display` renders a human-readable breakdown.
#[derive(Default, Debug, Clone)]
pub struct MemoryReport {
    entries: Vec<(&'static str, usize)>,
}

impl MemoryReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` for structure `name` (accumulates on repeat).
    pub fn add(&mut self, name: &'static str, bytes: usize) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 += bytes;
        } else {
            self.entries.push((name, bytes));
        }
    }

    /// Total bytes across all structures.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Total in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }

    /// Iterates `(name, bytes)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.entries.iter().copied()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &MemoryReport) {
        for (n, b) in other.iter() {
            self.add(n, b);
        }
    }

    /// Takes the per-entry maximum with another report (used when the same
    /// structures are measured at several instants and the peak is wanted).
    pub fn max_merge(&mut self, other: &MemoryReport) {
        for (n, b) in other.iter() {
            if let Some(e) = self.entries.iter_mut().find(|(en, _)| *en == n) {
                e.1 = e.1.max(b);
            } else {
                self.entries.push((n, b));
            }
        }
    }
}

impl std::fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, bytes) in &self.entries {
            writeln!(
                f,
                "{name:>24}: {:>10.3} MiB",
                *bytes as f64 / (1024.0 * 1024.0)
            )?;
        }
        write!(f, "{:>24}: {:>10.3} MiB", "total", self.total_mib())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_heap_size_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_size(), 16 * 8);
    }

    #[test]
    fn nested_vec_counts_children() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4]];
        let inner: usize = v.iter().map(|x| x.capacity() * 4).sum();
        assert_eq!(
            v.heap_size(),
            v.capacity() * std::mem::size_of::<Vec<u32>>() + inner
        );
    }

    #[test]
    fn string_counts_bytes() {
        let s = String::from("abcd");
        assert!(s.heap_size() >= 4);
    }

    #[test]
    fn hashmap_nonzero_after_insert() {
        let mut m: HashMap<u32, u64> = HashMap::new();
        assert_eq!(m.heap_size(), 0);
        m.insert(1, 2);
        assert!(m.heap_size() > 0);
    }

    #[test]
    fn report_accumulates_and_totals() {
        let mut r = MemoryReport::new();
        r.add("index", 100);
        r.add("index", 50);
        r.add("stream", 25);
        assert_eq!(r.total(), 175);
        let mut peak = MemoryReport::new();
        peak.add("index", 120);
        r.max_merge(&peak);
        assert_eq!(r.total(), 175); // index stays at 150 (>120)
        peak.add("other", 10);
        r.max_merge(&peak);
        assert_eq!(r.total(), 185);
    }

    #[test]
    fn report_display_mentions_total() {
        let mut r = MemoryReport::new();
        r.add("x", 1024 * 1024);
        let s = format!("{r}");
        assert!(s.contains("total"));
        assert!(s.contains("1.000 MiB"));
    }
}
