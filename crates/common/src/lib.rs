//! Shared primitives for the Koios workspace.
//!
//! This crate holds the small, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! * [`TokenId`] / [`SetId`] — compact newtype identifiers for set elements
//!   (tokens) and sets.
//! * [`Sim`] — a total-ordered, NaN-free similarity value in `[0, 1]`
//!   (edge weights of the semantic-overlap bipartite graph).
//! * [`fingerprint::Fingerprinter`] — stable 64-bit request fingerprints
//!   (cache keys for the serving layer).
//! * [`Interner`] — a string interner mapping tokens to [`TokenId`]s.
//! * [`topk::TopKList`] — the bounded score lists the paper calls `Llb` and
//!   `Lub` (running top-k lower/upper bounds, `θ` = bottom of the list).
//! * [`memsize::HeapSize`] — heap-footprint accounting used to reproduce the
//!   paper's memory experiments (Table III, Fig. 5d/6d/7d).
//! * [`sparse::IdxSet`] — a small sorted integer set used for per-candidate
//!   matched/seen element tracking during refinement.
//! * [`json::Json`] — a minimal JSON value with an encoder/decoder (the wire
//!   format of the `koios-net` HTTP front-end; crates.io — and therefore
//!   `serde` — is unreachable here).
//! * [`profile`] — the publishing side of the cooperative wall-clock
//!   profiler: per-thread atomic `(stage, shard)` slots the engine and
//!   service crates write and the `koios-telemetry` sampler reads.
//!
//! Entry points: most users only touch [`TokenId`]/[`SetId`] (returned by
//! `Repository::intern_query` in `koios-embed`) and import the rest through
//! [`prelude`]; the other items are engine-internal plumbing.

pub mod fingerprint;
pub mod ids;
pub mod interner;
pub mod json;
pub mod memsize;
pub mod profile;
pub mod sim;
pub mod sparse;
pub mod topk;

pub use fingerprint::Fingerprinter;
pub use ids::{SetId, TokenId};
pub use interner::Interner;
pub use json::Json;
pub use memsize::HeapSize;
pub use sim::Sim;

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::fingerprint::Fingerprinter;
    pub use crate::ids::{SetId, TokenId};
    pub use crate::interner::Interner;
    pub use crate::json::Json;
    pub use crate::memsize::HeapSize;
    pub use crate::sim::Sim;
    pub use crate::topk::TopKList;
}
