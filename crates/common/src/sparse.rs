//! Small sorted integer sets.
//!
//! During refinement every candidate set tracks which query elements it has
//! matched (greedy iLB), which query rows it has seen (sound iUB), and which
//! of its own tokens are matched. These sets are tiny for the overwhelming
//! majority of candidates (most candidates receive a handful of stream
//! tuples before being pruned), so a sorted `Vec<u32>` with binary-search
//! insertion beats both hash sets and bitmaps on memory — the dominant cost
//! at WDC scale where hundreds of thousands of candidates are live at once.

use crate::memsize::HeapSize;

/// A sorted, deduplicated set of `u32` indices optimised for small sizes.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct IdxSet {
    items: Vec<u32>,
}

impl IdxSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `v` is present.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Inserts `v`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, v);
                true
            }
        }
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: u32) -> bool {
        match self.items.binary_search(&v) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.items.iter().copied()
    }

    /// Removes all elements but keeps the allocation.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl FromIterator<u32> for IdxSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut items: Vec<u32> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        IdxSet { items }
    }
}

impl HeapSize for IdxSet {
    fn heap_size(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_sorts() {
        let mut s = IdxSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert!(s.insert(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_and_remove() {
        let mut s: IdxSet = [4, 2, 9].into_iter().collect();
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert!(s.remove(4));
        assert!(!s.remove(4));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_iter_dedups() {
        let s: IdxSet = [3, 3, 1, 2, 1].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut s: IdxSet = (0..100).collect();
        let cap = s.heap_size();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.heap_size(), cap);
    }
}
