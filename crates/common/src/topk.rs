//! Bounded top-k score lists.
//!
//! [`TopKList`] implements the running lists the paper maintains during both
//! phases: `Llb`, the top-k *lower bounds* whose minimum is `θlb` (Lemma 4),
//! and `Lub`, the top-k *upper bounds* whose minimum is `θub` (Lemma 7).
//! Scores can be updated in either direction and entries evicted by better
//! ones can re-enter later with a higher score.

use crate::ids::SetId;
use crate::memsize::HeapSize;
use crate::sim::Sim;
use std::collections::{BTreeSet, HashMap};

/// A list of at most `k` `(SetId, Sim)` entries keeping the largest scores.
///
/// `bottom()` is the paper's `θ` for the respective list: the k-th largest
/// score, or `None` while fewer than `k` entries are present (treated as 0
/// by the filters — no pruning can happen before `k` candidates exist).
#[derive(Debug, Clone)]
pub struct TopKList {
    k: usize,
    by_score: BTreeSet<(Sim, SetId)>,
    scores: HashMap<SetId, Sim>,
}

impl TopKList {
    /// Creates an empty list with capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k list requires k >= 1");
        TopKList {
            k,
            by_score: BTreeSet::new(),
            scores: HashMap::new(),
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of entries (≤ k).
    pub fn len(&self) -> usize {
        self.by_score.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.by_score.is_empty()
    }

    /// Whether the list holds `k` entries.
    pub fn is_full(&self) -> bool {
        self.by_score.len() == self.k
    }

    /// The k-th largest score (the minimum of the list) once full.
    pub fn bottom(&self) -> Option<Sim> {
        if self.is_full() {
            self.by_score.first().map(|&(s, _)| s)
        } else {
            None
        }
    }

    /// `bottom()` as a plain threshold: 0 until the list is full.
    pub fn threshold(&self) -> Sim {
        self.bottom().unwrap_or(Sim::ZERO)
    }

    /// The current score of `id`, if listed.
    pub fn score_of(&self, id: SetId) -> Option<Sim> {
        self.scores.get(&id).copied()
    }

    /// Whether `id` is currently listed.
    pub fn contains(&self, id: SetId) -> bool {
        self.scores.contains_key(&id)
    }

    /// Offers `(id, score)` to the list.
    ///
    /// * A listed `id` has its score replaced (either direction); if the new
    ///   score falls below a previously evicted competitor that competitor is
    ///   *not* resurrected — callers that need that behaviour (none in Koios:
    ///   `Llb` scores only grow, `Lub` evictions go through [`Self::remove`])
    ///   must re-offer it.
    /// * An unlisted `id` enters if the list is not full or `score` beats the
    ///   current bottom, evicting the bottom entry.
    ///
    /// Returns `true` if the list content or ordering changed.
    pub fn offer(&mut self, id: SetId, score: Sim) -> bool {
        if let Some(&old) = self.scores.get(&id) {
            if old == score {
                return false;
            }
            self.by_score.remove(&(old, id));
            self.by_score.insert((score, id));
            self.scores.insert(id, score);
            return true;
        }
        if self.by_score.len() < self.k {
            self.by_score.insert((score, id));
            self.scores.insert(id, score);
            return true;
        }
        let &(bottom_score, bottom_id) = self.by_score.first().expect("list is full");
        if score <= bottom_score {
            return false;
        }
        self.by_score.remove(&(bottom_score, bottom_id));
        self.scores.remove(&bottom_id);
        self.by_score.insert((score, id));
        self.scores.insert(id, score);
        true
    }

    /// Removes `id` from the list; returns its score if it was present.
    pub fn remove(&mut self, id: SetId) -> Option<Sim> {
        let score = self.scores.remove(&id)?;
        self.by_score.remove(&(score, id));
        Some(score)
    }

    /// Entries in descending score order (ties by descending id).
    pub fn iter_desc(&self) -> impl Iterator<Item = (SetId, Sim)> + '_ {
        self.by_score.iter().rev().map(|&(s, id)| (id, s))
    }

    /// The entry with the largest score.
    pub fn top(&self) -> Option<(SetId, Sim)> {
        self.by_score.last().map(|&(s, id)| (id, s))
    }
}

impl HeapSize for TopKList {
    fn heap_size(&self) -> usize {
        self.by_score.heap_size() + self.scores.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> SetId {
        SetId(v)
    }

    #[test]
    fn fills_then_evicts_bottom() {
        let mut l = TopKList::new(2);
        assert_eq!(l.bottom(), None);
        assert_eq!(l.threshold(), Sim::ZERO);
        l.offer(sid(1), Sim::new(0.5));
        assert_eq!(l.bottom(), None); // not full yet
        l.offer(sid(2), Sim::new(0.9));
        assert_eq!(l.bottom(), Some(Sim::new(0.5)));
        // Too small: rejected.
        assert!(!l.offer(sid(3), Sim::new(0.4)));
        assert!(l.contains(sid(1)));
        // Beats bottom: evicts set 1.
        assert!(l.offer(sid(4), Sim::new(0.7)));
        assert!(!l.contains(sid(1)));
        assert_eq!(l.bottom(), Some(Sim::new(0.7)));
    }

    #[test]
    fn update_existing_score() {
        let mut l = TopKList::new(2);
        l.offer(sid(1), Sim::new(0.5));
        l.offer(sid(2), Sim::new(0.6));
        assert!(l.offer(sid(1), Sim::new(0.8)));
        assert_eq!(l.score_of(sid(1)), Some(Sim::new(0.8)));
        assert_eq!(l.bottom(), Some(Sim::new(0.6)));
        // Same score: no change reported.
        assert!(!l.offer(sid(1), Sim::new(0.8)));
    }

    #[test]
    fn evicted_entry_can_reenter() {
        let mut l = TopKList::new(1);
        l.offer(sid(1), Sim::new(0.5));
        l.offer(sid(2), Sim::new(0.9)); // evicts 1
        assert!(!l.contains(sid(1)));
        l.offer(sid(1), Sim::new(1.5));
        assert!(l.contains(sid(1)));
        assert!(!l.contains(sid(2)));
    }

    #[test]
    fn iter_desc_is_sorted() {
        let mut l = TopKList::new(3);
        l.offer(sid(1), Sim::new(0.3));
        l.offer(sid(2), Sim::new(0.9));
        l.offer(sid(3), Sim::new(0.6));
        let scores: Vec<f64> = l.iter_desc().map(|(_, s)| s.get()).collect();
        assert_eq!(scores, vec![0.9, 0.6, 0.3]);
        assert_eq!(l.top().unwrap().0, sid(2));
    }

    #[test]
    fn remove_unlists() {
        let mut l = TopKList::new(2);
        l.offer(sid(1), Sim::new(0.5));
        assert_eq!(l.remove(sid(1)), Some(Sim::new(0.5)));
        assert_eq!(l.remove(sid(1)), None);
        assert!(l.is_empty());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = TopKList::new(0);
    }

    #[test]
    fn threshold_is_monotone_under_growing_offers() {
        // Llb usage pattern: scores only grow => θlb never decreases.
        let mut l = TopKList::new(3);
        let mut last = Sim::ZERO;
        let offers = [
            (1, 0.1),
            (2, 0.2),
            (3, 0.3),
            (1, 0.5),
            (4, 0.4),
            (2, 0.9),
            (5, 0.35),
        ];
        for (id, s) in offers {
            l.offer(sid(id), Sim::new(s));
            let t = l.threshold();
            assert!(t >= last, "θlb must not decrease: {t:?} < {last:?}");
            last = t;
        }
    }
}
