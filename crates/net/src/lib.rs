//! The network front-end of the Koios serving stack.
//!
//! The paper (ICDE 2023) evaluates in-process, single-query latency; the
//! workloads that motivate it — joinable-table search over open data
//! lakes, dataset discovery — are *services* with many concurrent remote
//! clients. `koios-service` already provides the concurrent core (a
//! persistent worker pool with a submission queue, deadlines, two caches);
//! this crate puts a socket in front of it, with zero dependencies beyond
//! `std` (crates.io is unreachable in this environment, so HTTP framing
//! and JSON are hand-rolled):
//!
//! * [`http`] — minimal HTTP/1.1 framing: `Content-Length` bodies,
//!   keep-alive, size caps, typed errors (→ `400`/`413`).
//! * [`wire`] — the serialized request/response contract between JSON
//!   payloads and [`koios_service`] types (the versionable boundary every
//!   later scale-out step builds on).
//! * [`server`] — [`server::KoiosServer`]: a `TcpListener` accept loop;
//!   connection threads parse + submit to the service's worker pool, so
//!   network callers and in-process callers share one admission-control
//!   and deadline regime. Routes: `POST /search`, `GET /stats`,
//!   `GET /metrics` (Prometheus text exposition of the service's
//!   `koios-telemetry` registry — stage/shard/queue/lock-wait histograms),
//!   `GET /healthz`, `POST /invalidate`.
//! * [`client`] — [`client::KoiosClient`]: a tiny blocking keep-alive
//!   client used by tests, examples and the bench harness.
//!
//! ```
//! use koios_common::Json;
//! use koios_core::KoiosConfig;
//! use koios_embed::repository::RepositoryBuilder;
//! use koios_embed::sim::EqualitySimilarity;
//! use koios_net::{client::KoiosClient, server::KoiosServer};
//! use koios_service::{SearchService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let mut b = RepositoryBuilder::new();
//! b.add_set("s0", ["a", "b"]);
//! b.add_set("s1", ["a", "c"]);
//! let repo = Arc::new(b.build());
//! let service = Arc::new(SearchService::new(
//!     Arc::clone(&repo),
//!     Arc::new(EqualitySimilarity),
//!     KoiosConfig::new(1, 0.9),
//!     ServiceConfig::new().with_workers(2),
//! ));
//!
//! let server = KoiosServer::bind(service, "127.0.0.1:0").unwrap();
//! let mut client = KoiosClient::new(server.addr());
//! let (status, reply) = client.search_elements(&["a", "b"]).unwrap();
//! assert_eq!(status, 200);
//! assert_eq!(reply.get("hits").unwrap().as_array().unwrap().len(), 1);
//! ```

pub mod client;
pub mod http;
pub mod server;
pub mod wire;

pub use client::{KoiosClient, NetError};
pub use http::{HttpError, HttpRequest, HttpResponse};
pub use server::KoiosServer;
