//! Hand-rolled HTTP/1.1 framing (no dependencies, `std::io` only).
//!
//! Implements exactly the subset the Koios front-end needs: request/status
//! lines, `\r\n`-terminated headers, `Content-Length`-framed bodies, and
//! keep-alive negotiation. No chunked transfer encoding, no TLS, no
//! pipelining (one in-flight request per connection). Every framing
//! violation is a typed [`HttpError`] so the server can answer `400` and
//! the client can surface a useful message, and both header block and body
//! are size-capped *during* reading (the cap is enforced chunk by chunk,
//! never after buffering a whole line) so a malicious peer cannot balloon
//! memory.
//!
//! Timeout semantics on a socket with a read timeout: a timeout **before
//! the first byte** of a new message surfaces as [`HttpError::IdleTimeout`]
//! (the keep-alive poll point — nothing was consumed, retrying is safe); a
//! timeout **mid-message** surfaces as [`HttpError::Io`], and since bytes
//! already consumed are gone, the only safe reaction is closing the
//! connection.

use std::io::{self, BufRead, ErrorKind, Write};

/// Maximum accepted size of the request/status line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 << 10;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Why reading one HTTP message failed.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying transport failed *mid-message*; bytes already
    /// consumed are lost, so the connection must be closed.
    Io(io::Error),
    /// The socket's read timeout fired before the first byte of a new
    /// message: nothing was consumed, so waiting again is safe. This is
    /// the poll point keep-alive servers use to notice shutdown.
    IdleTimeout,
    /// The peer closed the connection before sending a status line (stale
    /// keep-alive teardown on the client side; the request may never have
    /// been processed).
    Closed,
    /// The peer sent bytes that are not a valid HTTP/1.1 message.
    Malformed(String),
    /// The message exceeded [`MAX_HEAD_BYTES`] or [`MAX_BODY_BYTES`].
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::IdleTimeout => write!(f, "idle read timeout"),
            HttpError::Closed => write!(f, "connection closed before a response arrived"),
            HttpError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The request target, query string included, e.g. `/search`.
    pub path: String,
    /// The protocol version (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// `(name, value)` pairs in arrival order; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open, honoring each
    /// version's default: HTTP/1.1 keeps alive unless `Connection: close`,
    /// HTTP/1.0 closes unless `Connection: keep-alive` (1.0 clients often
    /// delimit responses by reading to EOF, so holding their socket open
    /// would hang them).
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection");
        if self.version == "HTTP/1.0" {
            matches!(connection, Some(v) if v.eq_ignore_ascii_case("keep-alive"))
        } else {
            !matches!(connection, Some(v) if v.eq_ignore_ascii_case("close"))
        }
    }

    /// Reads one request off `reader`. `Ok(None)` means the peer closed
    /// the connection cleanly before sending anything (normal keep-alive
    /// teardown); a read timeout in that same position is
    /// [`HttpError::IdleTimeout`] (retry-safe); everything else is either
    /// a request or an error.
    pub fn read_from(reader: &mut impl BufRead) -> Result<Option<HttpRequest>, HttpError> {
        let mut consumed = 0usize;
        let Some(request_line) = read_crlf_line(reader, &mut consumed)? else {
            return Ok(None);
        };
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if parts.next().is_none() && !m.is_empty() => {
                (m.to_ascii_uppercase(), p.to_string(), v.to_string())
            }
            _ => {
                return Err(HttpError::Malformed(format!(
                    "bad request line: {request_line:?}"
                )))
            }
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Malformed(format!(
                "unsupported version {version:?}"
            )));
        }
        if !path.starts_with('/') {
            return Err(HttpError::Malformed(format!("bad request target {path:?}")));
        }
        let headers = read_headers(reader, &mut consumed)?;
        let body = read_body(reader, &headers)?;
        Ok(Some(HttpRequest {
            method,
            path,
            version,
            headers,
            body,
        }))
    }
}

/// One response, built by the handler and serialized by the server (or
/// parsed by the client).
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code (200, 400, …).
    pub status: u16,
    /// `(name, value)` pairs; names lower-cased when parsed.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response with the right `Content-Type`.
    pub fn json(status: u16, body: &koios_common::Json) -> Self {
        HttpResponse {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.encode().into_bytes(),
        }
    }

    /// A plain-text response (`GET /debug/profile?format=collapsed` — the
    /// flamegraph-ready collapsed-stack body).
    pub fn text(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            headers: vec![("content-type".into(), "text/plain; charset=utf-8".into())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response carrying the Prometheus exposition
    /// content-type (text format version 0.0.4) — what scrapers expect
    /// from `GET /metrics`.
    pub fn metrics_text(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            headers: vec![(
                "content-type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: body.into_bytes(),
        }
    }

    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes status line, headers (plus `Content-Length` and
    /// `Connection`) and body onto `w`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        };
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason)?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(
            w,
            "connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Reads one response off `reader` (the client side). A connection
    /// closed before any status byte is [`HttpError::Closed`] — the stale
    /// keep-alive signature a client may retry on.
    pub fn read_from(reader: &mut impl BufRead) -> Result<HttpResponse, HttpError> {
        let mut consumed = 0;
        let status_line = read_crlf_line(reader, &mut consumed)?.ok_or(HttpError::Closed)?;
        let mut parts = status_line.splitn(3, ' ');
        let (version, code) = match (parts.next(), parts.next()) {
            (Some(v), Some(c)) => (v, c),
            _ => {
                return Err(HttpError::Malformed(format!(
                    "bad status line: {status_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "unsupported version {version:?}"
            )));
        }
        let status: u16 = code
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad status code {code:?}")))?;
        let headers = read_headers(reader, &mut consumed)?;
        let body = read_body(reader, &headers)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

/// Reads one `\n`-terminated line, enforcing the cumulative head cap
/// **while** reading (a line that never ends cannot buffer more than the
/// cap). `Ok(None)` only on EOF before the first byte of the whole
/// message; [`HttpError::IdleTimeout`] on a read timeout in that same
/// nothing-consumed-yet position.
fn read_crlf_line(
    reader: &mut impl BufRead,
    consumed: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && *consumed == 0
                    && line.is_empty() =>
            {
                return Err(HttpError::IdleTimeout);
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if buf.is_empty() {
            // EOF. Clean only if the peer closed between messages.
            if *consumed == 0 && line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("truncated line".into()));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(buf.len());
        if *consumed + take > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("header block"));
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        *consumed += take;
        if newline.is_some() {
            line.pop(); // '\n'
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Malformed("line is not UTF-8".into()));
        }
    }
}

fn read_headers(
    reader: &mut impl BufRead,
    consumed: &mut usize,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(reader, consumed)?
            .ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn read_body(
    reader: &mut impl BufRead,
    headers: &[(String, String)],
) -> Result<Vec<u8>, HttpError> {
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported".into(),
        ));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_common::Json;
    use std::io::BufReader;

    fn req(raw: &str) -> Result<Option<HttpRequest>, HttpError> {
        HttpRequest::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = req("POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/search");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive());
    }

    #[test]
    fn connection_close_is_honored() {
        let r = req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = req("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.version, "HTTP/1.0");
        assert!(!r.keep_alive(), "1.0 closes unless asked to keep alive");
        let r = req("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(r.keep_alive());
    }

    #[test]
    fn eof_before_any_byte_is_none() {
        assert!(req("").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_error() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(req(raw).is_err(), "accepted: {raw:?}");
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(req(&huge), Err(HttpError::TooLarge(_))));
        // A line that *never* ends must hit the cap mid-read — the reader
        // may not buffer unboundedly hoping for a newline.
        let endless = "a".repeat(4 * MAX_HEAD_BYTES);
        assert!(matches!(req(&endless), Err(HttpError::TooLarge(_))));
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(req(&big_body), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::json(200, &Json::obj([("ok", Json::Bool(true))]));
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let parsed = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("content-type"), Some("application/json"));
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
        let body = Json::parse(std::str::from_utf8(&parsed.body).unwrap()).unwrap();
        assert_eq!(body.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let a = HttpRequest::read_from(&mut reader).unwrap().unwrap();
        let b = HttpRequest::read_from(&mut reader).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/healthz", "/stats"));
        assert!(HttpRequest::read_from(&mut reader).unwrap().is_none());
    }
}
