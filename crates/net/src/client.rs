//! A tiny blocking HTTP client for the Koios server.
//!
//! Just enough for tests, examples and the bench harness: keep-alive
//! connection reuse, JSON request/response bodies, automatic one-shot
//! reconnect when the pooled connection was closed under us. Not a general
//! HTTP client — it only speaks to [`crate::server::KoiosServer`]-shaped
//! peers (HTTP/1.1, `Content-Length` framing).

use crate::http::{HttpError, HttpResponse};
use koios_common::Json;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The peer answered bytes that are not valid HTTP or not valid JSON.
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<HttpError> for NetError {
    fn from(e: HttpError) -> Self {
        match e {
            HttpError::Io(e) => NetError::Io(e),
            other => NetError::Protocol(other.to_string()),
        }
    }
}

/// A status code plus the decoded JSON body.
pub type JsonReply = (u16, Json);

/// A blocking client bound to one server address.
pub struct KoiosClient {
    addr: SocketAddr,
    timeout: Option<Duration>,
    traceparent: Option<String>,
    conn: Option<BufReader<TcpStream>>,
}

impl KoiosClient {
    /// A client for `addr`; connections are opened lazily and reused
    /// (keep-alive) across calls.
    pub fn new(addr: SocketAddr) -> Self {
        KoiosClient {
            addr,
            timeout: Some(Duration::from_secs(30)),
            traceparent: None,
            conn: None,
        }
    }

    /// Sets the per-read socket timeout (default 30 s; `None` blocks
    /// indefinitely).
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a `traceparent` header to every subsequent request (see
    /// [`koios_telemetry::trace::TraceContext::render_traceparent`]), so
    /// the server records its span trees under the caller's trace id.
    pub fn with_traceparent(mut self, header: impl Into<String>) -> Self {
        self.traceparent = Some(header.into());
        self
    }

    /// `POST /search` with `body` (see [`crate::wire`] for the schema).
    pub fn search(&mut self, body: &Json) -> Result<JsonReply, NetError> {
        self.request("POST", "/search", Some(body))
    }

    /// Convenience `POST /search` for plain string elements.
    pub fn search_elements<S: AsRef<str>>(
        &mut self,
        elements: &[S],
    ) -> Result<JsonReply, NetError> {
        let body = Json::obj([(
            "elements",
            Json::arr(elements.iter().map(|e| Json::str(e.as_ref()))),
        )]);
        self.search(&body)
    }

    /// `GET /stats`.
    pub fn stats(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/stats", None)
    }

    /// `GET /metrics` — the Prometheus text exposition (not JSON).
    pub fn metrics(&mut self) -> Result<(u16, String), NetError> {
        self.request_text("GET", "/metrics")
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/healthz", None)
    }

    /// `GET /healthz?full` — the deep readiness report (epoch, queue
    /// depth, worker liveness).
    pub fn healthz_full(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/healthz?full", None)
    }

    /// `GET /debug/engine` — corpus/index introspection.
    pub fn debug_engine(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/debug/engine", None)
    }

    /// `GET /debug/cache` — per-stripe cache introspection.
    pub fn debug_cache(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/debug/cache", None)
    }

    /// `GET /debug/profile` — the wall-clock profiler report.
    pub fn debug_profile(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/debug/profile", None)
    }

    /// `GET /debug/profile?format=collapsed` — the flamegraph-ready
    /// collapsed-stack text (not JSON).
    pub fn debug_profile_collapsed(&mut self) -> Result<(u16, String), NetError> {
        self.request_text("GET", "/debug/profile?format=collapsed")
    }

    /// `GET /traces` — sampler stats plus summaries of the retained ring.
    pub fn traces(&mut self) -> Result<JsonReply, NetError> {
        self.request("GET", "/traces", None)
    }

    /// `GET /traces?id=…` — the full span tree of one retained trace
    /// (404 if the tail sampler dropped it).
    pub fn trace(&mut self, trace_id: u64) -> Result<JsonReply, NetError> {
        let path = format!("/traces?id={}", koios_common::fingerprint::hex(trace_id));
        self.request("GET", &path, None)
    }

    /// `POST /invalidate`.
    pub fn invalidate(&mut self) -> Result<JsonReply, NetError> {
        self.request("POST", "/invalidate", None)
    }

    /// `POST /ingest` with a pre-built `{"ops": [...]}` body (see
    /// [`crate::wire::parse_ingest_request`] for the op schema).
    pub fn ingest(&mut self, body: &Json) -> Result<JsonReply, NetError> {
        self.request("POST", "/ingest", Some(body))
    }

    /// `POST /snapshot` — persist the served corpus to `path` on the
    /// *server's* filesystem (appends a delta when `path` is the file the
    /// backend was last snapshotted to).
    pub fn snapshot(&mut self, path: &str) -> Result<JsonReply, NetError> {
        let body = Json::obj([("path", Json::str(path))]);
        self.request("POST", "/snapshot", Some(&body))
    }

    /// `POST /reload` — hot-swap the server's backend from a snapshot file.
    pub fn reload(&mut self, path: &str) -> Result<JsonReply, NetError> {
        let body = Json::obj([("path", Json::str(path))]);
        self.request("POST", "/reload", Some(&body))
    }

    /// One HTTP exchange; retried once on a fresh connection **only** when
    /// the pooled keep-alive connection turned out to be stale in a way
    /// that cannot have double-executed the request: the write itself
    /// failed, or the server closed the connection without sending a
    /// single response byte ([`HttpError::Closed`] — the server writes the
    /// response before any keep-alive close, so no status byte means the
    /// request was not answered). A failure *mid-response* is returned as
    /// an error instead of re-sent, since the server has already executed
    /// the request by the time it answers.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<JsonReply, NetError> {
        let had_pooled_conn = self.conn.is_some();
        match self.request_once(method, path, body) {
            Err((e, retryable)) => {
                if retryable && had_pooled_conn {
                    self.request_once(method, path, body).map_err(|(e, _)| e)
                } else {
                    Err(e)
                }
            }
            Ok(reply) => Ok(reply),
        }
    }

    /// Like [`KoiosClient::request`] but for plain-text bodies (e.g.
    /// `GET /metrics`, whose Prometheus exposition is not JSON). Same
    /// stale-keep-alive retry rules.
    pub fn request_text(&mut self, method: &str, path: &str) -> Result<(u16, String), NetError> {
        let had_pooled_conn = self.conn.is_some();
        let decode = |response: HttpResponse| {
            let text = String::from_utf8(response.body).map_err(|_| {
                (
                    NetError::Protocol("response body is not UTF-8".into()),
                    false,
                )
            })?;
            Ok((response.status, text))
        };
        match self.exchange_once(method, path, None).and_then(decode) {
            Err((e, retryable)) => {
                if retryable && had_pooled_conn {
                    self.exchange_once(method, path, None)
                        .and_then(decode)
                        .map_err(|(e, _)| e)
                } else {
                    Err(e)
                }
            }
            Ok(reply) => Ok(reply),
        }
    }

    /// One exchange decoded as JSON; errors carry whether a retry on a
    /// fresh connection is safe (no risk of double execution).
    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<JsonReply, (NetError, bool)> {
        let response = self.exchange_once(method, path, body)?;
        let text = std::str::from_utf8(&response.body).map_err(|_| {
            (
                NetError::Protocol("response body is not UTF-8".into()),
                false,
            )
        })?;
        let json = if text.is_empty() {
            Json::Null
        } else {
            Json::parse(text).map_err(|e| (NetError::Protocol(e.to_string()), false))?
        };
        Ok((response.status, json))
    }

    /// One raw HTTP exchange on the pooled connection.
    fn exchange_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<HttpResponse, (NetError, bool)> {
        if self.conn.is_none() {
            let fresh = (|| {
                let stream = TcpStream::connect(self.addr)?;
                stream.set_read_timeout(self.timeout)?;
                stream.set_nodelay(true)?;
                Ok::<TcpStream, io::Error>(stream)
            })()
            .map_err(|e| (NetError::Io(e), false))?;
            self.conn = Some(BufReader::new(fresh));
        }
        let reader = self.conn.as_mut().expect("just ensured");

        let payload = body.map(|b| b.encode().into_bytes()).unwrap_or_default();
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: koios\r\n");
        if body.is_some() {
            head.push_str("content-type: application/json\r\n");
        }
        if let Some(tp) = &self.traceparent {
            head.push_str(&format!("traceparent: {tp}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", payload.len()));

        let write_result = (|| {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(&payload)?;
            stream.flush()
        })();
        if let Err(e) = write_result {
            // Nothing of the response was consumed; the request may sit in
            // a dead socket's buffer but was provably not answered.
            self.conn = None;
            return Err((e.into(), true));
        }

        let response = match HttpResponse::read_from(reader) {
            Ok(r) => r,
            Err(e) => {
                self.conn = None;
                // EOF before any status byte is the stale keep-alive
                // signature — safe to retry. Anything later (garbled or
                // truncated mid-response) is not.
                let retryable = matches!(e, HttpError::Closed);
                return Err((e.into(), retryable));
            }
        };
        if matches!(response.header("connection"), Some(v) if v.eq_ignore_ascii_case("close")) {
            self.conn = None;
        }
        Ok(response)
    }
}
