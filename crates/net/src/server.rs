//! The HTTP server: a `std::net::TcpListener` accept loop in front of a
//! shared [`SearchService`].
//!
//! One thread accepts connections; each connection gets a handler thread
//! that reads HTTP/1.1 requests in a keep-alive loop and dispatches them.
//! The *search work itself* still runs on the service's persistent worker
//! pool — connection threads only parse, submit, await and serialize, so a
//! slow search does not monopolize a listener and the pool keeps applying
//! admission control and deadlines uniformly for network and in-process
//! callers alike.
//!
//! Routes:
//!
//! | Route | Meaning |
//! |-------|---------|
//! | `POST /search` | run one top-k search (body: see [`crate::wire`]) |
//! | `GET /stats` | [`ServiceStats`](koios_service::ServiceStats) snapshot |
//! | `GET /metrics` | Prometheus text exposition of the service registry |
//! | `GET /traces` | retained request traces (`?id=0x…` for one span tree) |
//! | `GET /healthz` | liveness + basic shape of the backend (`?full` for the readiness report) |
//! | `GET /debug/engine` | corpus/index introspection: liveness, posting histograms, MinHash occupancy, memory |
//! | `GET /debug/cache` | per-stripe occupancy/bytes/age of both striped caches |
//! | `GET /debug/profile` | wall-clock profiler: self-time table (`?format=collapsed` for flamegraph input) |
//! | `POST /invalidate` | drop result cache + bump token-cache generation |
//! | `POST /ingest` | apply a live mutation batch (body: see [`crate::wire`]) |
//! | `POST /snapshot` | persist the corpus (`{"path": ...}`; appends a delta when chaining) |
//! | `POST /reload` | hot-swap the backend from a snapshot file (`{"path": ...}`) |
//!
//! The mutation routes require a service built over a mutable engine
//! ([`SearchService::from_mutable`](koios_service::SearchService::from_mutable)
//! or `from_snapshot`); on an immutable service they answer `409`. A
//! rejected batch (unknown set id, embedding dimension mismatch) is `400`
//! and mutates nothing; snapshot I/O failures are `500`.
//!
//! `POST /search` honours a `traceparent` request header (W3C-style
//! `00-<trace>-<span>-<flags>`): the request's span tree is recorded under
//! the client's trace id, parented to the client's span, and — when the
//! sampled flag is set — force-retained in the trace ring. The response
//! body's `"trace_id"` echoes whichever id (propagated or minted) the tree
//! was recorded under.
//!
//! Unknown paths give `404`, known paths with the wrong method `405`,
//! framing or JSON errors `400` (with an `"error"` body), oversized
//! messages `413`. Shutdown is graceful: stop accepting, then join every
//! connection thread (idle keep-alive connections notice within
//! [`IDLE_POLL`]).

use crate::http::{HttpError, HttpRequest, HttpResponse};
use crate::wire;
use koios_common::Json;
use koios_service::SearchService;
use koios_telemetry::trace::{trace_summary_json, trace_to_json, TraceContext};
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle keep-alive connection re-checks the shutdown flag.
pub const IDLE_POLL: Duration = Duration::from_millis(200);

/// Maximum concurrently served connections. The per-message size caps in
/// [`crate::http`] bound memory per connection; this bounds the *number*
/// of handler threads, so a connection flood gets `503`s instead of
/// exhausting threads. Generous for a search service whose real ceiling
/// is the worker pool behind the queue.
pub const MAX_CONNECTIONS: usize = 256;

/// How many announced-but-unread body bytes the server drains before
/// answering `413` and closing — gives a client mid-upload a chance to
/// finish writing and actually *read* the rejection instead of seeing a
/// connection reset.
const DRAIN_LIMIT: u64 = 16 << 20;

/// A running server; dropping it (or calling [`KoiosServer::shutdown`])
/// stops the accept loop and joins every connection handler.
pub struct KoiosServer {
    service: Arc<SearchService>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl KoiosServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving `service` immediately.
    pub fn bind(service: Arc<SearchService>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, service, stop))
        };
        Ok(KoiosServer {
            service,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener.
    pub fn service(&self) -> &Arc<SearchService> {
        &self.service
    }

    /// Stops accepting, wakes the accept loop, and joins every connection
    /// thread. In-flight requests finish; idle keep-alive connections are
    /// closed at their next [`IDLE_POLL`] tick. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            // Poke the blocking `accept` so it observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for KoiosServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, service: Arc<SearchService>, stop: Arc<AtomicBool>) {
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let live = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // Admission at the socket level: refuse the connection with a 503
        // instead of spawning an unbounded number of handler threads.
        if live.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            let body = Json::obj([("error", Json::str("too many connections"))]);
            let _ = HttpResponse::json(503, &body).write_to(&mut stream, false);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let stop_flag = Arc::clone(&stop);
        let live_count = Arc::clone(&live);
        let handle = std::thread::spawn(move || {
            handle_connection(stream, &service, &stop_flag);
            live_count.fetch_sub(1, Ordering::SeqCst);
        });
        let mut guard = handlers.lock().expect("handler registry");
        guard.push(handle);
        // Opportunistic reaping keeps the registry from growing without
        // bound on long-lived servers.
        guard.retain(|h| !h.is_finished());
    }
    for handle in handlers.lock().expect("handler registry").drain(..) {
        let _ = handle.join();
    }
}

fn handle_connection(stream: TcpStream, service: &SearchService, stop: &AtomicBool) {
    // Short read timeouts turn idle blocking reads into shutdown-flag polls.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match HttpRequest::read_from(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close
            Err(HttpError::IdleTimeout) => {
                // Idle between requests, nothing consumed: poll the flag,
                // keep waiting.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            // Peer went away — or stalled *mid-message* past the read
            // timeout. Bytes of the half-read message are already consumed,
            // so resynchronizing is impossible; drop the connection rather
            // than parse the remainder as a fresh request.
            Err(HttpError::Io(_) | HttpError::Closed) => return,
            Err(e @ HttpError::TooLarge(_)) => {
                // The peer is probably still writing the oversized message;
                // drain a bounded amount so it can finish its send and read
                // the 413 instead of hitting a connection reset.
                let mut sink = std::io::sink();
                let _ = std::io::copy(&mut (&mut reader).take(DRAIN_LIMIT), &mut sink);
                let body = Json::obj([("error", Json::str(e.to_string()))]);
                let _ = HttpResponse::json(413, &body).write_to(&mut writer, false);
                return;
            }
            Err(e @ HttpError::Malformed(_)) => {
                let body = Json::obj([("error", Json::str(e.to_string()))]);
                let _ = HttpResponse::json(400, &body).write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = request.keep_alive() && !stop.load(Ordering::SeqCst);
        let response = dispatch(&request, service);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn dispatch(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/search") => search(request, service),
        ("GET", "/stats") => HttpResponse::json(200, &wire::stats_to_json(&service.stats())),
        ("GET", "/metrics") => HttpResponse::metrics_text(200, service.render_metrics()),
        ("GET", "/traces") => traces(request, service),
        ("GET", "/healthz") => healthz(request, service),
        ("GET", "/debug/engine") => HttpResponse::json(200, &service.debug_engine()),
        ("GET", "/debug/cache") => HttpResponse::json(200, &service.debug_cache()),
        ("GET", "/debug/profile") => debug_profile(request, service),
        ("POST", "/invalidate") => {
            service.invalidate_cache();
            HttpResponse::json(200, &Json::obj([("invalidated", Json::Bool(true))]))
        }
        ("POST", "/ingest") => ingest(request, service),
        ("POST", "/snapshot") => snapshot(request, service),
        ("POST", "/reload") => reload(request, service),
        (
            _,
            "/search" | "/stats" | "/metrics" | "/traces" | "/healthz" | "/debug/engine"
            | "/debug/cache" | "/debug/profile" | "/invalidate" | "/ingest" | "/snapshot"
            | "/reload",
        ) => HttpResponse::json(
            405,
            &Json::obj([("error", Json::str("method not allowed"))]),
        ),
        _ => HttpResponse::json(404, &Json::obj([("error", Json::str("not found"))])),
    }
}

/// `GET /healthz` — the bare probe answers with the same four fields it
/// always has (status, partitions, workers, sets: the cheap fast path load
/// balancers hammer). `?full` deepens it into a readiness report: serving
/// epoch, snapshot delta-chain length, queue depth against the worker
/// width, and worker liveness — `"ready"` flips to `false` when any worker
/// thread died.
fn healthz(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let query = request.path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let full = query.split('&').any(|kv| kv == "full" || kv == "full=1");
    let mut fields = vec![
        ("status", Json::str("ok")),
        ("partitions", Json::num(service.partitions() as f64)),
        ("workers", Json::num(service.workers() as f64)),
        ("sets", Json::num(service.repository().num_sets() as f64)),
    ];
    if full {
        let workers = service.workers();
        let live = service.live_workers();
        let queued = service.queued();
        fields.push(("epoch", Json::num(service.engine_epoch() as f64)));
        fields.push((
            "delta_chain_len",
            Json::num(service.snapshot_info().map(|s| s.deltas).unwrap_or(0) as f64),
        ));
        fields.push(("live_workers", Json::num(live as f64)));
        fields.push(("queue_depth", Json::num(queued as f64)));
        // Queue pressure relative to the pool width: >1 means requests are
        // waiting behind a full complement of busy workers.
        fields.push((
            "queue_pressure",
            Json::num(queued as f64 / workers.max(1) as f64),
        ));
        fields.push(("mutable", Json::Bool(service.is_mutable())));
        fields.push(("ready", Json::Bool(live == workers)));
    }
    HttpResponse::json(200, &Json::obj(fields))
}

/// `GET /debug/profile` — the profiler report. JSON by default (enabled
/// flag, tick counts, self-time table, collapsed stacks as a string);
/// `?format=collapsed` serves the collapsed-stack text alone, ready to
/// pipe into `flamegraph.pl`.
fn debug_profile(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let query = request.path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let collapsed = query.split('&').any(|kv| kv == "format=collapsed");
    if collapsed {
        return match service.profiler() {
            Some(p) => HttpResponse::text(200, p.collapsed_stacks()),
            None => HttpResponse::json(
                409,
                &Json::obj([("error", Json::str("profiler is disabled on this service"))]),
            ),
        };
    }
    HttpResponse::json(200, &service.debug_profile())
}

fn search(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let json = match parse_body(request) {
        Ok(json) => json,
        Err(resp) => return resp,
    };
    // Pin one repository for the whole request: parsing and response
    // serialization must agree on token ids and set names even if a
    // concurrent `/ingest` or `/reload` swaps the backend mid-request.
    let repo = service.repository();
    let mut search_request = match wire::parse_search_request(&json, &repo) {
        Ok(req) => req,
        Err(e) => return bad_request(&e),
    };
    // Wire-propagated trace context: a valid `traceparent` header threads
    // the remote caller's trace id through the whole request, so the span
    // tree the service records is a subtree of the *client's* trace.
    if let Some(ctx) = request
        .header("traceparent")
        .and_then(TraceContext::parse_traceparent)
    {
        search_request = search_request.with_trace(ctx);
    }
    // Submit-then-await on the persistent pool: the connection thread
    // blocks, the queue applies the same admission control as in-process
    // callers.
    let response = service.submit(search_request).wait();
    // The serialize phase completes the queue/search/serialize latency
    // split: building the JSON body is the front-end's own contribution to
    // response time, invisible to the in-process service metrics.
    let serialize_start = std::time::Instant::now();
    let http = HttpResponse::json(200, &wire::response_to_json(&response, &repo));
    let serialize_time = serialize_start.elapsed();
    service
        .metrics()
        .request_serialize
        .record_duration(serialize_time);
    // Appended after the worker sealed the tree: if the tail sampler
    // retained this trace, it grows a `serialize` span (and its total
    // duration extends to cover it).
    if let Some(id) = response.trace_id {
        service.record_trace_span(id, "serialize", serialize_start, serialize_time);
    }
    http
}

/// `GET /traces` — the retained trace ring. Without a query string:
/// sampler stats plus one summary per retained trace (newest first). With
/// `?id=0x…`: the full span tree, or `404` if the sampler dropped (or
/// never saw) that id. `409` when the service runs without tracing.
fn traces(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    if !service.tracing_enabled() {
        return HttpResponse::json(
            409,
            &Json::obj([("error", Json::str("tracing is disabled on this service"))]),
        );
    }
    let query = request.path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let id_param = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("id="))
        .map(str::trim);
    if let Some(raw) = id_param {
        let parsed = u64::from_str_radix(raw.trim_start_matches("0x"), 16).ok();
        return match parsed.and_then(|id| service.trace(id)) {
            Some(trace) => HttpResponse::json(200, &trace_to_json(&trace)),
            None => HttpResponse::json(
                404,
                &Json::obj([("error", Json::str(format!("no retained trace {raw}")))]),
            ),
        };
    }
    let stats = service.trace_stats().unwrap_or_default();
    let summaries = service
        .traces()
        .iter()
        .map(trace_summary_json)
        .collect::<Vec<_>>();
    HttpResponse::json(
        200,
        &Json::obj([
            ("enabled", Json::Bool(true)),
            (
                "stats",
                Json::obj([
                    ("completed", Json::num(stats.completed as f64)),
                    ("retained", Json::num(stats.retained as f64)),
                    ("sampled", Json::num(stats.sampled as f64)),
                    ("stored", Json::num(stats.stored as f64)),
                    ("capacity", Json::num(stats.capacity as f64)),
                ]),
            ),
            ("traces", Json::Arr(summaries)),
        ]),
    )
}

fn ingest(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let json = match parse_body(request) {
        Ok(json) => json,
        Err(resp) => return resp,
    };
    let ops = match wire::parse_ingest_request(&json) {
        Ok(ops) => ops,
        Err(e) => return bad_request(&e),
    };
    match service.ingest(&ops) {
        Ok(outcome) => HttpResponse::json(200, &wire::ingest_outcome_to_json(outcome)),
        Err(e) => live_error(&e),
    }
}

fn snapshot(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let json = match parse_body(request) {
        Ok(json) => json,
        Err(resp) => return resp,
    };
    let path = match wire::parse_path_request(&json) {
        Ok(path) => path,
        Err(e) => return bad_request(&e),
    };
    match service.snapshot_to(&path) {
        Ok(meta) => HttpResponse::json(200, &wire::snapshot_meta_to_json(&path, &meta)),
        Err(e) => live_error(&e),
    }
}

fn reload(request: &HttpRequest, service: &SearchService) -> HttpResponse {
    let json = match parse_body(request) {
        Ok(json) => json,
        Err(resp) => return resp,
    };
    let path = match wire::parse_path_request(&json) {
        Ok(path) => path,
        Err(e) => return bad_request(&e),
    };
    match service.reload(&path) {
        Ok(info) => HttpResponse::json(200, &wire::reload_to_json(&info, service.engine_epoch())),
        Err(e) => live_error(&e),
    }
}

/// Reads the request body as a JSON value, or the 400 to answer with.
fn parse_body(request: &HttpRequest) -> Result<Json, HttpResponse> {
    let text = std::str::from_utf8(&request.body).map_err(|_| bad_request("body is not UTF-8"))?;
    Json::parse(text).map_err(|e| bad_request(&e.to_string()))
}

/// Maps a [`LiveServiceError`] to its HTTP status: immutable services
/// `409` (the route exists but this deployment cannot serve it), rejected
/// batches `400` (the client's ops were invalid; nothing was mutated),
/// snapshot I/O or corruption `500`.
fn live_error(e: &koios_service::LiveServiceError) -> HttpResponse {
    use koios_service::LiveServiceError;
    let status = match e {
        LiveServiceError::Immutable => 409,
        LiveServiceError::Rejected(_) => 400,
        LiveServiceError::Store(_) => 500,
    };
    HttpResponse::json(status, &Json::obj([("error", Json::str(e.to_string()))]))
}

fn bad_request(message: &str) -> HttpResponse {
    HttpResponse::json(400, &Json::obj([("error", Json::str(message))]))
}
