//! The JSON wire contract: request/response mapping between HTTP payloads
//! and the service types.
//!
//! Once queries cross a network boundary, the request/response model has to
//! be a serialized, versionable contract rather than rust structs. This
//! module is that contract, in one place:
//!
//! * **`POST /search` request** — `{"elements": ["LA", "SC"]}` (strings,
//!   interned against the server's repository; unknown strings are dropped,
//!   exactly like [`Repository::intern_query`]) and/or `{"tokens": [1, 2]}`
//!   (raw token ids, validated against the vocabulary). Optional knobs
//!   mirror [`SearchRequest`]: `"k"`, `"alpha"`, `"time_budget_ms"`,
//!   `"bypass_cache"`, `"explain"`.
//! * **`POST /search` response** — hits with set id, set name and certified
//!   score bounds, the cache outcome, rejection/timeout flags and timings.
//!   An `"explain": true` request additionally carries `"funnel"`: the full
//!   [`FunnelCounts`](koios_core::FunnelCounts) report (absent when the
//!   answer came from the result cache — no engine work ran to count).
//! * **`GET /stats` response** — a [`ServiceStats`] snapshot.
//!
//! Malformed payloads return `Err(String)` which the server maps to a 400;
//! *semantically* invalid parameter overrides (k = 0, α out of range) are
//! deliberately not wire errors — they travel to the service, are refused
//! by its admission logic, and come back as `"rejected": true` with
//! `"cache": "rejected"`, keeping one source of truth for validation.

use koios_common::{Json, SetId, TokenId};
use koios_embed::ops::CorpusOp;
use koios_embed::repository::Repository;
use koios_service::{
    CacheOutcome, IngestOutcome, SearchRequest, ServiceResponse, ServiceStats, SnapshotInfo,
};
use koios_store::snapshot::SnapshotMeta;
use std::time::Duration;

/// Decodes a `POST /search` body into a [`SearchRequest`].
pub fn parse_search_request(body: &Json, repo: &Repository) -> Result<SearchRequest, String> {
    if !matches!(body, Json::Obj(_)) {
        return Err("request body must be a JSON object".into());
    }
    let elements = body.get("elements");
    let token_ids = body.get("tokens");
    if elements.is_none() && token_ids.is_none() {
        return Err("provide \"elements\" (strings) and/or \"tokens\" (ids)".into());
    }

    let mut tokens: Vec<TokenId> = Vec::new();
    if let Some(v) = elements {
        let items = v
            .as_array()
            .ok_or_else(|| "\"elements\" must be an array of strings".to_string())?;
        let strs = items
            .iter()
            .map(|e| {
                e.as_str()
                    .ok_or_else(|| "\"elements\" must contain only strings".to_string())
            })
            .collect::<Result<Vec<&str>, String>>()?;
        tokens.extend(repo.intern_query(strs));
    }
    if let Some(v) = token_ids {
        let items = v
            .as_array()
            .ok_or_else(|| "\"tokens\" must be an array of token ids".to_string())?;
        for item in items {
            let id = item
                .as_u64()
                .ok_or_else(|| "\"tokens\" must contain non-negative integers".to_string())?;
            if id >= repo.vocab_size() as u64 {
                return Err(format!(
                    "token id {id} out of range (vocabulary has {} tokens)",
                    repo.vocab_size()
                ));
            }
            tokens.push(TokenId(id as u32));
        }
    }

    let mut req = SearchRequest::new(tokens);
    if let Some(v) = body.get("k") {
        let k = v
            .as_u64()
            .ok_or_else(|| "\"k\" must be a non-negative integer".to_string())?;
        req = req.with_k(k as usize);
    }
    if let Some(v) = body.get("alpha") {
        let alpha = v
            .as_f64()
            .ok_or_else(|| "\"alpha\" must be a number".to_string())?;
        req = req.with_alpha(alpha);
    }
    if let Some(v) = body.get("time_budget_ms") {
        let ms = v
            .as_u64()
            .ok_or_else(|| "\"time_budget_ms\" must be a non-negative integer".to_string())?;
        req = req.with_time_budget(Duration::from_millis(ms));
    }
    if let Some(v) = body.get("bypass_cache") {
        let b = v
            .as_bool()
            .ok_or_else(|| "\"bypass_cache\" must be a boolean".to_string())?;
        if b {
            req = req.bypassing_cache();
        }
    }
    if let Some(v) = body.get("explain") {
        let b = v
            .as_bool()
            .ok_or_else(|| "\"explain\" must be a boolean".to_string())?;
        req = req.with_explain(b);
    }
    Ok(req)
}

/// Decodes a `POST /ingest` body into a batch of [`CorpusOp`]s.
///
/// Shape: `{"ops": [...]}` where each op is either
/// `{"op": "insert", "name": "...", "tokens": ["...", ...]}` — optionally
/// with `"vectors": {"token": [f32, ...], ...}` supplying embedding rows
/// for tokens new to the corpus — or `{"op": "remove", "set": id}`.
pub fn parse_ingest_request(body: &Json) -> Result<Vec<CorpusOp>, String> {
    if !matches!(body, Json::Obj(_)) {
        return Err("request body must be a JSON object".into());
    }
    let ops = body
        .get("ops")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "provide \"ops\": an array of mutation objects".to_string())?;
    ops.iter()
        .enumerate()
        .map(|(i, op)| parse_op(op).map_err(|e| format!("ops[{i}]: {e}")))
        .collect()
}

fn parse_op(op: &Json) -> Result<CorpusOp, String> {
    let kind = op
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "\"op\" must be \"insert\" or \"remove\"".to_string())?;
    match kind {
        "insert" => {
            let name = op
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "\"name\" must be a string".to_string())?;
            let tokens = op
                .get("tokens")
                .and_then(|v| v.as_array())
                .ok_or_else(|| "\"tokens\" must be an array of strings".to_string())?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"tokens\" must contain only strings".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?;
            let mut vectors = Vec::new();
            if let Some(v) = op.get("vectors") {
                let Json::Obj(entries) = v else {
                    return Err("\"vectors\" must map token strings to number arrays".into());
                };
                for (token, row) in entries {
                    let row = row
                        .as_array()
                        .ok_or_else(|| format!("vector for {token:?} must be an array"))?
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .map(|f| f as f32)
                                .ok_or_else(|| format!("vector for {token:?} must be numeric"))
                        })
                        .collect::<Result<Vec<f32>, String>>()?;
                    vectors.push((token.clone(), row));
                }
            }
            Ok(CorpusOp::Insert {
                name: name.to_string(),
                tokens,
                vectors,
            })
        }
        "remove" => {
            let set = op
                .get("set")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| "\"set\" must be a non-negative set id".to_string())?;
            Ok(CorpusOp::remove(SetId(set as u32)))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Encodes an applied ingest batch as the `POST /ingest` reply.
pub fn ingest_outcome_to_json(out: IngestOutcome) -> Json {
    Json::obj([
        ("inserted", Json::num(out.inserted as f64)),
        ("removed", Json::num(out.removed as f64)),
        ("epoch", Json::num(out.epoch as f64)),
    ])
}

/// Decodes a `{"path": "..."}` body (`POST /snapshot`, `POST /reload`).
pub fn parse_path_request(body: &Json) -> Result<String, String> {
    body.get("path")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| "provide \"path\": the snapshot file to use".to_string())
}

/// Encodes the on-disk state written by `POST /snapshot`.
pub fn snapshot_meta_to_json(path: &str, meta: &SnapshotMeta) -> Json {
    Json::obj([
        ("path", Json::str(path)),
        ("format_version", Json::num(meta.format_version as f64)),
        ("bytes", Json::num(meta.total_bytes as f64)),
        ("num_sets", Json::num(meta.num_sets as f64)),
        ("deltas", Json::num(meta.deltas.len() as f64)),
        ("latest_epoch", Json::num(meta.latest_epoch() as f64)),
    ])
}

fn snapshot_info_to_json(sn: &SnapshotInfo) -> Json {
    Json::obj([
        ("path", Json::str(&sn.path)),
        ("format_version", Json::num(sn.format_version as f64)),
        ("bytes", Json::num(sn.bytes as f64)),
        ("partitions", Json::num(sn.partitions as f64)),
        ("num_sets", Json::num(sn.num_sets as f64)),
        ("vocab_size", Json::num(sn.vocab_size as f64)),
        ("deltas", Json::num(sn.deltas as f64)),
        ("latest_epoch", Json::num(sn.latest_epoch as f64)),
        ("load_ms", millis(sn.load_time)),
    ])
}

/// Encodes the provenance of a completed `POST /reload` hot swap.
pub fn reload_to_json(info: &SnapshotInfo, epoch: u64) -> Json {
    Json::obj([
        ("reloaded", Json::Bool(true)),
        ("epoch", Json::num(epoch as f64)),
        ("snapshot", snapshot_info_to_json(info)),
    ])
}

fn cache_outcome_str(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Bypassed => "bypassed",
        CacheOutcome::Rejected => "rejected",
    }
}

fn millis(d: Duration) -> Json {
    Json::num(d.as_secs_f64() * 1e3)
}

/// Encodes a [`ServiceResponse`] as the `POST /search` reply.
pub fn response_to_json(resp: &ServiceResponse, repo: &Repository) -> Json {
    let hits = resp
        .result
        .hits
        .iter()
        .map(|h| {
            Json::obj([
                ("set", Json::num(h.set.0 as f64)),
                ("name", Json::str(repo.set_name(h.set))),
                ("lb", Json::num(h.score.lb())),
                ("ub", Json::num(h.score.ub())),
                ("exact", Json::Bool(h.score.exact().is_some())),
            ])
        })
        .collect::<Vec<_>>();
    let s = &resp.result.stats;
    // The trace id uses the same hex form as cache-key fingerprints, so a
    // client can paste it straight into `GET /traces?id=…`.
    let trace_id = match resp.trace_id {
        Some(id) => Json::str(koios_common::fingerprint::hex(id)),
        None => Json::Null,
    };
    let mut fields = vec![
        ("hits", Json::Arr(hits)),
        ("cache", Json::str(cache_outcome_str(resp.cache))),
        ("rejected", Json::Bool(resp.rejected)),
        ("timed_out", Json::Bool(s.timed_out)),
        ("trace_id", trace_id),
        ("queue_ms", millis(resp.queue_time)),
        ("response_ms", millis(s.response_time())),
        (
            "stats",
            Json::obj([
                ("candidates", Json::num(s.candidates as f64)),
                ("em_full", Json::num(s.em_full as f64)),
                ("no_em", Json::num(s.no_em as f64)),
                ("knn_cache_hits", Json::num(s.knn_cache.hits as f64)),
                ("knn_cache_misses", Json::num(s.knn_cache.misses as f64)),
            ]),
        ),
    ];
    // Present exactly when the search ran with funnel accounting: explain
    // requests answered from the result cache carry no funnel.
    if let Some(f) = &s.funnel {
        fields.push(("funnel", f.to_json()));
    }
    Json::obj(fields)
}

/// Encodes a [`ServiceStats`] snapshot as the `GET /stats` reply.
pub fn stats_to_json(st: &ServiceStats) -> Json {
    let token_cache = match &st.token_cache {
        None => Json::Null,
        Some(tc) => Json::obj([
            ("entries", Json::num(tc.entries as f64)),
            ("bytes", Json::num(tc.bytes as f64)),
            ("generation", Json::num(tc.generation as f64)),
            ("hits", Json::num(tc.counters.hits as f64)),
            ("misses", Json::num(tc.counters.misses as f64)),
            ("expirations", Json::num(tc.counters.expirations as f64)),
        ]),
    };
    let snapshot = match &st.snapshot {
        None => Json::Null,
        Some(sn) => snapshot_info_to_json(sn),
    };
    // Wall-clock start time as whole seconds since the Unix epoch (0 for
    // a default snapshot whose start time is the epoch itself).
    let start_unix = st
        .start_time
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Json::obj([
        ("queries", Json::num(st.queries as f64)),
        ("batches", Json::num(st.batches as f64)),
        ("uptime_secs", Json::num(st.uptime_secs)),
        ("start_time_unix_secs", Json::num(start_unix as f64)),
        ("cache_hits", Json::num(st.cache_hits as f64)),
        ("searched", Json::num(st.searched as f64)),
        ("rejected", Json::num(st.rejected as f64)),
        ("timed_out", Json::num(st.timed_out as f64)),
        ("partitions", Json::num(st.partitions as f64)),
        ("engine_epoch", Json::num(st.engine_epoch as f64)),
        ("sets_added", Json::num(st.sets_added as f64)),
        ("sets_removed", Json::num(st.sets_removed as f64)),
        (
            "result_cache",
            Json::obj([
                ("hits", Json::num(st.cache.hits as f64)),
                ("misses", Json::num(st.cache.misses as f64)),
                ("evictions", Json::num(st.cache.evictions as f64)),
                ("invalidations", Json::num(st.cache.invalidations as f64)),
                ("insertions", Json::num(st.cache.insertions as f64)),
                ("expirations", Json::num(st.cache.expirations as f64)),
            ]),
        ),
        ("token_cache", token_cache),
        ("snapshot", snapshot),
        (
            "engine",
            Json::obj([
                ("candidates", Json::num(st.engine.candidates as f64)),
                ("em_full", Json::num(st.engine.em_full as f64)),
                ("no_em", Json::num(st.engine.no_em as f64)),
                ("stream_tuples", Json::num(st.engine.stream_tuples as f64)),
                ("cumulative_engine_ms", millis(st.engine.response_time())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c"]);
        b.add_set("s1", ["a", "x", "y"]);
        b.build()
    }

    #[test]
    fn parses_elements_and_knobs() {
        let repo = repo();
        let body = Json::parse(
            r#"{"elements": ["a", "b", "nope"], "k": 2, "alpha": 0.75,
                "time_budget_ms": 250, "bypass_cache": true}"#,
        )
        .unwrap();
        let req = parse_search_request(&body, &repo).unwrap();
        assert_eq!(req.tokens.len(), 2, "unknown element dropped");
        assert_eq!(req.k, Some(2));
        assert_eq!(req.alpha, Some(0.75));
        assert_eq!(req.time_budget, Some(Duration::from_millis(250)));
        assert!(req.bypass_cache);
    }

    #[test]
    fn parses_raw_token_ids_and_validates_them() {
        let repo = repo();
        let ok = Json::parse(r#"{"tokens": [0, 1]}"#).unwrap();
        let req = parse_search_request(&ok, &repo).unwrap();
        assert_eq!(req.tokens, vec![TokenId(0), TokenId(1)]);
        let bad = Json::parse(r#"{"tokens": [999]}"#).unwrap();
        assert!(parse_search_request(&bad, &repo)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn rejects_malformed_bodies() {
        let repo = repo();
        for bad in [
            r#"[1, 2]"#,
            r#"{}"#,
            r#"{"elements": "a"}"#,
            r#"{"elements": [1]}"#,
            r#"{"tokens": ["a"]}"#,
            r#"{"tokens": [1.5]}"#,
            r#"{"elements": ["a"], "k": -1}"#,
            r#"{"elements": ["a"], "k": 1.5}"#,
            r#"{"elements": ["a"], "alpha": "x"}"#,
            r#"{"elements": ["a"], "time_budget_ms": -5}"#,
            r#"{"elements": ["a"], "bypass_cache": 1}"#,
        ] {
            let body = Json::parse(bad).unwrap();
            assert!(
                parse_search_request(&body, &repo).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn parses_ingest_ops() {
        let body = Json::parse(
            r#"{"ops": [
                {"op": "insert", "name": "s9", "tokens": ["a", "b"],
                 "vectors": {"b": [0.5, 0.25]}},
                {"op": "remove", "set": 3}
            ]}"#,
        )
        .unwrap();
        let ops = parse_ingest_request(&body).unwrap();
        assert_eq!(ops.len(), 2);
        match &ops[0] {
            CorpusOp::Insert {
                name,
                tokens,
                vectors,
            } => {
                assert_eq!(name, "s9");
                assert_eq!(tokens, &["a", "b"]);
                assert_eq!(vectors, &[("b".to_string(), vec![0.5, 0.25])]);
            }
            other => panic!("expected insert, got {other:?}"),
        }
        assert_eq!(ops[1], CorpusOp::remove(SetId(3)));
    }

    #[test]
    fn rejects_malformed_ingest_bodies() {
        for bad in [
            r#"[1]"#,
            r#"{}"#,
            r#"{"ops": 3}"#,
            r#"{"ops": [{"op": "upsert"}]}"#,
            r#"{"ops": [{"op": "insert", "tokens": ["a"]}]}"#,
            r#"{"ops": [{"op": "insert", "name": "s", "tokens": [1]}]}"#,
            r#"{"ops": [{"op": "insert", "name": "s", "tokens": ["a"], "vectors": [1]}]}"#,
            r#"{"ops": [{"op": "insert", "name": "s", "tokens": ["a"], "vectors": {"a": "x"}}]}"#,
            r#"{"ops": [{"op": "remove"}]}"#,
            r#"{"ops": [{"op": "remove", "set": -1}]}"#,
        ] {
            let body = Json::parse(bad).unwrap();
            assert!(parse_ingest_request(&body).is_err(), "accepted {bad}");
        }
        // Errors carry the offending op's index.
        let body = Json::parse(r#"{"ops": [{"op": "remove", "set": 0}, {"op": "x"}]}"#).unwrap();
        assert!(parse_ingest_request(&body).unwrap_err().contains("ops[1]"));
    }

    #[test]
    fn path_requests_roundtrip() {
        let ok = Json::parse(r#"{"path": "/tmp/x.ksnap"}"#).unwrap();
        assert_eq!(parse_path_request(&ok).unwrap(), "/tmp/x.ksnap");
        for bad in [r#"{}"#, r#"{"path": 3}"#, r#"[]"#] {
            assert!(parse_path_request(&Json::parse(bad).unwrap()).is_err());
        }
    }

    #[test]
    fn stats_json_carries_live_counters() {
        let st = ServiceStats {
            engine_epoch: 4,
            sets_added: 9,
            sets_removed: 2,
            ..Default::default()
        };
        let json = stats_to_json(&st);
        assert_eq!(json.get("engine_epoch").unwrap().as_u64(), Some(4));
        assert_eq!(json.get("sets_added").unwrap().as_u64(), Some(9));
        assert_eq!(json.get("sets_removed").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn stats_json_carries_uptime_and_start_time() {
        let st = ServiceStats {
            uptime_secs: 12.5,
            start_time: std::time::SystemTime::UNIX_EPOCH + Duration::from_secs(1_700_000_000),
            ..Default::default()
        };
        let json = stats_to_json(&st);
        assert_eq!(json.get("uptime_secs").unwrap().as_f64(), Some(12.5));
        assert_eq!(
            json.get("start_time_unix_secs").unwrap().as_u64(),
            Some(1_700_000_000)
        );
    }

    #[test]
    fn semantically_invalid_overrides_pass_through() {
        // k = 0 / α out of range are the *service's* call, not the wire's.
        let repo = repo();
        let body = Json::parse(r#"{"elements": ["a"], "k": 0, "alpha": 7.5}"#).unwrap();
        let req = parse_search_request(&body, &repo).unwrap();
        assert_eq!(req.k, Some(0));
        assert_eq!(req.alpha, Some(7.5));
    }
}
