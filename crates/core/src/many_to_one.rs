//! Many-to-1 semantic overlap — the paper's §X future-work extension.
//!
//! The one-to-one matching of Def. 1 undercounts when the *query* contains
//! spelling variants of the same entity: with
//! `Q = {United States of America, United States}` and `C = {USA}`, only
//! one query element can match `USA`. The proposed extension allows a
//! many-to-1 mapping `M: Q → C` (several query elements may map to the same
//! candidate element).
//!
//! With the candidate side unconstrained, the optimisation decomposes per
//! query element: every `q` independently picks its best partner, so
//!
//! ```text
//! SO_m21(Q, C) = Σ_{q ∈ Q} max_{c ∈ C} simα(q, c)
//! ```
//!
//! — no assignment problem, `O(|Q|·|C|)` exact evaluation, and the row-max
//! refinement bound of `UbMode::SoundRowMax` becomes *exact* for this
//! measure. A bounded variant (`capacity ≥ 2`) interpolates back towards
//! Def. 1 and is solved by column duplication.

use koios_common::{SetId, TokenId};
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;
use koios_matching::{solve_max_matching, WeightMatrix};

/// The many-to-1 semantic overlap `Σ_q max_c simα(q, c)`.
pub fn many_to_one_overlap(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: SetId,
) -> f64 {
    let elems = repo.set(set);
    let mut w = vec![0.0; query.len() * elems.len()];
    sim.fill_matrix(query, elems, alpha, &mut w);
    let mut total = 0.0;
    for row in w.chunks(elems.len().max(1)) {
        total += row.iter().copied().fold(0.0, f64::max);
    }
    total
}

/// Capacity-bounded variant: each candidate element may absorb at most
/// `capacity` query elements (capacity 1 = Def. 1; `usize::MAX` ≈
/// [`many_to_one_overlap`]). Solved exactly by duplicating candidate
/// columns `capacity` times, so keep `capacity` small.
pub fn bounded_many_to_one_overlap(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: SetId,
    capacity: usize,
) -> f64 {
    assert!(capacity >= 1, "capacity must be at least 1");
    let elems = repo.set(set);
    if capacity == 1 {
        return crate::overlap::semantic_overlap(repo, sim, alpha, query, set);
    }
    let cap = capacity.min(query.len());
    let mut base = vec![0.0; query.len() * elems.len()];
    sim.fill_matrix(query, elems, alpha, &mut base);
    let m = WeightMatrix::from_fn(query.len(), elems.len() * cap, |i, j| {
        base[i * elems.len() + j % elems.len()]
    });
    solve_max_matching(&m, None).score()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::semantic_overlap;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::QGramJaccard;

    fn setup() -> (Repository, Vec<TokenId>, SetId) {
        let mut b = RepositoryBuilder::new();
        let c = b.add_set("c", ["UnitedStates", "Canada"]);
        let mut repo = b.build();
        let q = repo.intern_query_mut(["UnitedStates", "UnitedStatesOfAmerica", "Canada"]);
        let _ = QGramJaccard::new(&repo, 3);
        (repo, q, c)
    }

    #[test]
    fn many_to_one_dominates_one_to_one() {
        let (repo, q, c) = setup();
        let sim = QGramJaccard::new(&repo, 3);
        let one = semantic_overlap(&repo, &sim, 0.4, &q, c);
        let many = many_to_one_overlap(&repo, &sim, 0.4, &q, c);
        // Both "UnitedStates" variants can now map to the same element.
        assert!(many > one + 0.1, "many {many} vs one {one}");
    }

    #[test]
    fn capacity_one_equals_def1() {
        let (repo, q, c) = setup();
        let sim = QGramJaccard::new(&repo, 3);
        let a = bounded_many_to_one_overlap(&repo, &sim, 0.4, &q, c, 1);
        let b = semantic_overlap(&repo, &sim, 0.4, &q, c);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn capacity_interpolates_monotonically() {
        let (repo, q, c) = setup();
        let sim = QGramJaccard::new(&repo, 3);
        let mut last = 0.0;
        for cap in 1..=3 {
            let v = bounded_many_to_one_overlap(&repo, &sim, 0.4, &q, c, cap);
            assert!(v + 1e-9 >= last, "capacity {cap} decreased the score");
            last = v;
        }
        // Unbounded equals the per-row maximum sum.
        let many = many_to_one_overlap(&repo, &sim, 0.4, &q, c);
        let big = bounded_many_to_one_overlap(&repo, &sim, 0.4, &q, c, q.len());
        assert!((many - big).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let (repo, _, c) = setup();
        let sim = QGramJaccard::new(&repo, 3);
        assert_eq!(many_to_one_overlap(&repo, &sim, 0.4, &[], c), 0.0);
    }
}
