//! Result auditing: certify a [`SearchResult`] against brute force.
//!
//! Filters are performance features; this module provides the runtime
//! counterpart of the exactness tests — a way for a deployment to spot-check
//! that a returned top-k is a valid solution of Def. 2 (used, e.g., after
//! enabling `UbMode::PaperGreedy`, whose bound is unsound in the worst case;
//! DESIGN §2).

use crate::overlap::semantic_overlap;
use crate::result::{ScoreBound, SearchResult};
use koios_common::{SetId, TokenId};
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;

/// The verdict of an audit.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditOutcome {
    /// The result is a valid top-k under Def. 2 and all reported scores /
    /// intervals are consistent with the true overlaps.
    Valid,
    /// A returned set scores below the true k-th best (a false positive /
    /// missed better set).
    NotTopK {
        /// The offending returned set.
        set: SetId,
        /// Its true semantic overlap.
        truth: f64,
        /// The true k-th best overlap it fails to reach.
        theta_k: f64,
    },
    /// A reported exact score or interval contradicts the true overlap.
    WrongScore {
        /// The offending returned set.
        set: SetId,
        /// Its true semantic overlap.
        truth: f64,
        /// What the result reported.
        reported: ScoreBound,
    },
    /// The result has fewer hits than candidates with non-zero overlap.
    TooFewHits {
        /// Hits returned.
        returned: usize,
        /// `min(k, #sets with SO > 0)`.
        expected: usize,
    },
}

/// Audits `result` for query `query` by brute-force scoring the whole
/// repository (expensive — `O(|L|)` Hungarian runs; meant for spot checks).
pub fn audit_result(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    k: usize,
    query: &[TokenId],
    result: &SearchResult,
) -> AuditOutcome {
    const EPS: f64 = 1e-9;
    let mut q = query.to_vec();
    q.sort_unstable();
    q.dedup();
    let mut scores: Vec<f64> = repo
        .iter_sets()
        .map(|(id, _)| semantic_overlap(repo, sim, alpha, &q, id))
        .filter(|s| *s > 0.0)
        .collect();
    scores.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    let expected = k.min(scores.len());
    if result.hits.len() != expected {
        return AuditOutcome::TooFewHits {
            returned: result.hits.len(),
            expected,
        };
    }
    if expected == 0 {
        return AuditOutcome::Valid;
    }
    let theta_k = scores[expected - 1];
    for hit in &result.hits {
        let truth = semantic_overlap(repo, sim, alpha, &q, hit.set);
        if truth < theta_k - EPS {
            return AuditOutcome::NotTopK {
                set: hit.set,
                truth,
                theta_k,
            };
        }
        let consistent = match hit.score {
            ScoreBound::Exact(s) => (s - truth).abs() < EPS,
            ScoreBound::Range { lb, ub } => lb <= truth + EPS && truth <= ub + EPS,
        };
        if !consistent {
            return AuditOutcome::WrongScore {
                set: hit.set,
                truth,
                reported: hit.score,
            };
        }
    }
    AuditOutcome::Valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KoiosConfig;
    use crate::engine::Koios;
    use crate::result::Hit;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;
    use std::sync::Arc;

    fn setup() -> (Repository, Vec<TokenId>) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c"]);
        b.add_set("s1", ["a", "b", "x"]);
        b.add_set("s2", ["a", "y", "z"]);
        let repo = b.build();
        let q = repo.intern_query(["a", "b", "c"]);
        (repo, q)
    }

    #[test]
    fn real_search_results_audit_valid() {
        let (repo, q) = setup();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
        );
        let res = engine.search(&q);
        assert_eq!(
            audit_result(&repo, &EqualitySimilarity, 0.9, 2, &q, &res),
            AuditOutcome::Valid
        );
    }

    #[test]
    fn detects_non_topk_member() {
        let (repo, q) = setup();
        let forged = SearchResult {
            hits: vec![
                Hit {
                    set: SetId(0),
                    score: ScoreBound::Exact(3.0),
                },
                Hit {
                    set: SetId(2),
                    score: ScoreBound::Exact(1.0),
                }, // true SO 1 < θ2 = 2
            ],
            stats: Default::default(),
        };
        match audit_result(&repo, &EqualitySimilarity, 0.9, 2, &q, &forged) {
            AuditOutcome::NotTopK { set, theta_k, .. } => {
                assert_eq!(set, SetId(2));
                assert!((theta_k - 2.0).abs() < 1e-9);
            }
            other => panic!("expected NotTopK, got {other:?}"),
        }
    }

    #[test]
    fn detects_wrong_score() {
        let (repo, q) = setup();
        let forged = SearchResult {
            hits: vec![
                Hit {
                    set: SetId(0),
                    score: ScoreBound::Exact(99.0),
                },
                Hit {
                    set: SetId(1),
                    score: ScoreBound::Exact(2.0),
                },
            ],
            stats: Default::default(),
        };
        assert!(matches!(
            audit_result(&repo, &EqualitySimilarity, 0.9, 2, &q, &forged),
            AuditOutcome::WrongScore { set: SetId(0), .. }
        ));
    }

    #[test]
    fn detects_missing_hits() {
        let (repo, q) = setup();
        let forged = SearchResult {
            hits: vec![Hit {
                set: SetId(0),
                score: ScoreBound::Exact(3.0),
            }],
            stats: Default::default(),
        };
        assert!(matches!(
            audit_result(&repo, &EqualitySimilarity, 0.9, 2, &q, &forged),
            AuditOutcome::TooFewHits {
                returned: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn interval_scores_accepted_when_containing_truth() {
        let (repo, q) = setup();
        let res = SearchResult {
            hits: vec![
                Hit {
                    set: SetId(0),
                    score: ScoreBound::Range { lb: 2.5, ub: 3.5 },
                },
                Hit {
                    set: SetId(1),
                    score: ScoreBound::Exact(2.0),
                },
            ],
            stats: Default::default(),
        };
        assert_eq!(
            audit_result(&repo, &EqualitySimilarity, 0.9, 2, &q, &res),
            AuditOutcome::Valid
        );
    }
}
