//! Search results.

use crate::stats::SearchStats;
use koios_common::SetId;

/// The score knowledge about a returned set.
///
/// Sets certified by the No-EM filter (Lemma 7) are *guaranteed top-k
/// members* whose exact semantic overlap was never computed — they carry
/// their final refinement bounds instead. Disable
/// [`crate::KoiosConfig::no_em_filter`] to force exact scores everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreBound {
    /// Exact semantic overlap (verified by graph matching).
    Exact(f64),
    /// Certified interval `lb ≤ SO ≤ ub`.
    Range {
        /// Certified lower bound.
        lb: f64,
        /// Certified upper bound.
        ub: f64,
    },
}

impl ScoreBound {
    /// The exact score if known.
    pub fn exact(&self) -> Option<f64> {
        match *self {
            ScoreBound::Exact(s) => Some(s),
            ScoreBound::Range { .. } => None,
        }
    }

    /// Certified lower bound on the semantic overlap.
    pub fn lb(&self) -> f64 {
        match *self {
            ScoreBound::Exact(s) => s,
            ScoreBound::Range { lb, .. } => lb,
        }
    }

    /// Certified upper bound on the semantic overlap.
    pub fn ub(&self) -> f64 {
        match *self {
            ScoreBound::Exact(s) => s,
            ScoreBound::Range { ub, .. } => ub,
        }
    }
}

/// One result set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The set.
    pub set: SetId,
    /// What is known about its semantic overlap with the query.
    pub score: ScoreBound,
}

/// A completed top-k search: hits in descending score order plus the
/// instrumentation of the run.
#[derive(Debug, Clone, Default)]
pub struct SearchResult {
    /// Up to `k` sets, descending by (upper-bound) score, ties by set id.
    pub hits: Vec<Hit>,
    /// Counters, timings and memory of the run.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The k-th (smallest) certified lower bound among the hits — the
    /// search's final `θk` estimate.
    pub fn theta_k(&self) -> f64 {
        self.hits
            .iter()
            .map(|h| h.score.lb())
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }

    /// The result set ids.
    pub fn set_ids(&self) -> Vec<SetId> {
        self.hits.iter().map(|h| h.set).collect()
    }

    /// Sorts hits descending by upper bound, ties by ascending set id
    /// (the deterministic report order).
    pub fn sort_hits(&mut self) {
        self.hits.sort_by(|a, b| {
            b.score
                .ub()
                .partial_cmp(&a.score.ub())
                .expect("scores are never NaN")
                .then_with(|| a.set.cmp(&b.set))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_bound_accessors() {
        let e = ScoreBound::Exact(2.5);
        assert_eq!(e.exact(), Some(2.5));
        assert_eq!(e.lb(), 2.5);
        assert_eq!(e.ub(), 2.5);
        let r = ScoreBound::Range { lb: 1.0, ub: 2.0 };
        assert_eq!(r.exact(), None);
        assert_eq!(r.lb(), 1.0);
        assert_eq!(r.ub(), 2.0);
    }

    #[test]
    fn sort_hits_orders_by_ub_then_id() {
        let mut res = SearchResult {
            hits: vec![
                Hit {
                    set: SetId(3),
                    score: ScoreBound::Exact(1.0),
                },
                Hit {
                    set: SetId(1),
                    score: ScoreBound::Range { lb: 0.5, ub: 2.0 },
                },
                Hit {
                    set: SetId(2),
                    score: ScoreBound::Exact(2.0),
                },
            ],
            stats: SearchStats::default(),
        };
        res.sort_hits();
        assert_eq!(res.set_ids(), vec![SetId(1), SetId(2), SetId(3)]);
    }

    #[test]
    fn theta_k_is_min_lb() {
        let res = SearchResult {
            hits: vec![
                Hit {
                    set: SetId(0),
                    score: ScoreBound::Exact(3.0),
                },
                Hit {
                    set: SetId(1),
                    score: ScoreBound::Range { lb: 1.5, ub: 4.0 },
                },
            ],
            stats: SearchStats::default(),
        };
        assert_eq!(res.theta_k(), 1.5);
    }
}
