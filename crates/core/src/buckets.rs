//! The bucketised iUB filter (paper §V).
//!
//! Updating `iUB(C) = S_i + m_i·s` for every candidate on every stream
//! tuple would be quadratic. Koios instead groups candidates into buckets by
//! their remaining capacity `m`; inside a bucket, candidates are ordered by
//! ascending `S_i`. On a prune sweep with current stream similarity `s` and
//! threshold `θlb`, bucket `m` evicts candidates from its ascending front
//! while `S_i < θlb − m·s`; the first survivor proves the rest of the bucket
//! safe, so a sweep touching no prunable candidate costs one comparison per
//! bucket. Candidates move to bucket `m−1` exactly when a stream tuple hits
//! them, so maintenance is proportional to actual stream traffic.

use koios_common::{HeapSize, SetId, Sim};
use std::collections::{BTreeMap, BTreeSet};

/// Buckets of `(S_i, set)` keyed by remaining capacity `m`.
#[derive(Debug, Default)]
pub struct BucketIndex {
    buckets: BTreeMap<u32, BTreeSet<(Sim, SetId)>>,
    len: usize,
}

impl BucketIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no candidate is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a candidate with remaining capacity `m` and matched score
    /// base `base`.
    pub fn insert(&mut self, m: u32, base: f64, set: SetId) {
        let added = self
            .buckets
            .entry(m)
            .or_default()
            .insert((Sim::new(base), set));
        debug_assert!(added, "candidate {set:?} already in bucket {m}");
        self.len += 1;
    }

    /// Removes a candidate (exact key required); returns whether it was
    /// present.
    pub fn remove(&mut self, m: u32, base: f64, set: SetId) -> bool {
        let Some(bucket) = self.buckets.get_mut(&m) else {
            return false;
        };
        let removed = bucket.remove(&(Sim::new(base), set));
        if removed {
            self.len -= 1;
            if bucket.is_empty() {
                self.buckets.remove(&m);
            }
        }
        removed
    }

    /// Moves a candidate to a new `(m, base)` key (a stream tuple matched
    /// one of its elements).
    pub fn reinsert(&mut self, old_m: u32, old_base: f64, new_m: u32, new_base: f64, set: SetId) {
        let was_present = self.remove(old_m, old_base, set);
        debug_assert!(was_present, "reinsert of untracked candidate {set:?}");
        self.insert(new_m, new_base, set);
    }

    /// Prunes every candidate whose upper bound `base + m·s` is strictly
    /// below `theta`, invoking `prune` for each; returns the number pruned.
    ///
    /// Strict comparison keeps ties alive, which guarantees at least the
    /// `θlb`-defining candidates survive (their `UB ≥ LB ≥ θlb`).
    pub fn sweep(&mut self, s: f64, theta: f64, mut prune: impl FnMut(SetId)) -> usize {
        let mut pruned = 0;
        let mut emptied: Vec<u32> = Vec::new();
        for (&m, bucket) in self.buckets.iter_mut() {
            let threshold = theta - m as f64 * s;
            while let Some(&(base, set)) = bucket.first() {
                if base.get() < threshold {
                    bucket.pop_first();
                    self.len -= 1;
                    pruned += 1;
                    prune(set);
                } else {
                    break;
                }
            }
            if bucket.is_empty() {
                emptied.push(m);
            }
        }
        for m in emptied {
            self.buckets.remove(&m);
        }
        pruned
    }

    /// Drains all remaining candidates (end of refinement).
    pub fn drain(&mut self) -> Vec<(u32, Sim, SetId)> {
        let mut out = Vec::with_capacity(self.len);
        for (&m, bucket) in self.buckets.iter() {
            for &(base, set) in bucket.iter() {
                out.push((m, base, set));
            }
        }
        self.buckets.clear();
        self.len = 0;
        out
    }
}

impl HeapSize for BucketIndex {
    fn heap_size(&self) -> usize {
        // B-tree map of B-tree sets; approximate entries at 1.5× payload.
        let entry = std::mem::size_of::<(Sim, SetId)>();
        self.len * entry * 3 / 2 + self.buckets.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> SetId {
        SetId(v)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut b = BucketIndex::new();
        b.insert(3, 1.0, sid(1));
        b.insert(3, 2.0, sid(2));
        b.insert(5, 0.5, sid(3));
        assert_eq!(b.len(), 3);
        assert!(b.remove(3, 1.0, sid(1)));
        assert!(!b.remove(3, 1.0, sid(1)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn sweep_prunes_only_below_threshold() {
        let mut b = BucketIndex::new();
        // Bucket m=2: UB = base + 2s.
        b.insert(2, 0.5, sid(1)); // UB at s=0.5 → 1.5
        b.insert(2, 2.0, sid(2)); // UB → 3.0
        b.insert(0, 1.9, sid(3)); // UB → 1.9 regardless of s
        let mut pruned = Vec::new();
        let n = b.sweep(0.5, 2.0, |s| pruned.push(s));
        assert_eq!(n, 2);
        assert_eq!(pruned, vec![sid(3), sid(1)]); // bucket 0 first (BTree order)
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn sweep_is_strict_on_ties() {
        let mut b = BucketIndex::new();
        b.insert(1, 1.0, sid(1)); // UB = 1.0 + 1·1.0 = 2.0 == theta → kept
        let n = b.sweep(1.0, 2.0, |_| panic!("tie must survive"));
        assert_eq!(n, 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn reinsert_moves_between_buckets() {
        let mut b = BucketIndex::new();
        b.insert(4, 0.0, sid(7));
        b.reinsert(4, 0.0, 3, 0.9, sid(7));
        assert_eq!(b.len(), 1);
        // Now prunable only under the new key.
        let mut hits = 0;
        b.sweep(0.1, 1.3, |_| hits += 1); // UB = 0.9 + 0.3 = 1.2 < 1.3
        assert_eq!(hits, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_returns_everything_sorted_by_bucket() {
        let mut b = BucketIndex::new();
        b.insert(2, 1.0, sid(1));
        b.insert(1, 3.0, sid(2));
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
        assert_eq!(drained[0].2, sid(2)); // bucket 1 before bucket 2
    }

    #[test]
    fn sweep_early_exits_per_bucket() {
        let mut b = BucketIndex::new();
        for i in 0..100 {
            b.insert(1, 1.0 + i as f64, sid(i));
        }
        // theta - m*s = 1.5: only base 1.0 is below.
        let n = b.sweep(0.0, 1.5, |_| {});
        assert_eq!(n, 1);
        assert_eq!(b.len(), 99);
    }
}
