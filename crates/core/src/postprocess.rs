//! The post-processing phase (paper §VI, Algorithm 2).
//!
//! Survivors are verified in descending upper-bound order through three
//! structures: `Lub` (top-k sets by current upper bound, whose bottom is
//! `θub`), `Qub` (a priority queue holding the rest), and the `Llb` list
//! carried over from refinement (whose bottom keeps raising the shared
//! `θlb`). Three filters cut verification work:
//!
//! * **No-EM** (Lemma 7): `LB(C) ≥ θub` certifies top-k membership without
//!   computing the matching — the hit is reported with its bound interval.
//! * **EM-Early-Terminated** (Lemma 8): the Hungarian run aborts once its
//!   label-sum upper bound sinks below `θlb`.
//! * **Lazy UB pruning**: sets popped from `Qub` with `UB < θlb` are
//!   discarded outright.
//!
//! Completed matchings re-rank the set by its exact score (it re-enters
//! `Lub` through `Qub` if still competitive — Example 4's `D6` dance).
//! With `parallel_em > 1`, the top unchecked sets verify concurrently and
//! share the global `θlb` (the paper's background thread pool).

use crate::config::KoiosConfig;
use crate::overlap::{semantic_overlap_bounded_with_effort, MatchingEffort};
use crate::refine::Survivor;
use crate::result::{Hit, ScoreBound};
use crate::stats::SearchStats;
use crate::theta::{slack, SharedTheta};
use koios_common::topk::TopKList;
use koios_common::{profile, HeapSize, SetId, Sim, TokenId};
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;
use koios_matching::MatchOutcome;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

struct Post {
    lb: f64,
    ub: f64,
    exact: Option<f64>,
    checked: bool,
    alive: bool,
}

/// The Lemma-8 threshold for an exact-matching run: only meaningful when
/// positive (a zero θlb can never terminate a non-negative label sum).
fn em_threshold(cfg: &KoiosConfig, theta: &SharedTheta) -> Option<f64> {
    if !cfg.em_early_termination {
        return None;
    }
    let t = theta.get();
    (t > 0.0).then(|| slack(t))
}

/// Runs post-processing and returns the final hits (descending upper bound).
#[allow(clippy::too_many_arguments)]
pub fn postprocess(
    repo: &Repository,
    sim: &Arc<dyn ElementSimilarity>,
    query: &[TokenId],
    cfg: &KoiosConfig,
    theta: &SharedTheta,
    llb: &mut TopKList,
    survivors: Vec<Survivor>,
    stats: &mut SearchStats,
    deadline: Option<Instant>,
) -> Vec<Hit> {
    if cfg.verify_all {
        return verify_all(repo, sim, query, cfg, llb, survivors, stats, deadline);
    }

    let mut states: HashMap<SetId, Post> = HashMap::with_capacity(survivors.len());
    let mut lub = TopKList::new(cfg.k);
    let mut qub: BinaryHeap<(Sim, SetId)> = BinaryHeap::new();

    // Survivors arrive sorted by descending ub: the first k seed Lub.
    for (i, sv) in survivors.iter().enumerate() {
        states.insert(
            sv.set,
            Post {
                lb: sv.lb,
                ub: sv.ub,
                exact: None,
                checked: false,
                alive: true,
            },
        );
        if i < cfg.k {
            lub.offer(sv.set, Sim::new(sv.ub));
        } else {
            qub.push((Sim::new(sv.ub), sv.set));
        }
    }

    stats.memory.add(
        "postprocess states",
        states.capacity() * (std::mem::size_of::<(SetId, Post)>() + 1),
    );
    stats.memory.add(
        "ub priority queue",
        qub.capacity() * std::mem::size_of::<(Sim, SetId)>(),
    );
    stats.memory.add("top-k ub list", lub.heap_size());

    loop {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                stats.timed_out = true;
                break;
            }
        }
        // Refill Lub to k live sets, lazily pruning sub-θlb entries.
        while lub.len() < cfg.k {
            let Some(&(ub, set)) = qub.peek() else { break };
            qub.pop();
            let Some(p) = states.get_mut(&set) else {
                continue;
            };
            // Stale queue entries: superseded key or already placed/pruned.
            if !p.alive || lub.contains(set) || Sim::new(p.ub) != ub {
                continue;
            }
            if p.ub < slack(theta.get()) {
                p.alive = false;
                stats.postprocess_ub_pruned += 1;
                if let Some(f) = stats.funnel_mut() {
                    f.postprocess_ub_pruned += 1;
                }
                continue;
            }
            lub.offer(set, ub);
        }

        let unchecked: Vec<SetId> = lub
            .iter_desc()
            .filter(|&(set, _)| !states[&set].checked)
            .map(|(set, _)| set)
            .collect();
        if unchecked.is_empty() {
            break;
        }

        // No-EM filter (Lemma 7): θub is the k-th largest current UB among
        // live sets — exactly Lub's bottom once full.
        if cfg.no_em_filter && lub.is_full() {
            let theta_ub = lub.bottom().expect("lub is full");
            let mut certified = 0;
            for &set in &unchecked {
                let p = states.get_mut(&set).expect("listed set has state");
                if Sim::new(p.lb) >= theta_ub {
                    p.checked = true;
                    certified += 1;
                }
            }
            if certified > 0 {
                stats.no_em += certified;
                if let Some(f) = stats.funnel_mut() {
                    f.no_em_certified += certified;
                }
                continue;
            }
        }

        // Verify the highest-UB unchecked sets (a batch when parallel).
        let batch: Vec<SetId> = unchecked.into_iter().take(cfg.parallel_em.max(1)).collect();
        let verify_start = Instant::now();
        let _stage = profile::enter(profile::Stage::Verify);
        let outcomes: Vec<(SetId, MatchOutcome, MatchingEffort)> = if batch.len() == 1 {
            let set = batch[0];
            let th = em_threshold(cfg, theta);
            let (outcome, effort) =
                semantic_overlap_bounded_with_effort(repo, sim.as_ref(), cfg.alpha, query, set, th);
            vec![(set, outcome, effort)]
        } else {
            std::thread::scope(|sc| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|&set| {
                        let sim = Arc::clone(sim);
                        sc.spawn(move || {
                            // Read θlb at spawn time: completions of sibling
                            // verifications keep raising it between batches.
                            let th = em_threshold(cfg, theta);
                            let (outcome, effort) = semantic_overlap_bounded_with_effort(
                                repo,
                                sim.as_ref(),
                                cfg.alpha,
                                query,
                                set,
                                th,
                            );
                            (set, outcome, effort)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("verification thread panicked"))
                    .collect()
            })
        };
        stats.verify_time += verify_start.elapsed();

        for (set, outcome, effort) in outcomes {
            if let Some(f) = stats.funnel_mut() {
                f.matrix_cells += effort.matrix_cells;
                f.support_cells += effort.support_cells;
            }
            match outcome {
                MatchOutcome::EarlyTerminated { upper_bound } => {
                    stats.em_early_terminated += 1;
                    if let Some(f) = stats.funnel_mut() {
                        f.em_early_terminated += 1;
                    }
                    debug_assert!(upper_bound < theta.get() + 1e-9);
                    let p = states.get_mut(&set).expect("verified set has state");
                    p.alive = false;
                    p.checked = true;
                    lub.remove(set);
                }
                MatchOutcome::Exact(m) => {
                    stats.em_full += 1;
                    if let Some(f) = stats.funnel_mut() {
                        f.em_verified += 1;
                    }
                    let so = m.score;
                    let p = states.get_mut(&set).expect("verified set has state");
                    p.exact = Some(so);
                    p.checked = true;
                    p.lb = so;
                    p.ub = so;
                    if llb.offer(set, Sim::new(so)) {
                        if let Some(f) = stats.funnel_mut() {
                            f.theta_raises += 1;
                        }
                        if let Some(b) = llb.bottom() {
                            theta.raise(b.get());
                        }
                    }
                    // Re-rank by the exact score: the set re-enters Lub via
                    // Qub if still among the top-k upper bounds.
                    lub.remove(set);
                    qub.push((Sim::new(so), set));
                }
            }
        }
    }

    lub.iter_desc()
        .map(|(set, _)| {
            let p = &states[&set];
            let score = match p.exact {
                Some(s) => ScoreBound::Exact(s),
                None => ScoreBound::Range { lb: p.lb, ub: p.ub },
            };
            Hit { set, score }
        })
        .collect()
}

/// The exhaustive Baseline/Baseline+ verification of §VIII-A4: run the full
/// matching for *every* survivor (in `parallel_em`-sized waves, mirroring
/// the paper's thread pool) and keep the top k.
#[allow(clippy::too_many_arguments)]
fn verify_all(
    repo: &Repository,
    sim: &Arc<dyn ElementSimilarity>,
    query: &[TokenId],
    cfg: &KoiosConfig,
    llb: &mut TopKList,
    survivors: Vec<Survivor>,
    stats: &mut SearchStats,
    deadline: Option<Instant>,
) -> Vec<Hit> {
    let mut scored: Vec<(f64, SetId)> = Vec::with_capacity(survivors.len());
    let threads = cfg.parallel_em.max(1);
    for wave in survivors.chunks(threads) {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                stats.timed_out = true;
                break;
            }
        }
        let verify_start = Instant::now();
        let _stage = profile::enter(profile::Stage::Verify);
        let wave_scores: Vec<(SetId, f64, MatchingEffort)> = if wave.len() == 1 {
            let set = wave[0].set;
            let (outcome, effort) = semantic_overlap_bounded_with_effort(
                repo,
                sim.as_ref(),
                cfg.alpha,
                query,
                set,
                None,
            );
            vec![(set, outcome.score(), effort)]
        } else {
            std::thread::scope(|sc| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|sv| {
                        let set = sv.set;
                        let sim = Arc::clone(sim);
                        sc.spawn(move || {
                            let (outcome, effort) = semantic_overlap_bounded_with_effort(
                                repo,
                                sim.as_ref(),
                                cfg.alpha,
                                query,
                                set,
                                None,
                            );
                            (set, outcome.score(), effort)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("verification thread panicked"))
                    .collect()
            })
        };
        stats.verify_time += verify_start.elapsed();
        for (set, so, effort) in wave_scores {
            stats.em_full += 1;
            if let Some(f) = stats.funnel_mut() {
                f.em_verified += 1;
                f.matrix_cells += effort.matrix_cells;
                f.support_cells += effort.support_cells;
            }
            llb.offer(set, Sim::new(so));
            scored.push((so, set));
        }
    }
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("scores are never NaN")
            .then_with(|| a.1.cmp(&b.1))
    });
    scored.truncate(cfg.k);
    scored
        .into_iter()
        .map(|(so, set)| Hit {
            set,
            score: ScoreBound::Exact(so),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KoiosConfig;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;

    /// Builds a repo of singleton-ish sets where semantic overlap equals
    /// vanilla overlap (equality sim), letting us hand-craft bounds.
    fn setup() -> (Repository, Arc<dyn ElementSimilarity>, Vec<TokenId>) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c"]); // SO = 3
        b.add_set("s1", ["a", "b", "x"]); // SO = 2
        b.add_set("s2", ["a", "y", "z"]); // SO = 1
        b.add_set("s3", ["p", "q", "r"]); // SO = 0 (never a candidate)
        let repo = b.build();
        let q = repo.intern_query(["a", "b", "c"]);
        (repo, Arc::new(EqualitySimilarity), q)
    }

    fn survivors() -> Vec<Survivor> {
        vec![
            Survivor {
                set: SetId(0),
                lb: 3.0,
                ub: 3.0,
            },
            Survivor {
                set: SetId(1),
                lb: 2.0,
                ub: 2.0,
            },
            Survivor {
                set: SetId(2),
                lb: 1.0,
                ub: 1.0,
            },
        ]
    }

    #[test]
    fn returns_top_k_and_respects_k() {
        let (repo, sim, q) = setup();
        let cfg = KoiosConfig::new(2, 0.9);
        let theta = SharedTheta::new();
        let mut llb = TopKList::new(2);
        for sv in survivors() {
            llb.offer(sv.set, Sim::new(sv.lb));
        }
        theta.raise(llb.threshold().get());
        let mut stats = SearchStats::default();
        let hits = postprocess(
            &repo,
            &sim,
            &q,
            &cfg,
            &theta,
            &mut llb,
            survivors(),
            &mut stats,
            None,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].set, SetId(0));
        assert_eq!(hits[1].set, SetId(1));
    }

    #[test]
    fn no_em_certifies_without_matching() {
        let (repo, sim, q) = setup();
        let cfg = KoiosConfig::new(1, 0.9);
        let theta = SharedTheta::new();
        let mut llb = TopKList::new(1);
        // Tight bounds: lb of the best equals its ub => No-EM must fire.
        let sv = vec![
            Survivor {
                set: SetId(0),
                lb: 3.0,
                ub: 3.0,
            },
            Survivor {
                set: SetId(1),
                lb: 2.0,
                ub: 2.0,
            },
        ];
        for s in &sv {
            llb.offer(s.set, Sim::new(s.lb));
        }
        theta.raise(llb.threshold().get());
        let mut stats = SearchStats::default();
        let hits = postprocess(
            &repo, &sim, &q, &cfg, &theta, &mut llb, sv, &mut stats, None,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].set, SetId(0));
        assert_eq!(stats.no_em, 1);
        assert_eq!(stats.em_full, 0);
        assert_eq!(stats.verify_time, std::time::Duration::ZERO);
        // No-EM hits carry interval scores.
        assert!(hits[0].score.exact().is_none());
    }

    #[test]
    fn disabled_no_em_yields_exact_scores() {
        let (repo, sim, q) = setup();
        let mut cfg = KoiosConfig::new(2, 0.9);
        cfg.no_em_filter = false;
        let theta = SharedTheta::new();
        let mut llb = TopKList::new(2);
        let mut stats = SearchStats::default();
        let hits = postprocess(
            &repo,
            &sim,
            &q,
            &cfg,
            &theta,
            &mut llb,
            survivors(),
            &mut stats,
            None,
        );
        assert_eq!(hits.len(), 2);
        for h in &hits {
            assert!(h.score.exact().is_some());
        }
        assert_eq!(hits[0].score.exact(), Some(3.0));
        assert_eq!(hits[1].score.exact(), Some(2.0));
        assert!(
            stats.verify_time > std::time::Duration::ZERO,
            "completed matchings must account verify time"
        );
    }

    #[test]
    fn loose_upper_bounds_get_verified_and_reranked() {
        let (repo, sim, q) = setup();
        let mut cfg = KoiosConfig::new(2, 0.9);
        cfg.no_em_filter = false;
        let theta = SharedTheta::new();
        let mut llb = TopKList::new(2);
        // s2 looks best by UB but verifies to 1.0; true order must win.
        let sv = vec![
            Survivor {
                set: SetId(2),
                lb: 0.5,
                ub: 10.0,
            },
            Survivor {
                set: SetId(0),
                lb: 1.0,
                ub: 3.5,
            },
            Survivor {
                set: SetId(1),
                lb: 1.0,
                ub: 2.5,
            },
        ];
        let mut stats = SearchStats::default();
        let hits = postprocess(
            &repo, &sim, &q, &cfg, &theta, &mut llb, sv, &mut stats, None,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].set, SetId(0));
        assert_eq!(hits[0].score.exact(), Some(3.0));
        assert_eq!(hits[1].set, SetId(1));
        assert_eq!(hits[1].score.exact(), Some(2.0));
    }

    #[test]
    fn parallel_em_matches_sequential() {
        let (repo, sim, q) = setup();
        let theta_a = SharedTheta::new();
        let theta_b = SharedTheta::new();
        let mut cfg_seq = KoiosConfig::new(2, 0.9);
        cfg_seq.no_em_filter = false;
        let cfg_par = cfg_seq.clone().with_parallel_em(4);
        let mut llb_a = TopKList::new(2);
        let mut llb_b = TopKList::new(2);
        let mut st_a = SearchStats::default();
        let mut st_b = SearchStats::default();
        let ha = postprocess(
            &repo,
            &sim,
            &q,
            &cfg_seq,
            &theta_a,
            &mut llb_a,
            survivors(),
            &mut st_a,
            None,
        );
        let hb = postprocess(
            &repo,
            &sim,
            &q,
            &cfg_par,
            &theta_b,
            &mut llb_b,
            survivors(),
            &mut st_b,
            None,
        );
        assert_eq!(ha.len(), hb.len());
        for (a, b) in ha.iter().zip(&hb) {
            assert_eq!(a.set, b.set);
            assert_eq!(a.score.exact(), b.score.exact());
        }
    }

    #[test]
    fn fewer_survivors_than_k() {
        let (repo, sim, q) = setup();
        let cfg = KoiosConfig::new(10, 0.9);
        let theta = SharedTheta::new();
        let mut llb = TopKList::new(10);
        let mut stats = SearchStats::default();
        let hits = postprocess(
            &repo,
            &sim,
            &q,
            &cfg,
            &theta,
            &mut llb,
            survivors(),
            &mut stats,
            None,
        );
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn empty_survivors_yield_empty_hits() {
        let (repo, sim, q) = setup();
        let cfg = KoiosConfig::new(3, 0.9);
        let theta = SharedTheta::new();
        let mut llb = TopKList::new(3);
        let mut stats = SearchStats::default();
        let hits = postprocess(
            &repo,
            &sim,
            &q,
            &cfg,
            &theta,
            &mut llb,
            Vec::new(),
            &mut stats,
            None,
        );
        assert!(hits.is_empty());
    }
}
