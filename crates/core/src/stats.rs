//! Per-query instrumentation.
//!
//! Every counter maps to a column of the paper's evaluation tables:
//! `candidates` / `ub_filter_pruned` + `iub_pruned` / `no_em` /
//! `em_early_terminated` / `em_full` are Tables II, IV and V;
//! `refine_time` / `postprocess_time` are the phase-breakdown panels of
//! Figs. 5–7; `memory` feeds the footprint panels.

use koios_common::json::Json;
use koios_common::memsize::MemoryReport;
use koios_index::knn_cache::KnnCacheSearchStats;
use std::time::Duration;

/// EXPLAIN-mode funnel accounting: stage-by-stage candidate attrition for
/// one query, from token-stream discovery through the refinement filters
/// (Lemmas 2 and 4, §V) to verification (Lemmas 7–8) and the returned
/// top-k. Opt-in via [`crate::KoiosConfig::explain`] — when the flag is
/// off, [`SearchStats::funnel`] stays `None` and the hot paths pay one
/// predictable branch per counter site.
///
/// Counters that shadow an existing [`SearchStats`] field (e.g.
/// [`candidates_discovered`](Self::candidates_discovered) vs
/// [`SearchStats::candidates`]) are incremented at the *same* code sites,
/// so the two always reconcile exactly; the rest (posting lengths, theta
/// raises, matching effort, per-shard sub-funnels) exist only here.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FunnelCounts {
    /// Tuples consumed from the token stream `Ie` (mirrors
    /// [`SearchStats::stream_tuples`]).
    pub stream_tuples: usize,
    /// Distinct query tokens whose inverted-index posting lists were
    /// walked during candidate discovery.
    pub postings_probed: usize,
    /// Total posting entries touched across all probed lists.
    pub posting_entries_scanned: usize,
    /// Length of each posting list probed, in probe order — the raw
    /// material of the per-token fan-out histogram in an explain report.
    pub posting_lengths: Vec<usize>,
    /// Posting entries skipped because the set is tombstoned in the
    /// serving delta-chain (live engines only).
    pub tombstone_skips: usize,
    /// Distinct candidate sets discovered (mirrors
    /// [`SearchStats::candidates`]).
    pub candidates_discovered: usize,
    /// Candidates pruned at discovery by the UB-filter (mirrors
    /// [`SearchStats::ub_filter_pruned`]).
    pub ub_filter_pruned: usize,
    /// Candidates pruned by the bucketised iUB filter (mirrors
    /// [`SearchStats::iub_pruned`]).
    pub iub_pruned: usize,
    /// Times the running threshold `θlb` rose (lower-bound tightening
    /// iterations, Lemma 4).
    pub theta_raises: usize,
    /// Moves between iUB buckets (upper-bound tightening iterations;
    /// mirrors [`SearchStats::bucket_moves`]).
    pub bucket_moves: usize,
    /// Candidates surviving refinement into post-processing (mirrors
    /// [`SearchStats::to_postprocess`]).
    pub entered_postprocess: usize,
    /// Post-processing sets discarded because their upper bound fell under
    /// `θlb` (mirrors [`SearchStats::postprocess_ub_pruned`]).
    pub postprocess_ub_pruned: usize,
    /// Sets certified into the top-k without matching (mirrors
    /// [`SearchStats::no_em`]).
    pub no_em_certified: usize,
    /// Exact matchings aborted early (mirrors
    /// [`SearchStats::em_early_terminated`]).
    pub em_early_terminated: usize,
    /// Exact matchings run to completion, including merge-time
    /// verifications of a partitioned search (mirrors
    /// [`SearchStats::em_full`]).
    pub em_verified: usize,
    /// The subset of [`em_verified`](Self::em_verified) performed by the
    /// partitioned merge loop on interval-scored hits (§VI).
    pub merge_verifications: usize,
    /// Similarity-matrix cells materialised by verification (Hungarian
    /// input size — the work the funnel's upper stages saved).
    pub matrix_cells: u64,
    /// Support-graph cells the bounded Hungarian actually relaxed.
    pub support_cells: u64,
    /// Hits returned to the caller.
    pub returned: usize,
    /// Query elements answered from the shared kNN cache (mirrors
    /// [`SearchStats::knn_cache`] hits).
    pub knn_cache_hits: usize,
    /// Query elements that scanned the vocabulary (mirrors
    /// [`SearchStats::knn_cache`] misses).
    pub knn_cache_misses: usize,
    /// Per-shard sub-funnels of a partitioned search, indexed by
    /// partition. Empty for single-engine searches.
    pub shards: Vec<ShardFunnel>,
}

/// One partition's contribution to a partitioned search's funnel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardFunnel {
    /// Partition index.
    pub shard: usize,
    /// Stream tuples this shard consumed.
    pub stream_tuples: usize,
    /// Candidates this shard discovered.
    pub candidates: usize,
    /// Discovery-time UB-filter prunes.
    pub ub_filter_pruned: usize,
    /// iUB bucket-filter prunes.
    pub iub_pruned: usize,
    /// Candidates entering the shard's post-processing.
    pub entered_postprocess: usize,
    /// No-EM certifications.
    pub no_em_certified: usize,
    /// Early-terminated matchings.
    pub em_early_terminated: usize,
    /// Completed matchings.
    pub em_verified: usize,
    /// Hits the shard offered to the merge.
    pub returned: usize,
}

impl ShardFunnel {
    /// Summarizes a shard engine's funnel as one row of the partitioned
    /// report.
    pub fn from_counts(shard: usize, f: &FunnelCounts) -> Self {
        ShardFunnel {
            shard,
            stream_tuples: f.stream_tuples,
            candidates: f.candidates_discovered,
            ub_filter_pruned: f.ub_filter_pruned,
            iub_pruned: f.iub_pruned,
            entered_postprocess: f.entered_postprocess,
            no_em_certified: f.no_em_certified,
            em_early_terminated: f.em_early_terminated,
            em_verified: f.em_verified,
            returned: f.returned,
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("shard", Json::num(self.shard as f64)),
            ("stream_tuples", Json::num(self.stream_tuples as f64)),
            ("candidates", Json::num(self.candidates as f64)),
            ("ub_filter_pruned", Json::num(self.ub_filter_pruned as f64)),
            ("iub_pruned", Json::num(self.iub_pruned as f64)),
            (
                "entered_postprocess",
                Json::num(self.entered_postprocess as f64),
            ),
            ("no_em_certified", Json::num(self.no_em_certified as f64)),
            (
                "em_early_terminated",
                Json::num(self.em_early_terminated as f64),
            ),
            ("em_verified", Json::num(self.em_verified as f64)),
            ("returned", Json::num(self.returned as f64)),
        ])
    }
}

impl FunnelCounts {
    /// Folds another funnel into this one (partitioned aggregation):
    /// counters sum, posting lengths and shard rows concatenate.
    pub fn merge(&mut self, other: &FunnelCounts) {
        self.stream_tuples += other.stream_tuples;
        self.postings_probed += other.postings_probed;
        self.posting_entries_scanned += other.posting_entries_scanned;
        self.posting_lengths
            .extend_from_slice(&other.posting_lengths);
        self.tombstone_skips += other.tombstone_skips;
        self.candidates_discovered += other.candidates_discovered;
        self.ub_filter_pruned += other.ub_filter_pruned;
        self.iub_pruned += other.iub_pruned;
        self.theta_raises += other.theta_raises;
        self.bucket_moves += other.bucket_moves;
        self.entered_postprocess += other.entered_postprocess;
        self.postprocess_ub_pruned += other.postprocess_ub_pruned;
        self.no_em_certified += other.no_em_certified;
        self.em_early_terminated += other.em_early_terminated;
        self.em_verified += other.em_verified;
        self.merge_verifications += other.merge_verifications;
        self.matrix_cells += other.matrix_cells;
        self.support_cells += other.support_cells;
        self.returned += other.returned;
        self.knn_cache_hits += other.knn_cache_hits;
        self.knn_cache_misses += other.knn_cache_misses;
        self.shards.extend_from_slice(&other.shards);
    }

    /// The stage-by-stage survivor counts of the funnel diagram, top to
    /// bottom: discovered → surviving refinement → entering verification →
    /// resolved without full matching → verified exactly → returned.
    pub fn stages(&self) -> [(&'static str, usize); 6] {
        [
            ("discovered", self.candidates_discovered),
            (
                "survived_refinement",
                self.candidates_discovered
                    .saturating_sub(self.ub_filter_pruned + self.iub_pruned),
            ),
            ("entered_postprocess", self.entered_postprocess),
            (
                "resolved_without_matching",
                self.postprocess_ub_pruned + self.no_em_certified + self.em_early_terminated,
            ),
            ("verified_exactly", self.em_verified),
            ("returned", self.returned),
        ]
    }

    /// The full explain report as a JSON object — the single encoding used
    /// by the wire reply, the slow-query log and retained traces.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stream_tuples", Json::num(self.stream_tuples as f64)),
            ("postings_probed", Json::num(self.postings_probed as f64)),
            (
                "posting_entries_scanned",
                Json::num(self.posting_entries_scanned as f64),
            ),
            (
                "posting_lengths",
                Json::arr(self.posting_lengths.iter().map(|&l| Json::num(l as f64))),
            ),
            ("tombstone_skips", Json::num(self.tombstone_skips as f64)),
            (
                "candidates_discovered",
                Json::num(self.candidates_discovered as f64),
            ),
            ("ub_filter_pruned", Json::num(self.ub_filter_pruned as f64)),
            ("iub_pruned", Json::num(self.iub_pruned as f64)),
            ("theta_raises", Json::num(self.theta_raises as f64)),
            ("bucket_moves", Json::num(self.bucket_moves as f64)),
            (
                "entered_postprocess",
                Json::num(self.entered_postprocess as f64),
            ),
            (
                "postprocess_ub_pruned",
                Json::num(self.postprocess_ub_pruned as f64),
            ),
            ("no_em_certified", Json::num(self.no_em_certified as f64)),
            (
                "em_early_terminated",
                Json::num(self.em_early_terminated as f64),
            ),
            ("em_verified", Json::num(self.em_verified as f64)),
            (
                "merge_verifications",
                Json::num(self.merge_verifications as f64),
            ),
            ("matrix_cells", Json::num(self.matrix_cells as f64)),
            ("support_cells", Json::num(self.support_cells as f64)),
            ("returned", Json::num(self.returned as f64)),
            ("knn_cache_hits", Json::num(self.knn_cache_hits as f64)),
            ("knn_cache_misses", Json::num(self.knn_cache_misses as f64)),
            ("shards", Json::arr(self.shards.iter().map(|s| s.to_json()))),
        ])
    }

    /// A one-line summary (the slow-log / trace attachment): the funnel
    /// stages as `name=count` pairs.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, (name, count)) in self.stages().iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&count.to_string());
        }
        out
    }
}

/// Counters and timings collected by one search.
#[derive(Debug, Default, Clone)]
pub struct SearchStats {
    /// Tuples consumed from the token stream `Ie`.
    pub stream_tuples: usize,
    /// Distinct candidate sets discovered (non-zero semantic overlap).
    pub candidates: usize,
    /// Candidates pruned at discovery by the UB-filter (Lemma 2).
    pub ub_filter_pruned: usize,
    /// Candidates pruned by the bucketised iUB filter during refinement
    /// (including the end-of-stream upper-bound collapse).
    pub iub_pruned: usize,
    /// Candidates entering the post-processing phase.
    pub to_postprocess: usize,
    /// Post-processing sets discarded lazily because their upper bound fell
    /// under `θlb` before any matching was attempted.
    pub postprocess_ub_pruned: usize,
    /// Sets certified into the top-k *without* exact matching (Lemma 7).
    pub no_em: usize,
    /// Exact matchings aborted by the label-sum filter (Lemma 8).
    pub em_early_terminated: usize,
    /// Exact matchings run to completion. For a partitioned search this
    /// also counts merge-time verifications of interval-scored hits
    /// (see [`crate::PartitionedKoios::search_with_deadline`]) — after a deadline
    /// expiry the merge performs none, so a timed-out partitioned search
    /// reports exactly the matchings that ran before the budget lapsed.
    pub em_full: usize,
    /// Moves between iUB buckets (filter maintenance cost, §V).
    pub bucket_moves: usize,
    /// Wall time of the refinement phase.
    pub refine_time: Duration,
    /// Wall time of the post-processing phase.
    pub postprocess_time: Duration,
    /// Wall time spent inside exact-matching **verification** (the paper's
    /// "verify" stage: Hungarian runs, early-terminated or complete, plus
    /// the bounded overlaps of `verify_all` mode). A strict subset of
    /// `postprocess_time` for a single-engine search; a partitioned search
    /// adds its merge-loop verifications here too.
    pub verify_time: Duration,
    /// Wall time of the partitioned merge loop (resolving interval-scored
    /// hits in descending-UB order, §VI). Zero for single-engine searches.
    pub merge_time: Duration,
    /// Wall time the [`crate::ShardExecutor`] batch held the query: from
    /// submitting the per-shard tasks until the last shard's partial result
    /// returned (covers shard queue wait *and* shard search). Zero for
    /// single-engine searches. Feeds the `executor` span of a request
    /// trace.
    pub executor_time: Duration,
    /// Per-shard wall time of a partitioned search, indexed by partition
    /// (empty for single-engine searches). Parallel merges take the
    /// element-wise max — shards of one query run concurrently — while
    /// sequential service aggregation sums element-wise into cumulative
    /// per-shard engine time.
    pub shard_times: Vec<Duration>,
    /// Whether the time budget expired (partial results). Sticky across
    /// merges: a partitioned search is timed out if *any* shard — or the
    /// merge loop itself — observed the expiry.
    pub timed_out: bool,
    /// Token-level kNN cache effectiveness (all zeros when the engine runs
    /// without a [`crate::KoiosConfig::token_cache`]): how many query
    /// elements were answered from shared cached lists instead of scanning
    /// the vocabulary, and how many payload bytes those lists served.
    pub knn_cache: KnnCacheSearchStats,
    /// Corpus epoch of the engine that answered the query
    /// ([`crate::KoiosConfig::epoch`]). Merges take the max — shard
    /// engines always share their parent's epoch, and a service aggregate
    /// reports the newest corpus version that contributed.
    pub epoch: u64,
    /// Peak footprint of the search data structures.
    pub memory: MemoryReport,
    /// EXPLAIN-mode funnel report. `None` unless the query ran with
    /// [`crate::KoiosConfig::explain`] — the boxed indirection keeps the
    /// disabled path at one pointer of overhead.
    pub funnel: Option<Box<FunnelCounts>>,
}

impl SearchStats {
    /// The funnel accumulator when explain mode is on (`None` otherwise).
    /// Instrumentation sites use this so the disabled path is a single
    /// branch on a null pointer.
    #[inline]
    pub fn funnel_mut(&mut self) -> Option<&mut FunnelCounts> {
        self.funnel.as_deref_mut()
    }

    /// Total wall time across phases.
    pub fn response_time(&self) -> Duration {
        self.refine_time + self.postprocess_time
    }

    /// Fraction of candidates pruned during refinement (the paper's
    /// "iUB-Filter" pruning-power column folds the discovery-time UB-filter
    /// into the refinement count).
    pub fn refinement_prune_ratio(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        (self.ub_filter_pruned + self.iub_pruned) as f64 / self.candidates as f64
    }

    /// Fraction of post-processing sets resolved without a completed exact
    /// matching (No-EM certified or early-terminated).
    pub fn postprocess_prune_ratio(&self) -> f64 {
        if self.to_postprocess == 0 {
            return 0.0;
        }
        (self.no_em + self.em_early_terminated + self.postprocess_ub_pruned) as f64
            / self.to_postprocess as f64
    }

    /// Merges counters from another search (used when aggregating partition
    /// stats; timings take the max, since partitions run in parallel, and
    /// memory adds up, since partition footprints coexist).
    pub fn merge_parallel(&mut self, other: &SearchStats) {
        self.merge_counters(other);
        if let Some(theirs) = other.funnel.as_deref() {
            match self.funnel.as_deref_mut() {
                Some(mine) => mine.merge(theirs),
                None => self.funnel = Some(Box::new(theirs.clone())),
            }
        }
        self.refine_time = self.refine_time.max(other.refine_time);
        self.postprocess_time = self.postprocess_time.max(other.postprocess_time);
        self.verify_time = self.verify_time.max(other.verify_time);
        self.merge_time = self.merge_time.max(other.merge_time);
        self.executor_time = self.executor_time.max(other.executor_time);
        merge_shard_times(&mut self.shard_times, &other.shard_times, |a, b| a.max(b));
        self.memory.merge(&other.memory);
    }

    /// Merges counters from another search run *after* this one (service
    /// aggregation across queries): timings add up — the total is
    /// cumulative engine time — while memory takes the per-label max, since
    /// each search's footprint is a transient snapshot of the same
    /// structures (summing snapshots across a service lifetime would read
    /// like an unbounded leak). Funnel reports are per-query diagnostics
    /// and are *not* folded — concatenating posting-length vectors across
    /// a service lifetime would grow without bound.
    pub fn merge_sequential(&mut self, other: &SearchStats) {
        self.merge_counters(other);
        self.refine_time += other.refine_time;
        self.postprocess_time += other.postprocess_time;
        self.verify_time += other.verify_time;
        self.merge_time += other.merge_time;
        self.executor_time += other.executor_time;
        merge_shard_times(&mut self.shard_times, &other.shard_times, |a, b| a + b);
        self.memory.max_merge(&other.memory);
    }

    fn merge_counters(&mut self, other: &SearchStats) {
        self.stream_tuples += other.stream_tuples;
        self.candidates += other.candidates;
        self.ub_filter_pruned += other.ub_filter_pruned;
        self.iub_pruned += other.iub_pruned;
        self.to_postprocess += other.to_postprocess;
        self.postprocess_ub_pruned += other.postprocess_ub_pruned;
        self.no_em += other.no_em;
        self.em_early_terminated += other.em_early_terminated;
        self.em_full += other.em_full;
        self.bucket_moves += other.bucket_moves;
        self.timed_out |= other.timed_out;
        self.knn_cache.merge(&other.knn_cache);
        self.epoch = self.epoch.max(other.epoch);
    }
}

/// Element-wise fold of per-shard timings, extending with the other side's
/// entries where lengths differ (e.g. folding a single-engine search into
/// a partitioned aggregate).
fn merge_shard_times(
    into: &mut Vec<Duration>,
    other: &[Duration],
    fold: impl Fn(Duration, Duration) -> Duration,
) {
    if into.len() < other.len() {
        into.resize(other.len(), Duration::ZERO);
    }
    for (a, &b) in into.iter_mut().zip(other.iter()) {
        *a = fold(*a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = SearchStats::default();
        assert_eq!(s.refinement_prune_ratio(), 0.0);
        assert_eq!(s.postprocess_prune_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SearchStats {
            candidates: 100,
            ub_filter_pruned: 30,
            iub_pruned: 50,
            to_postprocess: 20,
            no_em: 5,
            em_early_terminated: 5,
            em_full: 10,
            ..Default::default()
        };
        assert!((s.refinement_prune_ratio() - 0.8).abs() < 1e-12);
        assert!((s.postprocess_prune_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_parallel_sums_counts_and_maxes_times() {
        let mut a = SearchStats {
            candidates: 10,
            refine_time: Duration::from_millis(30),
            verify_time: Duration::from_millis(4),
            shard_times: vec![Duration::from_millis(9)],
            epoch: 3,
            ..Default::default()
        };
        let b = SearchStats {
            candidates: 5,
            refine_time: Duration::from_millis(50),
            verify_time: Duration::from_millis(2),
            merge_time: Duration::from_millis(3),
            shard_times: vec![Duration::from_millis(5), Duration::from_millis(7)],
            timed_out: true,
            epoch: 2,
            ..Default::default()
        };
        a.merge_parallel(&b);
        assert_eq!(a.candidates, 15);
        assert_eq!(a.epoch, 3);
        assert_eq!(a.refine_time, Duration::from_millis(50));
        assert_eq!(a.verify_time, Duration::from_millis(4));
        assert_eq!(a.merge_time, Duration::from_millis(3));
        assert_eq!(
            a.shard_times,
            vec![Duration::from_millis(9), Duration::from_millis(7)]
        );
        assert!(a.timed_out);
    }

    #[test]
    fn funnel_merges_parallel_but_not_sequential() {
        let funnel = |candidates: usize| {
            Some(Box::new(FunnelCounts {
                candidates_discovered: candidates,
                posting_lengths: vec![candidates],
                ..FunnelCounts::default()
            }))
        };
        let mut a = SearchStats {
            funnel: funnel(3),
            ..Default::default()
        };
        let b = SearchStats {
            funnel: funnel(4),
            ..Default::default()
        };
        a.merge_parallel(&b);
        let f = a.funnel.as_deref().unwrap();
        assert_eq!(f.candidates_discovered, 7);
        assert_eq!(f.posting_lengths, vec![3, 4]);

        // A funnel-less aggregate adopts the other side's report...
        let mut bare = SearchStats::default();
        bare.merge_parallel(&a);
        assert_eq!(bare.funnel.as_deref().unwrap().candidates_discovered, 7);
        // ...but sequential (service-lifetime) aggregation never folds it.
        let mut seq = SearchStats::default();
        seq.merge_sequential(&a);
        assert!(seq.funnel.is_none());
    }

    #[test]
    fn funnel_stages_and_summary_are_consistent() {
        let f = FunnelCounts {
            candidates_discovered: 100,
            ub_filter_pruned: 40,
            iub_pruned: 30,
            entered_postprocess: 30,
            postprocess_ub_pruned: 5,
            no_em_certified: 10,
            em_early_terminated: 5,
            em_verified: 10,
            returned: 10,
            ..FunnelCounts::default()
        };
        let stages = f.stages();
        assert_eq!(stages[0], ("discovered", 100));
        assert_eq!(stages[1], ("survived_refinement", 30));
        assert_eq!(stages[3], ("resolved_without_matching", 20));
        assert_eq!(stages[5], ("returned", 10));
        let summary = f.summary();
        assert!(summary.contains("discovered=100"), "{summary}");
        assert!(summary.contains("returned=10"), "{summary}");
        let json = f.to_json();
        assert_eq!(
            json.get("candidates_discovered").unwrap().as_u64(),
            Some(100)
        );
        assert_eq!(json.get("shards").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn merge_sequential_sums_counts_and_times() {
        let mut a = SearchStats {
            candidates: 10,
            refine_time: Duration::from_millis(30),
            postprocess_time: Duration::from_millis(5),
            verify_time: Duration::from_millis(2),
            merge_time: Duration::from_millis(1),
            shard_times: vec![Duration::from_millis(4)],
            ..Default::default()
        };
        let b = SearchStats {
            candidates: 5,
            refine_time: Duration::from_millis(50),
            postprocess_time: Duration::from_millis(10),
            verify_time: Duration::from_millis(3),
            merge_time: Duration::from_millis(2),
            shard_times: vec![Duration::from_millis(6), Duration::from_millis(8)],
            ..Default::default()
        };
        a.merge_sequential(&b);
        assert_eq!(a.candidates, 15);
        assert_eq!(a.refine_time, Duration::from_millis(80));
        assert_eq!(a.postprocess_time, Duration::from_millis(15));
        assert_eq!(a.verify_time, Duration::from_millis(5));
        assert_eq!(a.merge_time, Duration::from_millis(3));
        assert_eq!(
            a.shard_times,
            vec![Duration::from_millis(10), Duration::from_millis(8)]
        );
        assert!(!a.timed_out);
    }
}
