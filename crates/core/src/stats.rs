//! Per-query instrumentation.
//!
//! Every counter maps to a column of the paper's evaluation tables:
//! `candidates` / `ub_filter_pruned` + `iub_pruned` / `no_em` /
//! `em_early_terminated` / `em_full` are Tables II, IV and V;
//! `refine_time` / `postprocess_time` are the phase-breakdown panels of
//! Figs. 5–7; `memory` feeds the footprint panels.

use koios_common::memsize::MemoryReport;
use koios_index::knn_cache::KnnCacheSearchStats;
use std::time::Duration;

/// Counters and timings collected by one search.
#[derive(Debug, Default, Clone)]
pub struct SearchStats {
    /// Tuples consumed from the token stream `Ie`.
    pub stream_tuples: usize,
    /// Distinct candidate sets discovered (non-zero semantic overlap).
    pub candidates: usize,
    /// Candidates pruned at discovery by the UB-filter (Lemma 2).
    pub ub_filter_pruned: usize,
    /// Candidates pruned by the bucketised iUB filter during refinement
    /// (including the end-of-stream upper-bound collapse).
    pub iub_pruned: usize,
    /// Candidates entering the post-processing phase.
    pub to_postprocess: usize,
    /// Post-processing sets discarded lazily because their upper bound fell
    /// under `θlb` before any matching was attempted.
    pub postprocess_ub_pruned: usize,
    /// Sets certified into the top-k *without* exact matching (Lemma 7).
    pub no_em: usize,
    /// Exact matchings aborted by the label-sum filter (Lemma 8).
    pub em_early_terminated: usize,
    /// Exact matchings run to completion. For a partitioned search this
    /// also counts merge-time verifications of interval-scored hits
    /// (see [`crate::PartitionedKoios::search_with_deadline`]) — after a deadline
    /// expiry the merge performs none, so a timed-out partitioned search
    /// reports exactly the matchings that ran before the budget lapsed.
    pub em_full: usize,
    /// Moves between iUB buckets (filter maintenance cost, §V).
    pub bucket_moves: usize,
    /// Wall time of the refinement phase.
    pub refine_time: Duration,
    /// Wall time of the post-processing phase.
    pub postprocess_time: Duration,
    /// Wall time spent inside exact-matching **verification** (the paper's
    /// "verify" stage: Hungarian runs, early-terminated or complete, plus
    /// the bounded overlaps of `verify_all` mode). A strict subset of
    /// `postprocess_time` for a single-engine search; a partitioned search
    /// adds its merge-loop verifications here too.
    pub verify_time: Duration,
    /// Wall time of the partitioned merge loop (resolving interval-scored
    /// hits in descending-UB order, §VI). Zero for single-engine searches.
    pub merge_time: Duration,
    /// Wall time the [`crate::ShardExecutor`] batch held the query: from
    /// submitting the per-shard tasks until the last shard's partial result
    /// returned (covers shard queue wait *and* shard search). Zero for
    /// single-engine searches. Feeds the `executor` span of a request
    /// trace.
    pub executor_time: Duration,
    /// Per-shard wall time of a partitioned search, indexed by partition
    /// (empty for single-engine searches). Parallel merges take the
    /// element-wise max — shards of one query run concurrently — while
    /// sequential service aggregation sums element-wise into cumulative
    /// per-shard engine time.
    pub shard_times: Vec<Duration>,
    /// Whether the time budget expired (partial results). Sticky across
    /// merges: a partitioned search is timed out if *any* shard — or the
    /// merge loop itself — observed the expiry.
    pub timed_out: bool,
    /// Token-level kNN cache effectiveness (all zeros when the engine runs
    /// without a [`crate::KoiosConfig::token_cache`]): how many query
    /// elements were answered from shared cached lists instead of scanning
    /// the vocabulary, and how many payload bytes those lists served.
    pub knn_cache: KnnCacheSearchStats,
    /// Corpus epoch of the engine that answered the query
    /// ([`crate::KoiosConfig::epoch`]). Merges take the max — shard
    /// engines always share their parent's epoch, and a service aggregate
    /// reports the newest corpus version that contributed.
    pub epoch: u64,
    /// Peak footprint of the search data structures.
    pub memory: MemoryReport,
}

impl SearchStats {
    /// Total wall time across phases.
    pub fn response_time(&self) -> Duration {
        self.refine_time + self.postprocess_time
    }

    /// Fraction of candidates pruned during refinement (the paper's
    /// "iUB-Filter" pruning-power column folds the discovery-time UB-filter
    /// into the refinement count).
    pub fn refinement_prune_ratio(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        (self.ub_filter_pruned + self.iub_pruned) as f64 / self.candidates as f64
    }

    /// Fraction of post-processing sets resolved without a completed exact
    /// matching (No-EM certified or early-terminated).
    pub fn postprocess_prune_ratio(&self) -> f64 {
        if self.to_postprocess == 0 {
            return 0.0;
        }
        (self.no_em + self.em_early_terminated + self.postprocess_ub_pruned) as f64
            / self.to_postprocess as f64
    }

    /// Merges counters from another search (used when aggregating partition
    /// stats; timings take the max, since partitions run in parallel, and
    /// memory adds up, since partition footprints coexist).
    pub fn merge_parallel(&mut self, other: &SearchStats) {
        self.merge_counters(other);
        self.refine_time = self.refine_time.max(other.refine_time);
        self.postprocess_time = self.postprocess_time.max(other.postprocess_time);
        self.verify_time = self.verify_time.max(other.verify_time);
        self.merge_time = self.merge_time.max(other.merge_time);
        self.executor_time = self.executor_time.max(other.executor_time);
        merge_shard_times(&mut self.shard_times, &other.shard_times, |a, b| a.max(b));
        self.memory.merge(&other.memory);
    }

    /// Merges counters from another search run *after* this one (service
    /// aggregation across queries): timings add up — the total is
    /// cumulative engine time — while memory takes the per-label max, since
    /// each search's footprint is a transient snapshot of the same
    /// structures (summing snapshots across a service lifetime would read
    /// like an unbounded leak).
    pub fn merge_sequential(&mut self, other: &SearchStats) {
        self.merge_counters(other);
        self.refine_time += other.refine_time;
        self.postprocess_time += other.postprocess_time;
        self.verify_time += other.verify_time;
        self.merge_time += other.merge_time;
        self.executor_time += other.executor_time;
        merge_shard_times(&mut self.shard_times, &other.shard_times, |a, b| a + b);
        self.memory.max_merge(&other.memory);
    }

    fn merge_counters(&mut self, other: &SearchStats) {
        self.stream_tuples += other.stream_tuples;
        self.candidates += other.candidates;
        self.ub_filter_pruned += other.ub_filter_pruned;
        self.iub_pruned += other.iub_pruned;
        self.to_postprocess += other.to_postprocess;
        self.postprocess_ub_pruned += other.postprocess_ub_pruned;
        self.no_em += other.no_em;
        self.em_early_terminated += other.em_early_terminated;
        self.em_full += other.em_full;
        self.bucket_moves += other.bucket_moves;
        self.timed_out |= other.timed_out;
        self.knn_cache.merge(&other.knn_cache);
        self.epoch = self.epoch.max(other.epoch);
    }
}

/// Element-wise fold of per-shard timings, extending with the other side's
/// entries where lengths differ (e.g. folding a single-engine search into
/// a partitioned aggregate).
fn merge_shard_times(
    into: &mut Vec<Duration>,
    other: &[Duration],
    fold: impl Fn(Duration, Duration) -> Duration,
) {
    if into.len() < other.len() {
        into.resize(other.len(), Duration::ZERO);
    }
    for (a, &b) in into.iter_mut().zip(other.iter()) {
        *a = fold(*a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = SearchStats::default();
        assert_eq!(s.refinement_prune_ratio(), 0.0);
        assert_eq!(s.postprocess_prune_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SearchStats {
            candidates: 100,
            ub_filter_pruned: 30,
            iub_pruned: 50,
            to_postprocess: 20,
            no_em: 5,
            em_early_terminated: 5,
            em_full: 10,
            ..Default::default()
        };
        assert!((s.refinement_prune_ratio() - 0.8).abs() < 1e-12);
        assert!((s.postprocess_prune_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_parallel_sums_counts_and_maxes_times() {
        let mut a = SearchStats {
            candidates: 10,
            refine_time: Duration::from_millis(30),
            verify_time: Duration::from_millis(4),
            shard_times: vec![Duration::from_millis(9)],
            epoch: 3,
            ..Default::default()
        };
        let b = SearchStats {
            candidates: 5,
            refine_time: Duration::from_millis(50),
            verify_time: Duration::from_millis(2),
            merge_time: Duration::from_millis(3),
            shard_times: vec![Duration::from_millis(5), Duration::from_millis(7)],
            timed_out: true,
            epoch: 2,
            ..Default::default()
        };
        a.merge_parallel(&b);
        assert_eq!(a.candidates, 15);
        assert_eq!(a.epoch, 3);
        assert_eq!(a.refine_time, Duration::from_millis(50));
        assert_eq!(a.verify_time, Duration::from_millis(4));
        assert_eq!(a.merge_time, Duration::from_millis(3));
        assert_eq!(
            a.shard_times,
            vec![Duration::from_millis(9), Duration::from_millis(7)]
        );
        assert!(a.timed_out);
    }

    #[test]
    fn merge_sequential_sums_counts_and_times() {
        let mut a = SearchStats {
            candidates: 10,
            refine_time: Duration::from_millis(30),
            postprocess_time: Duration::from_millis(5),
            verify_time: Duration::from_millis(2),
            merge_time: Duration::from_millis(1),
            shard_times: vec![Duration::from_millis(4)],
            ..Default::default()
        };
        let b = SearchStats {
            candidates: 5,
            refine_time: Duration::from_millis(50),
            postprocess_time: Duration::from_millis(10),
            verify_time: Duration::from_millis(3),
            merge_time: Duration::from_millis(2),
            shard_times: vec![Duration::from_millis(6), Duration::from_millis(8)],
            ..Default::default()
        };
        a.merge_sequential(&b);
        assert_eq!(a.candidates, 15);
        assert_eq!(a.refine_time, Duration::from_millis(80));
        assert_eq!(a.postprocess_time, Duration::from_millis(15));
        assert_eq!(a.verify_time, Duration::from_millis(5));
        assert_eq!(a.merge_time, Duration::from_millis(3));
        assert_eq!(
            a.shard_times,
            vec![Duration::from_millis(10), Duration::from_millis(8)]
        );
        assert!(!a.timed_out);
    }
}
