//! A long-lived, core-count-sized executor for shard search tasks.
//!
//! Partitioned search used to spawn one OS thread per shard per query
//! (`std::thread::scope` in [`crate::partitioned::PartitionedKoios`]) — at
//! serving concurrency that is `workers × shards` thread spawns per batch,
//! and the spawn/join cost plus oversubscription was the first of the three
//! serializers the ROADMAP scaling item names. [`ShardExecutor`] replaces it
//! with one process-wide pool of persistent workers, sized to the machine's
//! available parallelism: every query *shares* the same threads, a batch of
//! shard tasks costs two mutex round-trips per task instead of a spawn, and
//! the total number of runnable search threads stays bounded by core count
//! no matter how many requests are in flight.
//!
//! The submission API is batch-shaped ([`ShardExecutor::run`]): the caller
//! hands over one closure per shard and blocks until all of them finished.
//! The calling thread is never idle while it waits — it runs the first task
//! inline (so a 1-shard engine pays no cross-thread hop at all) and then
//! *helps*, draining queued tasks from any batch until its own batch
//! completes. Helping makes the design deadlock-free by construction even
//! when every pool worker is busy: some thread always makes progress, and
//! shard tasks never submit nested batches.
//!
//! Panic containment mirrors `JoinHandle::join`: a panicking task poisons
//! nothing, its payload is captured and re-raised on the *submitting*
//! thread once the batch is collected.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// Result slots + completion latch of one submitted batch.
struct Batch<T> {
    slots: Vec<Mutex<Option<thread::Result<T>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl<T> Batch<T> {
    fn finish(&self, index: usize, result: thread::Result<T>) {
        *self.slots[index].lock().expect("batch slot") = Some(result);
        let mut remaining = self.remaining.lock().expect("batch latch");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A fixed-width pool of persistent worker threads executing shard search
/// tasks for every in-flight query in the process.
///
/// Obtain the shared instance with [`ShardExecutor::global`] (sized to
/// available parallelism, spawned lazily on first use, lives for the
/// process) or build a private one with [`ShardExecutor::new`] (joined on
/// drop — tests use this).
pub struct ShardExecutor {
    queue: Arc<Queue>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ShardExecutor {
    /// A pool of `threads` persistent workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let threads = (0..threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                thread::Builder::new()
                    .name(format!("koios-shard-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn shard executor worker")
            })
            .collect();
        ShardExecutor { queue, threads }
    }

    /// The process-wide executor, sized to the machine's available
    /// parallelism and spawned on first use. Every partitioned engine in
    /// the process shares it, which is exactly what keeps the number of
    /// runnable search threads bounded by core count regardless of request
    /// concurrency.
    pub fn global() -> &'static ShardExecutor {
        static GLOBAL: OnceLock<ShardExecutor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            ShardExecutor::new(
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Pool width.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Runs every task — the first inline on the calling thread, the rest
    /// on the pool — and returns their results in task order. Blocks until
    /// the whole batch finished; while blocked, the calling thread drains
    /// queued tasks (its own batch's or another's) instead of idling.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first (by index) panicking task.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        let mut tasks = tasks.into_iter();
        let first = tasks.next().expect("n >= 1");
        // Queue the tail first so pool workers start while the caller is
        // still busy with the inline task.
        if n > 1 {
            let mut state = self.queue.state.lock().expect("executor queue");
            for (i, task) in tasks.enumerate() {
                let batch = Arc::clone(&batch);
                state.tasks.push_back(Box::new(move || {
                    batch.finish(i + 1, std::panic::catch_unwind(AssertUnwindSafe(task)));
                }));
            }
            drop(state);
            // One wakeup per queued task (notify_all would stampede pools
            // wider than the batch).
            for _ in 1..n {
                self.queue.available.notify_one();
            }
        }
        batch.finish(0, std::panic::catch_unwind(AssertUnwindSafe(first)));

        // Help until our batch completes: running queued tasks (whoever
        // they belong to) beats blocking a core that search work could use.
        loop {
            if *batch.remaining.lock().expect("batch latch") == 0 {
                break;
            }
            let task = self
                .queue
                .state
                .lock()
                .expect("executor queue")
                .tasks
                .pop_front();
            match task {
                Some(task) => task(),
                None => {
                    let mut remaining = batch.remaining.lock().expect("batch latch");
                    while *remaining > 0 {
                        remaining = batch.done.wait(remaining).expect("batch latch");
                    }
                    break;
                }
            }
        }

        batch
            .slots
            .iter()
            .map(|slot| {
                match slot
                    .lock()
                    .expect("batch slot")
                    .take()
                    .expect("batch complete")
                {
                    Ok(value) => value,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })
            .collect()
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let task = {
            let mut state = queue.state.lock().expect("executor queue");
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = queue.available.wait(state).expect("executor queue");
            }
        };
        task();
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        self.queue.state.lock().expect("executor queue").shutdown = true;
        self.queue.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardExecutor")
            .field("threads", &self.threads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let ex = ShardExecutor::new(2);
        let results = ex.run((0..16).map(|i| move || i * i).collect());
        assert_eq!(results, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_free() {
        let ex = ShardExecutor::new(1);
        assert_eq!(ex.run(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new()), []);
    }

    #[test]
    fn single_task_runs_inline_on_the_caller() {
        let ex = ShardExecutor::new(2);
        let caller = thread::current().id();
        let ran_on = ex.run(vec![move || thread::current().id()]);
        assert_eq!(ran_on, vec![caller], "no cross-thread hop for 1 task");
    }

    #[test]
    fn tasks_actually_run_concurrently_on_pool_threads() {
        let ex = ShardExecutor::new(4);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        // Two tasks that must overlap in time: each waits for the other.
        let tasks: Vec<_> = (0..2)
            .map(|_| {
                let seen = Arc::clone(&seen);
                let barrier = Arc::clone(&barrier);
                move || {
                    barrier.wait();
                    seen.lock().unwrap().insert(thread::current().id());
                }
            })
            .collect();
        ex.run(tasks);
        assert_eq!(seen.lock().unwrap().len(), 2, "two distinct threads");
    }

    #[test]
    fn width_one_pool_still_completes_wide_batches() {
        let ex = ShardExecutor::new(1);
        let count = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..32)
            .map(|_| {
                let count = Arc::clone(&count);
                move || count.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        ex.run(tasks);
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_batches_from_many_submitters_all_complete() {
        let ex = Arc::new(ShardExecutor::new(2));
        thread::scope(|sc| {
            for submitter in 0..8 {
                let ex = Arc::clone(&ex);
                sc.spawn(move || {
                    for round in 0..10 {
                        let base = submitter * 1000 + round;
                        let out = ex.run((0..4).map(|i| move || base + i).collect());
                        assert_eq!(out, (0..4).map(|i| base + i).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn panicking_task_propagates_to_the_submitter() {
        let ex = ShardExecutor::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ex.run(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                Box::new(|| panic!("shard exploded")),
            ]);
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool survives a panicking task.
        assert_eq!(ex.run(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn global_executor_is_shared_and_core_sized() {
        let a = ShardExecutor::global();
        let b = ShardExecutor::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }
}
