//! The shared, monotone pruning threshold `θlb`.
//!
//! Partitioned search (paper §VI) runs Koios per partition in parallel with
//! a *global* `θlb`: every partition publishes its local k-th best lower
//! bound, and every filter reads the maximum published so far. Soundness
//! only needs monotonicity — a published value certifies that k sets with at
//! least that semantic overlap exist somewhere, so pruning any set whose
//! upper bound falls strictly below it can never lose a top-k member.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relative slack applied to every pruning threshold.
///
/// Lower bounds are floating-point sums of the same edge weights the
/// Hungarian algorithm adds in a different order, so `θlb` can exceed the
/// true `θk` by a few ulps. Pruning against `slack(θ)` instead of `θ`
/// absorbs that noise; the 1e-9 relative margin is orders of magnitude
/// above accumulation error and orders of magnitude below any meaningful
/// score difference.
pub fn slack(theta: f64) -> f64 {
    theta - 1e-9 * theta.max(1.0)
}

/// A lock-free, monotonically increasing `f64` threshold.
///
/// Non-negative IEEE-754 doubles compare like their bit patterns, so a
/// `fetch_max` on the raw bits implements a monotone max register.
#[derive(Debug, Default)]
pub struct SharedTheta {
    bits: AtomicU64,
}

impl SharedTheta {
    /// A fresh threshold at 0.
    pub fn new() -> Self {
        SharedTheta {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The current threshold.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Raises the threshold to `value` if it is larger; returns the new
    /// maximum.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `value` is negative or NaN — thresholds are scores.
    #[inline]
    pub fn raise(&self, value: f64) -> f64 {
        debug_assert!(value >= 0.0 && !value.is_nan());
        let prev = self.bits.fetch_max(value.to_bits(), Ordering::AcqRel);
        f64::from_bits(prev).max(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SharedTheta::new().get(), 0.0);
    }

    #[test]
    fn raise_is_monotone() {
        let t = SharedTheta::new();
        assert_eq!(t.raise(1.5), 1.5);
        assert_eq!(t.get(), 1.5);
        assert_eq!(t.raise(0.7), 1.5); // lower value ignored
        assert_eq!(t.get(), 1.5);
        assert_eq!(t.raise(2.25), 2.25);
        assert_eq!(t.get(), 2.25);
    }

    #[test]
    fn concurrent_raises_keep_max() {
        let t = Arc::new(SharedTheta::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..1000u64 {
                    t.raise((i * 1000 + j) as f64 / 100.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.get(), 7999.0 / 100.0);
    }
}
