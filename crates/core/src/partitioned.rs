//! Partitioned (scale-out) search (paper §VI end, Fig. 7a).
//!
//! The repository is sharded pseudo-randomly into `p` partitions; each
//! partition runs a full Koios top-k search in its own thread, and all
//! partitions share the global monotone `θlb` ([`SharedTheta`]) — a lower
//! bound proven by any partition prunes candidates in every other. The
//! final result merges the `k·p` partial results; hits certified by the
//! No-EM filter (interval scores) are verified exactly at merge time so the
//! global ranking is well-defined.

use crate::config::KoiosConfig;
use crate::engine::{effective_deadline, Koios, OwnedKoios};
use crate::executor::ShardExecutor;
use crate::overlap::{semantic_overlap, semantic_overlap_bounded_with_effort};
use crate::result::{Hit, ScoreBound, SearchResult};
use crate::stats::{SearchStats, ShardFunnel};
use crate::theta::SharedTheta;
use koios_common::{profile, SetId, TokenId};
use koios_embed::repository::{RepoRef, Repository};
use koios_embed::sim::ElementSimilarity;
use koios_index::inverted::InvertedIndex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A Koios engine fanned out over `p` repository partitions.
///
/// Like [`Koios`], it is constructed from either a borrowed `&Repository`
/// or an owned `Arc<Repository>` (yielding a `'static` engine for serving
/// layers).
#[derive(Clone)]
pub struct PartitionedKoios<'r> {
    repo: RepoRef<'r>,
    sim: Arc<dyn ElementSimilarity>,
    cfg: KoiosConfig,
    indexes: Vec<Arc<InvertedIndex>>,
    seed: u64,
    engines: ShardEngines<'r>,
}

/// Pre-built per-shard engines, constructed **once** at partition build /
/// snapshot-load / reconfiguration time and reused read-mostly by every
/// request (they carry the partition's config with the relative
/// `time_budget` cleared — shards receive the query's absolute deadline
/// instead, so the budget is never double-applied per shard).
///
/// The variant records how shard searches run: an `Arc`-owned repository
/// yields `'static` engines that queries dispatch onto the process-wide
/// [`ShardExecutor`] (no per-request thread spawn); a lifetime-bound borrow
/// cannot cross into persistent threads, so the classic single-query
/// embedding keeps per-query scoped threads.
#[derive(Clone)]
enum ShardEngines<'r> {
    /// `'static` engines on the shared executor (the serving path).
    Owned(Vec<Arc<OwnedKoios>>),
    /// Lifetime-bound engines searched on per-query scoped threads.
    Borrowed(Vec<Koios<'r>>),
}

impl<'r> ShardEngines<'r> {
    fn build(
        repo: &RepoRef<'r>,
        sim: &Arc<dyn ElementSimilarity>,
        cfg: &KoiosConfig,
        indexes: &[Arc<InvertedIndex>],
    ) -> Self {
        let mut shard_cfg = cfg.clone();
        shard_cfg.time_budget = None;
        match repo {
            RepoRef::Owned(arc) => ShardEngines::Owned(
                indexes
                    .iter()
                    .map(|index| {
                        Arc::new(Koios::with_index(
                            RepoRef::Owned(Arc::clone(arc)),
                            Arc::clone(sim),
                            Arc::clone(index),
                            shard_cfg.clone(),
                        ))
                    })
                    .collect(),
            ),
            RepoRef::Borrowed(_) => ShardEngines::Borrowed(
                indexes
                    .iter()
                    .map(|index| {
                        Koios::with_index(
                            repo.clone(),
                            Arc::clone(sim),
                            Arc::clone(index),
                            shard_cfg.clone(),
                        )
                    })
                    .collect(),
            ),
        }
    }
}

/// A partitioned engine that owns its repository.
pub type OwnedPartitionedKoios = PartitionedKoios<'static>;

/// Deterministic pseudo-random partition of a set id. Delegates to the
/// workspace's single shard-assignment function so live-ingest routing
/// (`crate::MutableEngine`) and snapshot delta replay (`koios-store`)
/// structurally agree with build-time sharding.
fn partition_of(seed: u64, set: SetId, partitions: usize) -> usize {
    koios_common::fingerprint::partition_of(seed, set, partitions)
}

impl<'r> PartitionedKoios<'r> {
    /// Shards `repo` into `partitions` pieces (seeded, deterministic) and
    /// builds one inverted index per shard.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn new(
        repo: impl Into<RepoRef<'r>>,
        sim: Arc<dyn ElementSimilarity>,
        cfg: KoiosConfig,
        partitions: usize,
        seed: u64,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let repo = repo.into();
        let mut shards: Vec<Vec<SetId>> = vec![Vec::new(); partitions];
        for (id, _) in repo.iter_sets() {
            shards[partition_of(seed, id, partitions)].push(id);
        }
        let indexes: Vec<Arc<InvertedIndex>> = shards
            .into_iter()
            .map(|sets| Arc::new(InvertedIndex::build_subset(repo.get(), sets)))
            .collect();
        let engines = ShardEngines::build(&repo, &sim, &cfg, &indexes);
        PartitionedKoios {
            repo,
            sim,
            cfg,
            indexes,
            seed,
            engines,
        }
    }

    /// Wires up a partitioned engine over **pre-built** shard indexes — the
    /// snapshot warm-start path (`koios-store` restores each shard's
    /// inverted index bit-exactly, so no set assignment or index build runs
    /// here). `seed` records the shard-assignment seed the indexes were
    /// originally built with (observability only; the shard contents come
    /// from the indexes themselves).
    ///
    /// # Panics
    ///
    /// Panics if `indexes` is empty.
    pub fn from_indexes(
        repo: impl Into<RepoRef<'r>>,
        sim: Arc<dyn ElementSimilarity>,
        cfg: KoiosConfig,
        indexes: Vec<Arc<InvertedIndex>>,
        seed: u64,
    ) -> Self {
        assert!(!indexes.is_empty(), "need at least one partition index");
        let repo = repo.into();
        let engines = ShardEngines::build(&repo, &sim, &cfg, &indexes);
        PartitionedKoios {
            repo,
            sim,
            cfg,
            indexes,
            seed,
            engines,
        }
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        self.repo.get()
    }

    /// Shared ownership of the repository (see [`RepoRef::to_arc`]).
    pub fn repository_arc(&self) -> std::sync::Arc<Repository> {
        self.repo.to_arc()
    }

    /// The engine configuration (shared by every shard search).
    pub fn config(&self) -> &KoiosConfig {
        &self.cfg
    }

    /// The similarity function.
    pub fn similarity(&self) -> &Arc<dyn ElementSimilarity> {
        &self.sim
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.indexes.len()
    }

    /// The per-shard inverted indexes, in shard order (what a snapshot
    /// serializes).
    pub fn indexes(&self) -> &[Arc<InvertedIndex>] {
        &self.indexes
    }

    /// The deterministic shard-assignment seed this engine was built with.
    pub fn partition_seed(&self) -> u64 {
        self.seed
    }

    /// A sibling over the same repository, similarity and shard indexes but
    /// a different configuration (no index rebuild — per-request `k`/`α`
    /// overrides in serving layers are this cheap, mirroring
    /// [`Koios::with_config`]; the shard engines are rebuilt from the
    /// shared indexes, which is a handful of `Arc` bumps per shard).
    pub fn with_config(&self, cfg: KoiosConfig) -> Self {
        let engines = ShardEngines::build(&self.repo, &self.sim, &cfg, &self.indexes);
        PartitionedKoios {
            repo: self.repo.clone(),
            sim: Arc::clone(&self.sim),
            cfg,
            indexes: self.indexes.clone(),
            seed: self.seed,
            engines,
        }
    }

    /// The exact semantic overlap of `query` with one set (verification
    /// without any filtering; mirrors [`Koios::exact_overlap`]).
    pub fn exact_overlap(&self, query: &[TokenId], set: SetId) -> f64 {
        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();
        semantic_overlap(self.repo.get(), self.sim.as_ref(), self.cfg.alpha, &q, set)
    }

    /// Runs the query on all partitions in parallel and merges the results.
    ///
    /// The configuration's relative [`KoiosConfig::time_budget`] (when set)
    /// starts counting here and bounds shards *and* merge; see
    /// [`Self::search_with_deadline`] for the absolute-deadline variant
    /// serving layers use.
    pub fn search(&self, query: &[TokenId]) -> SearchResult {
        self.search_with_deadline(query, None)
    }

    /// Runs the query on all partitions in parallel, bounded by an
    /// *absolute* deadline, and merges the results deadline-safely.
    ///
    /// The deadline (combined with the configuration's relative
    /// `time_budget` — the earlier limit wins) is threaded through every
    /// shard search **and** the merge phase, so a request whose budget
    /// expires mid-merge stops doing exact-verification work immediately
    /// instead of burning unbounded time after timing out. Hits left
    /// unverified by an expiry keep their certified interval scores
    /// ([`ScoreBound::Range`]) and the result honestly reports
    /// `stats.timed_out = true`; complete runs return exact scores only.
    pub fn search_with_deadline(
        &self,
        query: &[TokenId],
        deadline: Option<Instant>,
    ) -> SearchResult {
        let deadline = effective_deadline(deadline, self.cfg.time_budget);
        // The pre-built shard engines already carry this partition's config
        // with the relative budget cleared; shards get the absolute
        // deadline directly, so it is not double-applied from each shard's
        // start time.
        let executor_start = Instant::now();
        let partials: Vec<(SearchResult, Duration)> = match &self.engines {
            // Owned repository: `'static` shard tasks on the process-wide
            // executor — no per-request thread spawn, and total search
            // threads stay bounded by core count across all in-flight
            // requests. Per-shard wall time is measured inside the task
            // (the straggler breakdown `ServiceStats`/`/metrics` surface
            // per partition).
            ShardEngines::Owned(engines) => {
                let theta = Arc::new(SharedTheta::new());
                let query: Arc<[TokenId]> = Arc::from(query);
                let tasks: Vec<_> = engines
                    .iter()
                    .enumerate()
                    .map(|(shard, engine)| {
                        let engine = Arc::clone(engine);
                        let theta = Arc::clone(&theta);
                        let query = Arc::clone(&query);
                        move || {
                            let _stage = profile::enter_shard(profile::Stage::Shard, shard);
                            let shard_start = Instant::now();
                            let result = engine.search_shared_deadline(&query, &theta, deadline);
                            (result, shard_start.elapsed())
                        }
                    })
                    .collect();
                ShardExecutor::global().run(tasks)
            }
            // Borrowed repository: the engines cannot outlive the borrow,
            // so the classic single-query embedding keeps scoped threads.
            ShardEngines::Borrowed(engines) => {
                let theta = SharedTheta::new();
                std::thread::scope(|sc| {
                    let handles: Vec<_> = engines
                        .iter()
                        .enumerate()
                        .map(|(shard, engine)| {
                            let theta = &theta;
                            sc.spawn(move || {
                                let _stage = profile::enter_shard(profile::Stage::Shard, shard);
                                let shard_start = Instant::now();
                                let result = engine.search_shared_deadline(query, theta, deadline);
                                (result, shard_start.elapsed())
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("partition search panicked"))
                        .collect()
                })
            }
        };
        // Submission → last partial back: shard queue wait + shard search
        // (the `executor` span of a request trace).
        let executor_time = executor_start.elapsed();

        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();

        let mut stats = SearchStats::default();
        let mut pool: Vec<Hit> = Vec::new();
        let mut shard_times = Vec::with_capacity(partials.len());
        // EXPLAIN mode: summarize each shard's funnel as a sub-funnel row
        // before the parallel merge folds the per-shard totals together.
        let mut shard_rows: Vec<ShardFunnel> = Vec::new();
        for (shard, (partial, shard_time)) in partials.into_iter().enumerate() {
            if let Some(f) = partial.stats.funnel.as_deref() {
                shard_rows.push(ShardFunnel::from_counts(shard, f));
            }
            stats.merge_parallel(&partial.stats);
            shard_times.push(shard_time);
            pool.extend(partial.hits);
        }
        if let Some(f) = stats.funnel_mut() {
            f.shards = shard_rows;
        }
        // Assigned (not merged): each entry is one shard of *this* search.
        stats.shard_times = shard_times;
        stats.executor_time = executor_time;
        let merge_start = Instant::now();
        let merge_stage = profile::enter(profile::Stage::Merge);
        let hits = self.merge_partials(&q, pool, deadline, &mut stats);
        drop(merge_stage);
        stats.merge_time = merge_start.elapsed();
        let returned = hits.len();
        if let Some(f) = stats.funnel_mut() {
            f.returned = returned;
        }
        SearchResult { hits, stats }
    }

    /// Merges the `≤ k·p` partial hits into the global top-k.
    ///
    /// Partitions are disjoint, so every set appears at most once; the only
    /// merge-time work is resolving interval-scored hits (certified by the
    /// No-EM filter inside their shard) into exact scores so the global
    /// ranking is well-defined. Hits are verified lazily in descending
    /// upper-bound order, and verification stops early once the k-th best
    /// exact score dominates every remaining upper bound — at that point no
    /// unverified hit can enter the top-k. Before each verification the
    /// deadline is checked; on expiry the remaining hits keep their
    /// interval scores and `timed_out` is set.
    fn merge_partials(
        &self,
        q: &[TokenId],
        mut pool: Vec<Hit>,
        deadline: Option<Instant>,
        stats: &mut SearchStats,
    ) -> Vec<Hit> {
        // Descending UB, ties by set id — both the verification schedule
        // and the final report order. A hit's exact score can only be at or
        // below its UB, so once k exact scores strictly beat `pool[i].ub()`
        // the suffix from `i` is out.
        fn rank(a: &Hit, b: &Hit) -> std::cmp::Ordering {
            b.score
                .ub()
                .partial_cmp(&a.score.ub())
                .expect("scores are never NaN")
                .then_with(|| a.set.cmp(&b.set))
        }
        pool.sort_by(rank);

        let k = self.cfg.k;
        // The k best exact scores so far, ascending (element 0 is the bar
        // an unverified hit must clear).
        let mut best: Vec<f64> = Vec::with_capacity(k + 1);
        let mut resolved: Vec<Hit> = Vec::new();
        let mut merged: Vec<Hit> = Vec::new();
        for (i, hit) in pool.iter().enumerate() {
            if best.len() == k && best[0] > hit.score.ub() {
                // Top-k certain: every remaining UB sits strictly under the
                // k-th best exact score. Exact UB ties are still verified —
                // a tied hit with a smaller set id must win the final
                // tie-break exactly as it would in an exhaustive merge.
                break;
            }
            let exact = match hit.score {
                ScoreBound::Exact(s) => s,
                ScoreBound::Range { .. } => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Budget exhausted: no further exact matchings.
                        // Surface the suffix as certified intervals.
                        stats.timed_out = true;
                        merged.extend_from_slice(&pool[i..]);
                        break;
                    }
                    stats.em_full += 1; // merge-time verification
                    let verify_start = Instant::now();
                    let (outcome, effort) = semantic_overlap_bounded_with_effort(
                        self.repo.get(),
                        self.sim.as_ref(),
                        self.cfg.alpha,
                        q,
                        hit.set,
                        None,
                    );
                    stats.verify_time += verify_start.elapsed();
                    if let Some(f) = stats.funnel_mut() {
                        f.em_verified += 1;
                        f.merge_verifications += 1;
                        f.matrix_cells += effort.matrix_cells;
                        f.support_cells += effort.support_cells;
                    }
                    outcome.score()
                }
            };
            resolved.push(Hit {
                set: hit.set,
                score: ScoreBound::Exact(exact),
            });
            let at = best.partition_point(|&b| b < exact);
            best.insert(at, exact);
            if best.len() > k {
                best.remove(0);
            }
        }
        merged.append(&mut resolved);
        merged.sort_by(rank);
        merged.truncate(k);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        for i in 0..40 {
            // Sets with progressively less overlap with {t0, t1, t2, t3}.
            let keep = 4 - (i % 4);
            let mut elems: Vec<String> = (0..keep).map(|j| format!("t{j}")).collect();
            for j in keep..4 {
                elems.push(format!("filler{i}-{j}"));
            }
            b.add_set(&format!("s{i}"), elems);
        }
        b.build()
    }

    #[test]
    fn partition_assignment_is_deterministic_and_total() {
        let r = repo();
        let p1 = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            4,
            7,
        );
        let p2 = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            4,
            7,
        );
        assert_eq!(p1.num_partitions(), 4);
        let total: usize = p1.indexes.iter().map(|i| i.total_postings()).sum();
        let total2: usize = p2.indexes.iter().map(|i| i.total_postings()).sum();
        assert_eq!(total, total2);
        assert_eq!(total, 40 * 4);
    }

    #[test]
    fn partitioned_matches_single_engine_scores() {
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let single = Koios::new(&r, Arc::new(EqualitySimilarity), KoiosConfig::new(5, 0.9));
        let sres = single.search(&q);
        for parts in [1, 2, 3, 8] {
            let part = PartitionedKoios::new(
                &r,
                Arc::new(EqualitySimilarity),
                KoiosConfig::new(5, 0.9),
                parts,
                42,
            );
            let pres = part.search(&q);
            assert_eq!(pres.hits.len(), sres.hits.len());
            // Scores (not necessarily ids — ties) must agree.
            let s_scores: Vec<f64> = sres.hits.iter().map(|h| h.score.ub()).collect();
            let p_scores: Vec<f64> = pres.hits.iter().map(|h| h.score.exact().unwrap()).collect();
            for (a, b) in s_scores.iter().zip(&p_scores) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "parts={parts}: {s_scores:?} vs {p_scores:?}"
                );
            }
        }
    }

    #[test]
    fn zero_budget_performs_no_merge_verification() {
        // Regression: merge-time exact verification used to run unbounded
        // `semantic_overlap` calls with no deadline, so an expired request
        // kept burning time after timing out.
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(4, 0.9).with_time_budget(std::time::Duration::ZERO),
            3,
            1,
        );
        let res = part.search(&q);
        assert!(res.stats.timed_out, "expired budget must be reported");
        assert_eq!(res.stats.em_full, 0, "no exact matchings after expiry");
    }

    fn range(set: u32, lb: f64, ub: f64) -> Hit {
        Hit {
            set: SetId(set),
            score: ScoreBound::Range { lb, ub },
        }
    }

    #[test]
    fn merge_stops_verifying_once_top_k_is_certain() {
        let r = repo();
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
            2,
            1,
        );
        let q = r.intern_query(["t0", "t1"]);
        let pool = vec![
            Hit {
                set: SetId(0),
                score: ScoreBound::Exact(2.0),
            },
            Hit {
                set: SetId(1),
                score: ScoreBound::Exact(1.9),
            },
            // Both UBs sit under the 2nd-best exact score: unreachable.
            range(2, 0.5, 1.5),
            range(3, 0.5, 1.2),
        ];
        let mut stats = SearchStats::default();
        let hits = part.merge_partials(&q, pool, None, &mut stats);
        assert_eq!(stats.em_full, 0, "unreachable hits must not be verified");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.score.exact().is_some()));
        assert!(!stats.timed_out);
    }

    #[test]
    fn merge_verifies_ub_ties_for_deterministic_tie_break() {
        // Regression for the early-termination bound: a Range hit whose UB
        // exactly ties the k-th best exact score must still be verified —
        // if its exact score ties too, the smaller set id wins the final
        // tie-break, exactly as in an exhaustive merge. Sets 1 and 9 both
        // have exact overlap 3 with the query; set 9 hides behind a loose
        // UB of 5 and resolves first.
        let r = repo();
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(1, 0.9),
            2,
            1,
        );
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let pool = vec![range(9, 1.0, 5.0), range(1, 1.0, 3.0)];
        let mut stats = SearchStats::default();
        let hits = part.merge_partials(&q, pool, None, &mut stats);
        assert_eq!(stats.em_full, 2, "the tied-UB hit must be verified");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].set, SetId(1), "smaller id wins the exact tie");
        assert_eq!(hits[0].score.exact(), Some(3.0));
    }

    #[test]
    fn merge_with_expired_deadline_keeps_ranges_and_flags_timeout() {
        let r = repo();
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
            2,
            1,
        );
        let q = r.intern_query(["t0", "t1"]);
        // Range hits whose UBs beat every exact score: the merge *wants* to
        // verify them, but the deadline has already passed.
        let pool = vec![
            range(2, 1.0, 4.0),
            range(3, 1.0, 3.5),
            Hit {
                set: SetId(0),
                score: ScoreBound::Exact(2.0),
            },
        ];
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let mut stats = SearchStats::default();
        let hits = part.merge_partials(&q, pool, Some(expired), &mut stats);
        assert!(stats.timed_out, "expiry mid-merge must be reported");
        assert_eq!(stats.em_full, 0, "no verification may run after expiry");
        // Partial answer: unverified hits survive with their intervals.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.score.exact().is_none()));
    }

    #[test]
    fn search_reports_per_shard_and_merge_times() {
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            3,
            1,
        );
        let res = part.search(&q);
        assert_eq!(res.stats.shard_times.len(), 3, "one timing per shard");
        assert!(res.stats.shard_times.iter().all(|&t| t > Duration::ZERO));
        // Each shard's wall time bounds the parallel-max phase timings.
        let slowest = *res.stats.shard_times.iter().max().unwrap();
        assert!(res.stats.refine_time <= slowest);
        // The merge ran (its wall clock was measured, however small).
        assert!(res.stats.merge_time > Duration::ZERO);
    }

    #[test]
    fn owned_engine_runs_on_the_executor_and_matches_borrowed() {
        // An `Arc`-owned repository routes shard searches through the
        // process-wide `ShardExecutor` (no per-request thread spawn); the
        // borrowed embedding keeps scoped threads. Results must agree
        // exactly, including per-shard timings being populated.
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let borrowed = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(5, 0.9),
            3,
            42,
        );
        assert!(matches!(borrowed.engines, ShardEngines::Borrowed(_)));
        let expect = borrowed.search(&q);

        let owned: OwnedPartitionedKoios = PartitionedKoios::new(
            Arc::new(r.clone()),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(5, 0.9),
            3,
            42,
        );
        assert!(matches!(owned.engines, ShardEngines::Owned(_)));
        let got = owned.search(&q);
        assert_eq!(got.hits, expect.hits);
        assert_eq!(got.stats.shard_times.len(), 3);
        assert!(got.stats.shard_times.iter().all(|&t| t > Duration::ZERO));

        // Config siblings share the pre-built shard engines' indexes and
        // stay on the executor path.
        let narrowed = owned.with_config(KoiosConfig::new(1, 0.9));
        assert!(matches!(narrowed.engines, ShardEngines::Owned(_)));
        assert_eq!(narrowed.search(&q).hits.len(), 1);
    }

    #[test]
    fn merged_hits_are_exact_and_sorted() {
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(6, 0.9),
            3,
            1,
        );
        let res = part.search(&q);
        assert!(res.hits.iter().all(|h| h.score.exact().is_some()));
        for w in res.hits.windows(2) {
            assert!(w[0].score.ub() >= w[1].score.ub());
        }
    }
}
