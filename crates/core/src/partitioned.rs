//! Partitioned (scale-out) search (paper §VI end, Fig. 7a).
//!
//! The repository is sharded pseudo-randomly into `p` partitions; each
//! partition runs a full Koios top-k search in its own thread, and all
//! partitions share the global monotone `θlb` ([`SharedTheta`]) — a lower
//! bound proven by any partition prunes candidates in every other. The
//! final result merges the `k·p` partial results; hits certified by the
//! No-EM filter (interval scores) are verified exactly at merge time so the
//! global ranking is well-defined.

use crate::config::KoiosConfig;
use crate::engine::Koios;
use crate::overlap::semantic_overlap;
use crate::result::{Hit, ScoreBound, SearchResult};
use crate::stats::SearchStats;
use crate::theta::SharedTheta;
use koios_common::{SetId, TokenId};
use koios_embed::repository::{RepoRef, Repository};
use koios_embed::sim::ElementSimilarity;
use koios_index::inverted::InvertedIndex;
use std::sync::Arc;

/// A Koios engine fanned out over `p` repository partitions.
///
/// Like [`Koios`], it is constructed from either a borrowed `&Repository`
/// or an owned `Arc<Repository>` (yielding a `'static` engine for serving
/// layers).
#[derive(Clone)]
pub struct PartitionedKoios<'r> {
    repo: RepoRef<'r>,
    sim: Arc<dyn ElementSimilarity>,
    cfg: KoiosConfig,
    indexes: Vec<Arc<InvertedIndex>>,
}

/// A partitioned engine that owns its repository.
pub type OwnedPartitionedKoios = PartitionedKoios<'static>;

/// Deterministic pseudo-random partition of a set id (splitmix64 finalizer;
/// "randomly partition the repository" without dragging in an RNG state).
fn partition_of(seed: u64, set: SetId, partitions: usize) -> usize {
    let z =
        koios_common::fingerprint::mix64(seed ^ (set.0 as u64).wrapping_mul(0x9E3779B97F4A7C15));
    (z % partitions as u64) as usize
}

impl<'r> PartitionedKoios<'r> {
    /// Shards `repo` into `partitions` pieces (seeded, deterministic) and
    /// builds one inverted index per shard.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn new(
        repo: impl Into<RepoRef<'r>>,
        sim: Arc<dyn ElementSimilarity>,
        cfg: KoiosConfig,
        partitions: usize,
        seed: u64,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let repo = repo.into();
        let mut shards: Vec<Vec<SetId>> = vec![Vec::new(); partitions];
        for (id, _) in repo.iter_sets() {
            shards[partition_of(seed, id, partitions)].push(id);
        }
        let indexes = shards
            .into_iter()
            .map(|sets| Arc::new(InvertedIndex::build_subset(repo.get(), sets)))
            .collect();
        PartitionedKoios {
            repo,
            sim,
            cfg,
            indexes,
        }
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        self.repo.get()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.indexes.len()
    }

    /// Runs the query on all partitions in parallel and merges the results.
    pub fn search(&self, query: &[TokenId]) -> SearchResult {
        let theta = SharedTheta::new();
        let partials: Vec<SearchResult> = std::thread::scope(|sc| {
            let handles: Vec<_> = self
                .indexes
                .iter()
                .map(|index| {
                    let engine = Koios::with_index(
                        self.repo.clone(),
                        Arc::clone(&self.sim),
                        Arc::clone(index),
                        self.cfg.clone(),
                    );
                    let theta = &theta;
                    sc.spawn(move || engine.search_shared(query, theta))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition search panicked"))
                .collect()
        });

        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();

        // Merge-sort the k·p partial hits by exact score (verify interval
        // hits on demand — at most k·p cheap matchings).
        let mut stats = SearchStats::default();
        let mut merged: Vec<Hit> = Vec::new();
        for partial in partials {
            stats.merge_parallel(&partial.stats);
            for hit in partial.hits {
                let exact = match hit.score {
                    ScoreBound::Exact(s) => s,
                    ScoreBound::Range { .. } => {
                        stats.em_full += 1; // merge-time verification
                        semantic_overlap(
                            self.repo.get(),
                            self.sim.as_ref(),
                            self.cfg.alpha,
                            &q,
                            hit.set,
                        )
                    }
                };
                merged.push(Hit {
                    set: hit.set,
                    score: ScoreBound::Exact(exact),
                });
            }
        }
        merged.sort_by(|a, b| {
            b.score
                .ub()
                .partial_cmp(&a.score.ub())
                .expect("scores are never NaN")
                .then_with(|| a.set.cmp(&b.set))
        });
        merged.truncate(self.cfg.k);
        SearchResult {
            hits: merged,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        for i in 0..40 {
            // Sets with progressively less overlap with {t0, t1, t2, t3}.
            let keep = 4 - (i % 4);
            let mut elems: Vec<String> = (0..keep).map(|j| format!("t{j}")).collect();
            for j in keep..4 {
                elems.push(format!("filler{i}-{j}"));
            }
            b.add_set(&format!("s{i}"), elems);
        }
        b.build()
    }

    #[test]
    fn partition_assignment_is_deterministic_and_total() {
        let r = repo();
        let p1 = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            4,
            7,
        );
        let p2 = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            4,
            7,
        );
        assert_eq!(p1.num_partitions(), 4);
        let total: usize = p1.indexes.iter().map(|i| i.total_postings()).sum();
        let total2: usize = p2.indexes.iter().map(|i| i.total_postings()).sum();
        assert_eq!(total, total2);
        assert_eq!(total, 40 * 4);
    }

    #[test]
    fn partitioned_matches_single_engine_scores() {
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let single = Koios::new(&r, Arc::new(EqualitySimilarity), KoiosConfig::new(5, 0.9));
        let sres = single.search(&q);
        for parts in [1, 2, 3, 8] {
            let part = PartitionedKoios::new(
                &r,
                Arc::new(EqualitySimilarity),
                KoiosConfig::new(5, 0.9),
                parts,
                42,
            );
            let pres = part.search(&q);
            assert_eq!(pres.hits.len(), sres.hits.len());
            // Scores (not necessarily ids — ties) must agree.
            let s_scores: Vec<f64> = sres.hits.iter().map(|h| h.score.ub()).collect();
            let p_scores: Vec<f64> = pres.hits.iter().map(|h| h.score.exact().unwrap()).collect();
            for (a, b) in s_scores.iter().zip(&p_scores) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "parts={parts}: {s_scores:?} vs {p_scores:?}"
                );
            }
        }
    }

    #[test]
    fn merged_hits_are_exact_and_sorted() {
        let r = repo();
        let q = r.intern_query(["t0", "t1", "t2", "t3"]);
        let part = PartitionedKoios::new(
            &r,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(6, 0.9),
            3,
            1,
        );
        let res = part.search(&q);
        assert!(res.hits.iter().all(|h| h.score.exact().is_some()));
        for w in res.hits.windows(2) {
            assert!(w[0].score.ub() >= w[1].score.ub());
        }
    }
}
