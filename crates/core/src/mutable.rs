//! A mutable engine: live corpus mutation with immutable serving backends.
//!
//! The query path ([`Koios`] / [`PartitionedKoios`]) is deliberately
//! immutable — an engine borrows frozen state and can therefore be searched
//! from many threads without locks. [`MutableEngine`] is the *writer side*
//! of that bargain: it owns the canonical corpus state behind [`Arc`]s,
//! applies [`CorpusOp`] batches through the shared
//! [`koios_index::live::apply_op`] primitive, and mints a fresh, frozen
//! [`EngineBackend`] on demand ([`MutableEngine::backend`]). Readers keep
//! whatever backend they already hold; a writer that wants the mutation
//! visible swaps the new backend in (read-copy-update — `koios-service`
//! does exactly this).
//!
//! # Determinism
//!
//! Mutation is **replay-deterministic**: applying the same op sequence to
//! the same starting state — here, through a snapshot delta
//! (`koios_store::append_delta`), or via a cold rebuild — produces
//! bit-identical repositories, vectors and postings, so a mutated engine
//! returns byte-identical hits to a freshly built one. The `Arc`s use
//! copy-on-write ([`Arc::make_mut`]): state only clones while a reader
//! still holds it, so a writer with exclusive state mutates in place.
//!
//! # Batch atomicity
//!
//! [`MutableEngine::apply`] validates the *whole* batch against a shadow of
//! the post-batch state before touching anything; a rejected batch
//! ([`BatchRejected`]) leaves the engine byte-identical to before the call.
//!
//! # Epochs and caches
//!
//! Every applied (non-empty) batch bumps the engine's `epoch`; backends are
//! minted with that epoch stamped into their [`KoiosConfig`], which surfaces
//! in [`SearchStats::epoch`](crate::stats::SearchStats) so results are
//! attributable to a corpus version. If the config carries a shared
//! `TokenKnnCache`, its generation is bumped too — cached token-kNN lists
//! are invalidated exactly when the corpus changes, never sooner.

use crate::backend::EngineBackend;
use crate::config::KoiosConfig;
use crate::engine::Koios;
use crate::partitioned::PartitionedKoios;
use koios_common::fingerprint::partition_of;
use koios_common::SetId;
use koios_embed::ops::CorpusOp;
use koios_embed::repository::Repository;
use koios_embed::sim::{CosineSimilarity, ElementSimilarity};
use koios_embed::vectors::Embeddings;
use koios_index::inverted::InvertedIndex;
use koios_index::live::{apply_op, Applied, LiveError};
use koios_store::snapshot::{SectionKind, SnapshotLayout, SnapshotMeta, SnapshotState, StoreError};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

/// Builds the similarity a freshly minted backend searches under, from the
/// current repository and token vectors. Re-invoked after every mutation
/// (the embedding `Arc` may have been copy-on-write cloned); it must be
/// deterministic in *whether* it succeeds — [`MutableEngine`] validates it
/// once at construction and treats later failures as bugs.
pub type SimFactory = Arc<
    dyn Fn(
            &Arc<Repository>,
            Option<&Arc<Embeddings>>,
        ) -> Result<Arc<dyn ElementSimilarity>, StoreError>
        + Send
        + Sync,
>;

/// The standard [`SimFactory`]: cosine similarity over the engine's token
/// vectors. Fails with [`StoreError::MissingSection`] when the engine (or a
/// snapshot being restored) carries no embeddings.
pub fn cosine_factory() -> SimFactory {
    Arc::new(|_, emb| match emb {
        Some(e) => Ok(Arc::new(CosineSimilarity::new(Arc::clone(e))) as Arc<dyn ElementSimilarity>),
        None => Err(StoreError::MissingSection(SectionKind::Embeddings)),
    })
}

/// A batch refused by [`MutableEngine::apply`]. Nothing was mutated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRejected {
    /// Index of the offending op within the submitted batch.
    pub index: usize,
    /// Why that op cannot apply against the post-batch state.
    pub error: LiveError,
}

impl std::fmt::Display for BatchRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch rejected at op {}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchRejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[derive(Debug, Clone, Copy)]
enum Layout {
    Single,
    Partitioned { partitions: usize, seed: u64 },
}

/// Owner of live corpus state; mints immutable [`EngineBackend`]s.
///
/// See the [module docs](self) for the mutation contract. Constructed over
/// in-memory state ([`MutableEngine::single`] /
/// [`MutableEngine::partitioned`]) or from a snapshot
/// ([`MutableEngine::from_snapshot`] / [`MutableEngine::from_state`]).
pub struct MutableEngine {
    repo: Arc<Repository>,
    embeddings: Option<Arc<Embeddings>>,
    indexes: Vec<Arc<InvertedIndex>>,
    layout: Layout,
    cfg: KoiosConfig,
    sim_factory: SimFactory,
    epoch: u64,
}

impl MutableEngine {
    /// Wraps a repository (plus optional token vectors) as a mutable
    /// single-index engine, building the inverted index here. Fails only if
    /// `sim_factory` rejects the state (e.g. [`cosine_factory`] without
    /// embeddings).
    pub fn single(
        repo: Arc<Repository>,
        embeddings: Option<Arc<Embeddings>>,
        cfg: KoiosConfig,
        sim_factory: SimFactory,
    ) -> Result<Self, StoreError> {
        let index = Arc::new(InvertedIndex::build(&repo));
        Self::assemble(
            repo,
            embeddings,
            vec![index],
            Layout::Single,
            cfg,
            sim_factory,
            0,
        )
    }

    /// Like [`MutableEngine::single`], but sharded: `partitions` inverted
    /// indexes with sets routed by the workspace shard function
    /// (`koios_common::fingerprint::partition_of`) under `seed`.
    pub fn partitioned(
        repo: Arc<Repository>,
        embeddings: Option<Arc<Embeddings>>,
        cfg: KoiosConfig,
        partitions: usize,
        seed: u64,
        sim_factory: SimFactory,
    ) -> Result<Self, StoreError> {
        assert!(partitions > 0, "need at least one partition");
        let indexes = (0..partitions)
            .map(|shard| {
                Arc::new(InvertedIndex::build_subset(
                    &repo,
                    repo.live_sets()
                        .map(|(id, _)| id)
                        .filter(|&id| partition_of(seed, id, partitions) == shard),
                ))
            })
            .collect();
        let layout = Layout::Partitioned { partitions, seed };
        Self::assemble(repo, embeddings, indexes, layout, cfg, sim_factory, 0)
    }

    /// Restores a mutable engine from a snapshot under cosine similarity
    /// (the mutable analogue of [`EngineBackend::from_snapshot`]). Delta
    /// sections are replayed by the store layer; the engine starts at the
    /// chain's latest epoch.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        cfg: KoiosConfig,
    ) -> Result<(Self, SnapshotMeta), StoreError> {
        let state = koios_store::snapshot::read_snapshot(path.as_ref())?;
        let meta = state.meta.clone();
        let engine = Self::from_state(state, cfg, cosine_factory())?;
        Ok((engine, meta))
    }

    /// Wires a mutable engine from already-restored snapshot state with a
    /// caller-chosen similarity factory. The restored layout decides the
    /// backend variant; the engine's epoch starts at
    /// [`SnapshotMeta::latest_epoch`] so epochs keep rising across a
    /// snapshot round-trip. Any restored MinHash index is dropped — it
    /// belongs to the query-planning layer, not the engine.
    pub fn from_state(
        state: SnapshotState,
        cfg: KoiosConfig,
        sim_factory: SimFactory,
    ) -> Result<Self, StoreError> {
        let SnapshotState {
            meta,
            repository,
            embeddings,
            indexes,
            ..
        } = state;
        let layout = match meta.layout {
            SnapshotLayout::Single => Layout::Single,
            SnapshotLayout::Partitioned { partitions, seed } => Layout::Partitioned {
                partitions: partitions as usize,
                seed,
            },
        };
        Self::assemble(
            Arc::new(repository),
            embeddings.map(Arc::new),
            indexes.into_iter().map(Arc::new).collect(),
            layout,
            cfg,
            sim_factory,
            meta.latest_epoch(),
        )
    }

    fn assemble(
        repo: Arc<Repository>,
        embeddings: Option<Arc<Embeddings>>,
        indexes: Vec<Arc<InvertedIndex>>,
        layout: Layout,
        cfg: KoiosConfig,
        sim_factory: SimFactory,
        epoch: u64,
    ) -> Result<Self, StoreError> {
        // Validate the factory once, up front: `backend()` relies on it
        // succeeding for the lifetime of the engine (embedding presence
        // never changes after construction).
        sim_factory(&repo, embeddings.as_ref())?;
        Ok(MutableEngine {
            repo,
            embeddings,
            indexes,
            layout,
            cfg,
            sim_factory,
            epoch,
        })
    }

    /// The corpus version: 0 at construction (or the snapshot chain's
    /// latest epoch), +1 per applied non-empty batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Raises the epoch to at least `epoch` (never lowers it). Serving
    /// layers use this when swapping in a reloaded engine so the new
    /// engine's epoch is strictly greater than the replaced one's — cached
    /// results keyed by the old epoch can then never be confused with
    /// fresh ones.
    pub fn advance_epoch_to(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// The similarity factory minted backends are built with (shared so a
    /// serving layer can reload a snapshot under the same similarity).
    pub fn sim_factory(&self) -> SimFactory {
        Arc::clone(&self.sim_factory)
    }

    /// Replaces the shared token-kNN cache carried by minted backends
    /// (`None` strips it). Serving layers install their own cache here so
    /// every future backend — across mutations — shares one cache, which
    /// [`MutableEngine::apply`] then invalidates by generation bump.
    pub fn set_token_cache(&mut self, cache: Option<Arc<koios_index::knn_cache::TokenKnnCache>>) {
        self.cfg.token_cache = cache;
    }

    /// The canonical repository (current corpus state).
    pub fn repository(&self) -> &Arc<Repository> {
        &self.repo
    }

    /// The token vectors, when the engine carries any.
    pub fn embeddings(&self) -> Option<&Arc<Embeddings>> {
        self.embeddings.as_ref()
    }

    /// The base search configuration backends are minted from.
    pub fn config(&self) -> &KoiosConfig {
        &self.cfg
    }

    /// Number of index shards (1 for the single layout).
    pub fn num_partitions(&self) -> usize {
        self.indexes.len()
    }

    /// Applies a batch of corpus ops atomically: either every op applies
    /// (in order) and the epoch advances by one, or the batch is rejected
    /// ([`BatchRejected`]) and the engine is untouched. An empty batch is a
    /// no-op and does **not** bump the epoch.
    ///
    /// On success the shared token-kNN cache generation (if the config
    /// carries one) is bumped, invalidating stale cached neighbour lists;
    /// call [`MutableEngine::backend`] to mint a backend that serves the
    /// new state.
    pub fn apply(&mut self, ops: &[CorpusOp]) -> Result<Vec<Applied>, BatchRejected> {
        self.validate(ops)?;
        let repo = Arc::make_mut(&mut self.repo);
        let mut emb = self.embeddings.as_mut().map(Arc::make_mut);
        let mut index_refs: Vec<&mut InvertedIndex> =
            self.indexes.iter_mut().map(Arc::make_mut).collect();
        let route: Box<dyn Fn(SetId) -> usize> = match self.layout {
            Layout::Single => Box::new(|_| 0),
            Layout::Partitioned { partitions, seed } => {
                Box::new(move |id| partition_of(seed, id, partitions))
            }
        };
        let mut applied = Vec::with_capacity(ops.len());
        for op in ops {
            let done = apply_op(repo, emb.as_deref_mut(), &mut index_refs, None, &route, op)
                .expect("batch passed pre-validation");
            applied.push(done);
        }
        if !applied.is_empty() {
            self.epoch += 1;
            if let Some(cache) = &self.cfg.token_cache {
                cache.bump_generation();
            }
        }
        Ok(applied)
    }

    /// Checks the whole batch against a shadow of the post-batch state so
    /// a failure cannot leave a half-applied batch behind.
    fn validate(&self, ops: &[CorpusOp]) -> Result<(), BatchRejected> {
        let mut next_id = self.repo.num_sets() as u32;
        let mut removed: HashSet<SetId> = HashSet::new();
        for (index, op) in ops.iter().enumerate() {
            match op {
                CorpusOp::Insert { vectors, .. } => {
                    if let Some(emb) = &self.embeddings {
                        for (token, row) in vectors {
                            if row.len() != emb.dim() {
                                return Err(BatchRejected {
                                    index,
                                    error: LiveError::DimMismatch {
                                        token: token.clone(),
                                        got: row.len(),
                                        expected: emb.dim(),
                                    },
                                });
                            }
                        }
                    }
                    next_id += 1;
                }
                CorpusOp::Remove { set } => {
                    let live_in_base =
                        set.0 < self.repo.num_sets() as u32 && self.repo.is_live(*set);
                    let live_in_batch = set.0 >= self.repo.num_sets() as u32 && set.0 < next_id;
                    if (!live_in_base && !live_in_batch) || removed.contains(set) {
                        return Err(BatchRejected {
                            index,
                            error: LiveError::UnknownSet(*set),
                        });
                    }
                    removed.insert(*set);
                }
            }
        }
        Ok(())
    }

    /// Mints an immutable, query-ready backend over the current state. The
    /// backend shares the engine's `Arc`s (zero-copy) and carries the
    /// current epoch in its config; it stays valid — frozen at this version
    /// — however many batches are applied afterwards.
    pub fn backend(&self) -> EngineBackend {
        let sim = (self.sim_factory)(&self.repo, self.embeddings.as_ref())
            .expect("similarity factory succeeded at construction");
        let cfg = self.cfg.clone().with_epoch(self.epoch);
        match self.layout {
            Layout::Single => EngineBackend::Single(Koios::with_index(
                Arc::clone(&self.repo),
                sim,
                Arc::clone(&self.indexes[0]),
                cfg,
            )),
            Layout::Partitioned { seed, .. } => {
                EngineBackend::Partitioned(PartitionedKoios::from_indexes(
                    Arc::clone(&self.repo),
                    sim,
                    cfg,
                    self.indexes.clone(),
                    seed,
                ))
            }
        }
    }

    /// Writes the current state as a fresh snapshot **base** (no delta
    /// sections — epoch provenance restarts at 0, like
    /// `koios_store::compact`). Token vectors are included when the engine
    /// carries them. For incremental persistence, append the op batches to
    /// an existing snapshot with `koios_store::append_delta` instead.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<SnapshotMeta, StoreError> {
        self.backend()
            .write_snapshot(path, self.embeddings.as_deref())
    }
}

impl std::fmt::Debug for MutableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableEngine")
            .field("epoch", &self.epoch)
            .field("num_sets", &self.repo.num_sets())
            .field("live_sets", &self.repo.num_live_sets())
            .field("partitions", &self.indexes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::synthetic::SyntheticEmbeddings;
    use koios_index::knn_cache::TokenKnnCache;

    fn corpus() -> (Arc<Repository>, Arc<Embeddings>) {
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["LA", "Blain", "Appleton", "MtPleasant"]);
        b.add_set("c2", ["LA", "Sacramento", "Blain", "SC"]);
        b.add_set("c3", ["Zebra", "Yak", "Gnu", "Appleton"]);
        b.add_set("c4", ["LA", "SC", "Yak"]);
        let repo = Arc::new(b.build());
        let emb = SyntheticEmbeddings::builder()
            .dimensions(16)
            .seed(9)
            .build(&repo);
        (repo, Arc::new(emb))
    }

    fn ops() -> Vec<CorpusOp> {
        vec![
            CorpusOp::Insert {
                name: "c5".into(),
                tokens: vec!["Fresno".into(), "LA".into(), "Yak".into()],
                vectors: vec![("Fresno".into(), vec![0.25; 16])],
            },
            CorpusOp::remove(SetId(1)),
            CorpusOp::insert("c6", ["Fresno", "SC"]),
        ]
    }

    /// Rebuilds the same end state cold: replay every op into a plain
    /// repository + embeddings, then index from scratch.
    fn rebuilt(engine_kind: &str) -> MutableEngine {
        let (repo, emb) = corpus();
        let mut r = (*repo).clone();
        let mut e = (*emb).clone();
        let mut scratch = InvertedIndex::build(&r);
        for op in ops() {
            apply_op(&mut r, Some(&mut e), &mut [&mut scratch], None, &|_| 0, &op).unwrap();
        }
        let (repo, emb) = (Arc::new(r), Arc::new(e));
        match engine_kind {
            "single" => {
                MutableEngine::single(repo, Some(emb), KoiosConfig::new(3, 0.4), cosine_factory())
                    .unwrap()
            }
            _ => MutableEngine::partitioned(
                repo,
                Some(emb),
                KoiosConfig::new(3, 0.4),
                3,
                41,
                cosine_factory(),
            )
            .unwrap(),
        }
    }

    #[test]
    fn mutation_equals_cold_rebuild_single() {
        let (repo, emb) = corpus();
        let mut live =
            MutableEngine::single(repo, Some(emb), KoiosConfig::new(3, 0.4), cosine_factory())
                .unwrap();
        let applied = live.apply(&ops()).unwrap();
        assert_eq!(applied.len(), 3);
        assert!(matches!(applied[0], Applied::Inserted(SetId(4))));
        let cold = rebuilt("single");
        let q = live.repository().intern_query(["LA", "Fresno", "SC"]);
        assert_eq!(
            live.backend().search(&q).hits,
            cold.backend().search(&q).hits
        );
        assert_eq!(
            live.repository().tombstones().collect::<Vec<_>>(),
            vec![SetId(1)]
        );
    }

    #[test]
    fn mutation_equals_cold_rebuild_partitioned() {
        let (repo, emb) = corpus();
        let mut live = MutableEngine::partitioned(
            repo,
            Some(emb),
            KoiosConfig::new(3, 0.4),
            3,
            41,
            cosine_factory(),
        )
        .unwrap();
        live.apply(&ops()).unwrap();
        let cold = rebuilt("partitioned");
        // Shard indexes must match posting-for-posting, not just by hits.
        let (live_b, cold_b) = (live.backend(), cold.backend());
        let (lp, cp) = (
            live_b.as_partitioned().unwrap(),
            cold_b.as_partitioned().unwrap(),
        );
        for (li, ci) in lp.indexes().iter().zip(cp.indexes().iter()) {
            assert_eq!(li.total_postings(), ci.total_postings());
            for t in 0..li.num_tokens() as u32 {
                assert_eq!(
                    li.postings(koios_common::TokenId(t)),
                    ci.postings(koios_common::TokenId(t))
                );
            }
        }
        let q = live.repository().intern_query(["LA", "Fresno", "SC"]);
        assert_eq!(live_b.search(&q).hits, cold_b.search(&q).hits);
    }

    #[test]
    fn rejected_batches_mutate_nothing() {
        let (repo, emb) = corpus();
        let mut live = MutableEngine::single(
            Arc::clone(&repo),
            Some(Arc::clone(&emb)),
            KoiosConfig::new(3, 0.4),
            cosine_factory(),
        )
        .unwrap();
        // Good insert followed by a bad remove: nothing must apply.
        let bad = vec![
            CorpusOp::insert("good", ["LA"]),
            CorpusOp::remove(SetId(99)),
        ];
        let err = live.apply(&bad).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, LiveError::UnknownSet(SetId(99))));
        assert!(err.to_string().contains("op 1"));
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.repository().num_sets(), 4);
        assert!(Arc::ptr_eq(live.repository(), &repo));

        // Dimension mismatch is caught before any mutation too.
        let bad = vec![CorpusOp::Insert {
            name: "badrow".into(),
            tokens: vec!["Nope".into()],
            vectors: vec![("Nope".into(), vec![1.0; 7])],
        }];
        let err = live.apply(&bad).unwrap_err();
        assert!(matches!(
            err.error,
            LiveError::DimMismatch {
                got: 7,
                expected: 16,
                ..
            }
        ));

        // Double-remove within one batch is a batch error.
        let bad = vec![CorpusOp::remove(SetId(0)), CorpusOp::remove(SetId(0))];
        let err = live.apply(&bad).unwrap_err();
        assert_eq!(err.index, 1);

        // Removing a set inserted earlier in the same batch is fine.
        let ok = vec![
            CorpusOp::insert("ephemeral", ["LA"]),
            CorpusOp::remove(SetId(4)),
        ];
        assert_eq!(live.apply(&ok).unwrap().len(), 2);
        assert!(!live.repository().is_live(SetId(4)));
    }

    #[test]
    fn epochs_and_cache_generations_advance_together() {
        let (repo, emb) = corpus();
        let cache = Arc::new(TokenKnnCache::new(1 << 16));
        let cfg = KoiosConfig::new(3, 0.4).with_token_cache(Arc::clone(&cache));
        let mut live = MutableEngine::single(repo, Some(emb), cfg, cosine_factory()).unwrap();
        assert_eq!(live.epoch(), 0);
        let gen0 = cache.generation();

        let stale = live.backend();
        assert_eq!(stale.config().epoch, 0);

        live.apply(&[CorpusOp::insert("x", ["LA"])]).unwrap();
        assert_eq!(live.epoch(), 1);
        assert!(cache.generation() > gen0);
        assert_eq!(live.backend().config().epoch, 1);
        // Empty batches are free: no epoch bump, no cache invalidation.
        let gen1 = cache.generation();
        assert!(live.apply(&[]).unwrap().is_empty());
        assert_eq!(live.epoch(), 1);
        assert_eq!(cache.generation(), gen1);

        // The stale backend still serves its frozen state and epoch.
        assert_eq!(stale.config().epoch, 0);
        assert_eq!(stale.repository().num_sets(), 4);
        // Search results carry the epoch of the backend that served them.
        let q = live.repository().intern_query(["LA"]);
        assert_eq!(live.backend().search(&q).stats.epoch, 1);
        assert_eq!(stale.search(&q).stats.epoch, 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_layout() {
        let dir = std::env::temp_dir().join("koios-core-mutable");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ksnap");

        let (repo, emb) = corpus();
        let mut live = MutableEngine::partitioned(
            repo,
            Some(emb),
            KoiosConfig::new(3, 0.4),
            3,
            41,
            cosine_factory(),
        )
        .unwrap();
        live.apply(&ops()).unwrap();
        live.write_snapshot(&path).unwrap();

        let (mut warm, meta) =
            MutableEngine::from_snapshot(&path, KoiosConfig::new(3, 0.4)).unwrap();
        assert_eq!(meta.layout.describe(), "partitioned(3)");
        // A fresh base carries no delta provenance.
        assert_eq!(warm.epoch(), 0);
        assert_eq!(warm.num_partitions(), 3);
        let q = live.repository().intern_query(["LA", "Fresno", "SC"]);
        assert_eq!(
            warm.backend().search(&q).hits,
            live.backend().search(&q).hits
        );
        // And the restored engine keeps mutating deterministically.
        warm.apply(&[CorpusOp::insert("post", ["Fresno", "LA"])])
            .unwrap();
        live.apply(&[CorpusOp::insert("post", ["Fresno", "LA"])])
            .unwrap();
        assert_eq!(
            warm.backend().search(&q).hits,
            live.backend().search(&q).hits
        );
    }

    #[test]
    fn factory_failures_surface_at_construction() {
        let (repo, _) = corpus();
        let err = MutableEngine::single(repo, None, KoiosConfig::new(3, 0.4), cosine_factory())
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::MissingSection(SectionKind::Embeddings)
        ));
    }
}
