//! The Koios search engine: refinement + post-processing glued together.

use crate::config::KoiosConfig;
use crate::overlap::semantic_overlap;
use crate::postprocess::postprocess;
use crate::refine::{refine, RefineOutput};
use crate::result::SearchResult;
use crate::stats::SearchStats;
use crate::theta::SharedTheta;
use koios_common::{profile, HeapSize, SetId, TokenId};
use koios_embed::repository::{RepoRef, Repository};
use koios_embed::sim::ElementSimilarity;
use koios_index::inverted::InvertedIndex;
use koios_index::knn::ExactScanKnn;
use koios_index::knn_cache::CachedKnn;
use koios_index::token_stream::TokenStream;
use std::sync::Arc;
use std::time::Instant;

/// An exact top-k semantic overlap search engine over one repository.
///
/// A search runs the paper's Fig. 2 pipeline, stage by stage:
///
/// 1. **Token stream `Ie`** ([`koios_index::token_stream`]): per-query-
///    element kNN sources — optionally wrapped by the shared token cache,
///    see [`KoiosConfig::token_cache`] — merged into one globally
///    descending `(query element, token, similarity)` stream (§IV).
/// 2. **Refinement filters** ([`crate::refine`]): stream tuples discover
///    candidates through the inverted index `Is` and maintain incremental
///    lower/upper bounds; the UB-filter (Lemma 2) and the bucketised
///    iUB-filter (§V) prune against the running threshold `θlb`.
/// 3. **Post-processing** ([`crate::postprocess`]): survivors are verified
///    in upper-bound order — the No-EM filter (Lemma 7) certifies top-k
///    membership without matching, remaining sets run the Hungarian
///    algorithm with label-sum early termination (Lemma 8).
///
/// The engine is cheap to clone — it shares the repository (borrowed or
/// `Arc`-owned, see [`RepoRef`]), the inverted index and the similarity
/// function — and a single engine serves any number of queries. Construct
/// it from `&Repository` for the classic lifetime-bound embedding, or from
/// `Arc<Repository>` for an owned `Koios<'static>` that long-lived services
/// can move across threads.
#[derive(Clone)]
pub struct Koios<'r> {
    repo: RepoRef<'r>,
    sim: Arc<dyn ElementSimilarity>,
    index: Arc<InvertedIndex>,
    cfg: KoiosConfig,
}

/// An engine that owns (shares ownership of) its repository — what a
/// long-lived serving layer holds.
pub type OwnedKoios = Koios<'static>;

/// Combines an absolute caller deadline with a relative configuration
/// budget: whichever expires first bounds the search.
pub(crate) fn effective_deadline(
    external: Option<Instant>,
    budget: Option<std::time::Duration>,
) -> Option<Instant> {
    let from_budget = budget.map(|b| Instant::now() + b);
    match (external, from_budget) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

impl<'r> Koios<'r> {
    /// Builds the inverted index and wires up an engine over a borrowed
    /// (`&Repository`) or owned (`Arc<Repository>`) repository.
    pub fn new(
        repo: impl Into<RepoRef<'r>>,
        sim: Arc<dyn ElementSimilarity>,
        cfg: KoiosConfig,
    ) -> Self {
        let repo = repo.into();
        let index = Arc::new(InvertedIndex::build(repo.get()));
        Self::with_index(repo, sim, index, cfg)
    }

    /// Wires up an engine over a pre-built (possibly partition-restricted)
    /// inverted index.
    pub fn with_index(
        repo: impl Into<RepoRef<'r>>,
        sim: Arc<dyn ElementSimilarity>,
        index: Arc<InvertedIndex>,
        cfg: KoiosConfig,
    ) -> Self {
        Koios {
            repo: repo.into(),
            sim,
            index,
            cfg,
        }
    }

    /// A sibling engine over the same repository, index and similarity but
    /// a different configuration (no index rebuild — per-request `k`/`α`
    /// overrides in serving layers are this cheap).
    pub fn with_config(&self, cfg: KoiosConfig) -> Self {
        Koios {
            repo: self.repo.clone(),
            sim: Arc::clone(&self.sim),
            index: Arc::clone(&self.index),
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &KoiosConfig {
        &self.cfg
    }

    /// The similarity function.
    pub fn similarity(&self) -> &Arc<dyn ElementSimilarity> {
        &self.sim
    }

    /// The inverted index (shared with partition siblings).
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        self.repo.get()
    }

    /// Shared ownership of the repository (see [`RepoRef::to_arc`]).
    pub fn repository_arc(&self) -> std::sync::Arc<Repository> {
        self.repo.to_arc()
    }

    /// Runs a top-k search for `query` (token ids from
    /// [`Repository::intern_query`]).
    pub fn search(&self, query: &[TokenId]) -> SearchResult {
        self.search_shared(query, &SharedTheta::new())
    }

    /// Runs a top-k search that must finish by `deadline` (an *absolute*
    /// instant, unlike the relative [`KoiosConfig::time_budget`]).
    ///
    /// Serving layers use this to make a request deadline cover queue time
    /// plus search time without mutating the engine configuration. When the
    /// configuration also carries a `time_budget`, the earlier of the two
    /// limits wins. Expiry returns partial results with
    /// `stats.timed_out = true`, exactly like a budget expiry.
    pub fn search_with_deadline(
        &self,
        query: &[TokenId],
        deadline: Option<Instant>,
    ) -> SearchResult {
        self.search_shared_deadline(query, &SharedTheta::new(), deadline)
    }

    /// Runs a search that publishes and consumes the shared pruning
    /// threshold `θlb` — the partitioned-search entry point (§VI).
    ///
    /// The default kNN source is an [`ExactScanKnn`]; when the
    /// configuration carries a [`KoiosConfig::token_cache`], the source is
    /// wrapped in a [`CachedKnn`] so per-element similarity lists are
    /// shared with every other search using the same cache.
    pub fn search_shared(&self, query: &[TokenId], theta: &SharedTheta) -> SearchResult {
        self.search_shared_deadline(query, theta, None)
    }

    /// [`Self::search_shared`] with an additional absolute `deadline`
    /// (see [`Self::search_with_deadline`]): partitioned search threads one
    /// query-wide deadline through every shard this way, so no shard can
    /// overrun the budget the merge phase still has to fit into.
    pub fn search_shared_deadline(
        &self,
        query: &[TokenId],
        theta: &SharedTheta,
        deadline: Option<Instant>,
    ) -> SearchResult {
        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();
        let knn = ExactScanKnn::new(
            Arc::clone(&self.sim),
            q.clone(),
            self.repo.vocab_size(),
            self.cfg.alpha,
        );
        match &self.cfg.token_cache {
            Some(cache) => {
                // Tag entries with this engine's similarity identity so a
                // cache shared across engines over *different* metrics can
                // never replay the wrong lists. Clones, config siblings and
                // partition engines share the same `Arc`, so they keep
                // sharing entries.
                let sim_tag = cache.sim_tag(&self.sim);
                let knn = CachedKnn::new(Arc::clone(cache), q.clone(), self.cfg.alpha, knn)
                    .with_sim_tag(sim_tag);
                self.search_with_source_deadline(q, knn, theta, deadline)
            }
            None => self.search_with_source_deadline(q, knn, theta, deadline),
        }
    }

    /// Runs a search over a caller-provided kNN source (§IV: "any index
    /// that enables efficient threshold-based similarity search is
    /// suitable" — e.g. [`koios_index::minhash::MinHashKnn`]). The source
    /// must stream descending similarities consistent with the engine's
    /// similarity function; results are exact with respect to the source's
    /// recall. `query` must be sorted and deduplicated, and the source must
    /// have been built for exactly this query vector.
    ///
    /// This is also the **cache seam**: the stream is index-agnostic, so a
    /// [`CachedKnn`] decorator wrapping any exact source slots in here
    /// without the refinement or post-processing stages noticing — cached
    /// lists are complete (never truncated mid-stream) and replay in the
    /// exact emission order, preserving exact top-k semantics. When the
    /// source reports cache counters
    /// ([`koios_index::knn::KnnSource::cache_counters`]), they are folded
    /// into [`SearchStats::knn_cache`](crate::stats::SearchStats::knn_cache).
    pub fn search_with_source<K: koios_index::knn::KnnSource>(
        &self,
        q: Vec<TokenId>,
        source: K,
        theta: &SharedTheta,
    ) -> SearchResult {
        self.search_with_source_deadline(q, source, theta, None)
    }

    /// [`Self::search_with_source`] with an additional absolute `deadline`
    /// (see [`Self::search_with_deadline`]); the earlier of the deadline and
    /// the configuration's relative `time_budget` bounds the search.
    pub fn search_with_source_deadline<K: koios_index::knn::KnnSource>(
        &self,
        q: Vec<TokenId>,
        source: K,
        theta: &SharedTheta,
        deadline: Option<Instant>,
    ) -> SearchResult {
        debug_assert!(q.windows(2).all(|w| w[0] < w[1]), "query must be sorted");
        let mut stats = SearchStats {
            epoch: self.cfg.epoch,
            funnel: self.cfg.explain.then(Box::default),
            ..SearchStats::default()
        };
        if q.is_empty() {
            return SearchResult {
                hits: Vec::new(),
                stats,
            };
        }
        let deadline = effective_deadline(deadline, self.cfg.time_budget);

        let t0 = Instant::now();
        let stage = profile::enter(profile::Stage::Refine);
        let mut stream = TokenStream::new(source, q.len());
        let RefineOutput { survivors, mut llb } = refine(
            self.repo.get(),
            &self.index,
            &q,
            &self.cfg,
            theta,
            &mut stream,
            &mut stats,
            deadline,
        );
        drop(stage);
        stats.refine_time = t0.elapsed();
        if let Some(c) = stream.source().cache_counters() {
            stats.knn_cache = c;
        }
        let (knn_hits, knn_misses) = (stats.knn_cache.hits, stats.knn_cache.misses);
        if let Some(f) = stats.funnel_mut() {
            f.knn_cache_hits = knn_hits;
            f.knn_cache_misses = knn_misses;
        }

        let t1 = Instant::now();
        let _stage = profile::enter(profile::Stage::Postprocess);
        let hits = postprocess(
            self.repo.get(),
            &self.sim,
            &q,
            &self.cfg,
            theta,
            &mut llb,
            survivors,
            &mut stats,
            deadline,
        );
        stats.postprocess_time = t1.elapsed();
        stats.memory.add("inverted index", self.index.heap_size());

        let mut result = SearchResult { hits, stats };
        result.sort_hits();
        let returned = result.hits.len();
        if let Some(f) = result.stats.funnel_mut() {
            f.returned = returned;
        }
        result
    }

    /// The exact semantic overlap of `query` with one set (verification
    /// without any filtering; used by oracles and result auditing).
    pub fn exact_overlap(&self, query: &[TokenId], set: SetId) -> f64 {
        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();
        semantic_overlap(self.repo.get(), self.sim.as_ref(), self.cfg.alpha, &q, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UbMode;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::{EqualitySimilarity, QGramJaccard};

    fn vanilla_repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c", "d"]);
        b.add_set("s1", ["a", "b", "c", "x"]);
        b.add_set("s2", ["a", "b", "y", "z"]);
        b.add_set("s3", ["a", "m", "n", "o"]);
        b.add_set("s4", ["w", "v", "u", "t"]);
        b.build()
    }

    #[test]
    fn equality_similarity_matches_vanilla_topk() {
        let repo = vanilla_repo();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.99),
        );
        let q = repo.intern_query(["a", "b", "c", "d"]);
        let res = engine.search(&q);
        assert_eq!(res.set_ids(), vec![SetId(0), SetId(1), SetId(2)]);
        // Candidate accounting: s4 shares no token, never discovered.
        assert_eq!(res.stats.candidates, 4);
    }

    #[test]
    fn search_is_deterministic() {
        let repo = vanilla_repo();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
        );
        let q = repo.intern_query(["a", "b", "c"]);
        let a = engine.search(&q);
        let b = engine.search(&q);
        assert_eq!(a.set_ids(), b.set_ids());
    }

    #[test]
    fn empty_query_returns_empty() {
        let repo = vanilla_repo();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
        );
        let res = engine.search(&[]);
        assert!(res.hits.is_empty());
    }

    #[test]
    fn owned_engine_is_static_and_agrees_with_borrowed() {
        let repo = vanilla_repo();
        let q = repo.intern_query(["a", "b", "c", "d"]);
        let borrowed = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
        );
        let expect = borrowed.search(&q);

        let owned: OwnedKoios = Koios::new(
            Arc::new(repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
        );
        // `'static`: the engine can move into a spawned thread.
        let qc = q.clone();
        let got = std::thread::spawn(move || owned.search(&qc))
            .join()
            .unwrap();
        assert_eq!(got.set_ids(), expect.set_ids());
    }

    #[test]
    fn with_config_shares_index_and_repo() {
        let repo = vanilla_repo();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
        );
        let narrowed = engine.with_config(KoiosConfig::new(1, 0.9));
        assert!(Arc::ptr_eq(engine.index(), narrowed.index()));
        let q = repo.intern_query(["a", "b", "c", "d"]);
        assert_eq!(narrowed.search(&q).hits.len(), 1);
        assert_eq!(engine.search(&q).hits.len(), 3);
    }

    #[test]
    fn qgram_similarity_finds_fuzzy_matches() {
        let mut b = RepositoryBuilder::new();
        b.add_set("clean", ["Blaine", "Charleston"]);
        b.add_set("dirty", ["Blain", "Charlestown"]);
        b.add_set("other", ["Zebra", "Yak"]);
        let repo = b.build();
        let sim = Arc::new(QGramJaccard::new(&repo, 3));
        let engine = Koios::new(&repo, sim, KoiosConfig::new(2, 0.5));
        let q = repo.intern_query(["Blaine", "Charleston"]);
        let res = engine.search(&q);
        assert_eq!(res.hits.len(), 2);
        assert_eq!(res.hits[0].set, SetId(0)); // exact match: SO = 2
        assert_eq!(res.hits[1].set, SetId(1)); // fuzzy: 3/4 + 8/11
        let so = engine.exact_overlap(&q, SetId(1));
        assert!((res.hits[1].score.lb() - so).abs() < 1e-9 || res.hits[1].score.ub() >= so);
    }

    #[test]
    fn both_ub_modes_agree_here() {
        let repo = vanilla_repo();
        let q = repo.intern_query(["a", "b", "c", "d"]);
        let sound = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
        )
        .search(&q);
        let paper = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9).with_ub_mode(UbMode::PaperGreedy),
        )
        .search(&q);
        assert_eq!(sound.set_ids(), paper.set_ids());
    }

    #[test]
    fn baseline_config_verifies_everything() {
        let repo = vanilla_repo();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9).baseline(),
        );
        let q = repo.intern_query(["a", "b", "c", "d"]);
        let res = engine.search(&q);
        assert_eq!(res.set_ids().len(), 2);
        // Baseline: every candidate reaches post-processing and is verified.
        assert_eq!(res.stats.to_postprocess, res.stats.candidates);
        assert_eq!(res.stats.iub_pruned, 0);
        assert_eq!(res.stats.no_em, 0);
        assert_eq!(res.stats.em_full, res.stats.candidates);
    }

    #[test]
    fn token_cache_preserves_results_and_reports_hits() {
        use koios_index::knn_cache::TokenKnnCache;
        let mut b = RepositoryBuilder::new();
        b.add_set("clean", ["Blaine", "Charleston", "Columbia"]);
        b.add_set("dirty", ["Blain", "Charlestown", "Columbias"]);
        b.add_set("other", ["Zebra", "Yak", "Gnu"]);
        let repo = b.build();
        let sim = Arc::new(QGramJaccard::new(&repo, 3));
        let plain = Koios::new(&repo, sim.clone(), KoiosConfig::new(2, 0.4));
        let cache = Arc::new(TokenKnnCache::new(1 << 20));
        let caching = Koios::new(
            &repo,
            sim,
            KoiosConfig::new(2, 0.4).with_token_cache(Arc::clone(&cache)),
        );
        let q = repo.intern_query(["Blaine", "Charleston"]);
        let expect = plain.search(&q);
        assert_eq!(expect.stats.knn_cache, Default::default());

        let cold = caching.search(&q);
        assert_eq!(cold.hits, expect.hits);
        assert_eq!(cold.stats.knn_cache.misses, q.len());

        // Overlapping query: shares "Blaine", adds "Columbia".
        let q2 = repo.intern_query(["Blaine", "Columbia"]);
        let warm = caching.search(&q2);
        assert_eq!(warm.hits, plain.search(&q2).hits);
        assert!(warm.stats.knn_cache.hits >= 1, "shared element should hit");

        // Exact repeat: every element hits.
        let repeat = caching.search(&q);
        assert_eq!(repeat.hits, expect.hits);
        assert_eq!(repeat.stats.knn_cache.hits, q.len());
        assert_eq!(repeat.stats.knn_cache.misses, 0);
        assert!(repeat.stats.knn_cache.bytes_served > 0);
    }

    #[test]
    fn stats_phases_are_populated() {
        let repo = vanilla_repo();
        let engine = Koios::new(
            &repo,
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(1, 0.9),
        );
        let q = repo.intern_query(["a", "b"]);
        let res = engine.search(&q);
        assert!(res.stats.stream_tuples > 0);
        assert!(res.stats.memory.total() > 0);
        assert!(!res.stats.timed_out);
    }
}
