//! Search configuration.

use koios_index::knn_cache::TokenKnnCache;
use std::sync::Arc;
use std::time::Duration;

/// Which incremental upper bound drives the refinement buckets (DESIGN §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UbMode {
    /// The sound row-max relaxation: `Si` is the sum of the first emitted
    /// edge per query element into the candidate (capped at
    /// `min(|Q|,|C|)` rows). Guarantees exact results. **Default.**
    #[default]
    SoundRowMax,
    /// The paper's Lemma 6 verbatim: `Si` is the score of the partial
    /// *greedy matching*. Tighter on some inputs but admits rare false
    /// negatives under matching rearrangement (counterexample in DESIGN §2);
    /// provided for ablation against the published pruning numbers.
    PaperGreedy,
}

/// Tunable parameters of a Koios search.
#[derive(Debug, Clone)]
pub struct KoiosConfig {
    /// Number of results (`k`).
    pub k: usize,
    /// Element-similarity threshold `α` (edges below it weigh 0; Def. 1).
    pub alpha: f64,
    /// Upper-bound rule for the refinement filters.
    pub ub_mode: UbMode,
    /// Enable the EM-Early-Terminated filter (Lemma 8). On by default.
    pub em_early_termination: bool,
    /// Enable the No-EM filter (Lemma 7). On by default. When disabled,
    /// every reported hit carries an exact score (useful for oracles).
    pub no_em_filter: bool,
    /// Enable the iUB bucket filter (§V). On by default; disabling it
    /// degrades refinement to the plain UB-filter (the `Baseline+`→Baseline
    /// spectrum of §VIII-A4).
    pub iub_filter: bool,
    /// Number of exact matchings verified concurrently during
    /// post-processing (1 = sequential; the paper uses a thread pool).
    pub parallel_em: usize,
    /// Run the bucket prune sweep every this many stream tuples (sweeps also
    /// run whenever `θlb` rises). 1 reproduces the paper's per-tuple sweep.
    pub sweep_interval: usize,
    /// Verify **every** unpruned candidate with a full exact matching
    /// instead of pulling by upper bound — the cost model of the paper's
    /// exhaustive Baseline/Baseline+ (§VIII-A4). Off for Koios proper.
    pub verify_all: bool,
    /// Abort the query after this wall-clock budget (the paper times out
    /// queries at 2500 s); partial results are returned with
    /// `stats.timed_out = true`.
    pub time_budget: Option<Duration>,
    /// Shared token-level kNN cache. When set, [`crate::Koios::search`]
    /// wraps its kNN source in a
    /// [`CachedKnn`](koios_index::knn_cache::CachedKnn) so complete
    /// per-element similarity lists are reused across searches that share
    /// query elements (same `(token, α)`). `None` (the default) scans
    /// fresh every time. Cloning a config shares the cache — sibling
    /// engines ([`crate::Koios::with_config`], partition engines) hit the
    /// same entries, which is sound because per-element lists are
    /// query- and partition-independent. Entry lifetime policies travel
    /// with the cache itself: build it with [`TokenKnnCache::with_ttl`] to
    /// have lists expire at probe time (serving layers expose this as
    /// `ServiceConfig::token_cache_ttl`).
    pub token_cache: Option<Arc<TokenKnnCache>>,
    /// Corpus epoch this engine serves. `0` for a freshly built corpus;
    /// the mutable engine (`crate::MutableEngine`) bumps it once per
    /// applied batch so every [`crate::SearchStats`] (and downstream
    /// slow-query log line) records which corpus version answered the
    /// query. Purely observational — the epoch never changes scores.
    pub epoch: u64,
    /// EXPLAIN mode: collect the per-stage [`crate::stats::FunnelCounts`]
    /// alongside the usual [`crate::SearchStats`] counters. Off by
    /// default; results are identical either way — the flag only decides
    /// whether the funnel accumulator is allocated.
    pub explain: bool,
}

impl KoiosConfig {
    /// A configuration with the paper's defaults (`em_early_termination`,
    /// `no_em_filter`, `iub_filter` on; sequential EM; sound UB mode).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha` is not in `(0, 1]`.
    pub fn new(k: usize, alpha: f64) -> Self {
        assert!(k > 0, "k must be at least 1");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        KoiosConfig {
            k,
            alpha,
            ub_mode: UbMode::default(),
            em_early_termination: true,
            no_em_filter: true,
            iub_filter: true,
            parallel_em: 1,
            sweep_interval: 1,
            verify_all: false,
            time_budget: None,
            token_cache: None,
            epoch: 0,
            explain: false,
        }
    }

    /// Turns EXPLAIN-mode funnel accounting on or off (builder style).
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Sets the corpus epoch stamped into every search's stats (builder
    /// style). Serving layers use this to correlate results with the
    /// corpus version that produced them.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the UB mode (builder style).
    pub fn with_ub_mode(mut self, mode: UbMode) -> Self {
        self.ub_mode = mode;
        self
    }

    /// Sets the number of parallel exact matchings.
    pub fn with_parallel_em(mut self, n: usize) -> Self {
        self.parallel_em = n.max(1);
        self
    }

    /// Sets the time budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Shares a token-level kNN cache with this engine (builder style).
    /// Results are unchanged — cached lists are complete and replayed in
    /// the exact emission order — only repeated per-element vocabulary
    /// scans are skipped.
    pub fn with_token_cache(mut self, cache: Arc<TokenKnnCache>) -> Self {
        self.token_cache = Some(cache);
        self
    }

    /// Disables all advanced filters — the exhaustive **Baseline** of
    /// §VIII-A4 (token stream + exact matching of every candidate).
    pub fn baseline(mut self) -> Self {
        self.em_early_termination = false;
        self.no_em_filter = false;
        self.iub_filter = false;
        self.verify_all = true;
        self
    }

    /// Baseline plus the iUB filter — the paper's **Baseline+**.
    pub fn baseline_plus(mut self) -> Self {
        self.em_early_termination = false;
        self.no_em_filter = false;
        self.iub_filter = true;
        self.verify_all = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_filters() {
        let c = KoiosConfig::new(10, 0.8);
        assert_eq!(c.k, 10);
        assert_eq!(c.alpha, 0.8);
        assert!(c.em_early_termination && c.no_em_filter && c.iub_filter);
        assert!(!c.verify_all);
        assert_eq!(c.ub_mode, UbMode::SoundRowMax);
        assert_eq!(c.parallel_em, 1);
    }

    #[test]
    fn baseline_disables_filters() {
        let c = KoiosConfig::new(5, 0.7).baseline();
        assert!(!c.em_early_termination && !c.no_em_filter && !c.iub_filter);
        assert!(c.verify_all);
        let cp = KoiosConfig::new(5, 0.7).baseline_plus();
        assert!(cp.iub_filter && !cp.no_em_filter && cp.verify_all);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let _ = KoiosConfig::new(0, 0.8);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = KoiosConfig::new(1, 0.0);
    }

    #[test]
    fn builder_methods() {
        let c = KoiosConfig::new(1, 0.5)
            .with_ub_mode(UbMode::PaperGreedy)
            .with_parallel_em(0)
            .with_time_budget(Duration::from_secs(1));
        assert_eq!(c.ub_mode, UbMode::PaperGreedy);
        assert_eq!(c.parallel_em, 1); // clamped
        assert!(c.time_budget.is_some());
        assert!(c.token_cache.is_none());
        assert_eq!(c.epoch, 0);
        assert!(!c.explain);
        assert!(c.clone().with_explain(true).explain);
        assert_eq!(c.with_epoch(7).epoch, 7);
    }

    #[test]
    fn token_cache_is_shared_by_clones() {
        let cache = Arc::new(TokenKnnCache::new(1 << 16));
        let c = KoiosConfig::new(1, 0.5).with_token_cache(Arc::clone(&cache));
        let d = c.clone();
        let (a, b) = (c.token_cache.unwrap(), d.token_cache.unwrap());
        assert!(Arc::ptr_eq(&a, &b));
    }
}
