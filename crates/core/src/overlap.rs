//! Direct semantic-overlap computation (Def. 1).
//!
//! These helpers build the α-thresholded similarity matrix between a query
//! and a candidate set and hand it to the Hungarian solver. They are the
//! verification step of Koios, the whole inner loop of the exhaustive
//! baseline, and the oracle for the exactness tests.

use koios_common::{SetId, TokenId};
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;
use koios_matching::{greedy_matching, solve_max_matching, MatchOutcome, WeightMatrix};

/// Builds the bipartite weight matrix of `simα(q_i, c_j)` (query rows,
/// candidate columns).
pub fn similarity_matrix(
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: &[TokenId],
) -> WeightMatrix {
    let mut w = vec![0.0; query.len() * set.len()];
    sim.fill_matrix(query, set, alpha, &mut w);
    WeightMatrix::from_vec(query.len(), set.len(), w)
}

/// The work one verification performed — EXPLAIN-mode bookkeeping for the
/// funnel's verify stage. Returned by value so the parallel verification
/// threads of [`crate::postprocess`] can fold efforts after joining
/// instead of sharing a mutable accumulator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchingEffort {
    /// Cells of the full `|Q| × |C|` α-thresholded similarity matrix that
    /// were materialised.
    pub matrix_cells: u64,
    /// Cells of the non-zero support the Hungarian solver actually relaxed
    /// (after dropping all-zero rows/columns); 0 when the support was
    /// empty and no solve ran.
    pub support_cells: u64,
}

impl MatchingEffort {
    /// Folds another verification's effort into this one.
    pub fn merge(&mut self, other: MatchingEffort) {
        self.matrix_cells += other.matrix_cells;
        self.support_cells += other.support_cells;
    }
}

/// Drops all-zero rows and columns before solving: elements without a
/// single `≥ α` edge can never contribute to the matching, so the optimum
/// is unchanged while the `O(r²·c)` Hungarian instance shrinks to the
/// non-zero support (typically a small fraction of `|Q| × |C|` — this is
/// the sparsity the α threshold creates). Also reports the support size
/// the solver saw (the funnel's `support_cells`).
fn solve_compacted(m: &WeightMatrix, theta: Option<f64>) -> (MatchOutcome, u64) {
    let rows: Vec<usize> = (0..m.rows())
        .filter(|&i| m.row(i).iter().any(|&w| w > 0.0))
        .collect();
    if rows.is_empty() {
        return (
            MatchOutcome::Exact(koios_matching::Matching {
                score: 0.0,
                pairs: Vec::new(),
            }),
            0,
        );
    }
    let cols: Vec<usize> = (0..m.cols())
        .filter(|&j| rows.iter().any(|&i| m.get(i, j) > 0.0))
        .collect();
    let support = (rows.len() * cols.len()) as u64;
    if rows.len() == m.rows() && cols.len() == m.cols() {
        return (solve_max_matching(m, theta), support);
    }
    let compact = WeightMatrix::from_fn(rows.len(), cols.len(), |i, j| m.get(rows[i], cols[j]));
    let outcome = match solve_max_matching(&compact, theta) {
        MatchOutcome::Exact(mut mm) => {
            for p in mm.pairs.iter_mut() {
                *p = (rows[p.0 as usize] as u32, cols[p.1 as usize] as u32);
            }
            MatchOutcome::Exact(mm)
        }
        e => e,
    };
    (outcome, support)
}

/// The exact semantic overlap `SO(Q, C)`.
pub fn semantic_overlap(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: SetId,
) -> f64 {
    let m = similarity_matrix(sim, alpha, query, repo.set(set));
    solve_compacted(&m, None).0.score()
}

/// Exact semantic overlap with the Lemma-8 early-termination threshold:
/// aborts (returning the certified bound) once `SO(Q, C) < theta` is proven.
pub fn semantic_overlap_bounded(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: SetId,
    theta: Option<f64>,
) -> MatchOutcome {
    semantic_overlap_bounded_with_effort(repo, sim, alpha, query, set, theta).0
}

/// [`semantic_overlap_bounded`] plus the [`MatchingEffort`] the
/// verification performed — the EXPLAIN-mode entry point. The outcome is
/// identical to the plain call; only the bookkeeping differs.
pub fn semantic_overlap_bounded_with_effort(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: SetId,
    theta: Option<f64>,
) -> (MatchOutcome, MatchingEffort) {
    let m = similarity_matrix(sim, alpha, query, repo.set(set));
    let matrix_cells = (m.rows() * m.cols()) as u64;
    let (outcome, support_cells) = solve_compacted(&m, theta);
    (
        outcome,
        MatchingEffort {
            matrix_cells,
            support_cells,
        },
    )
}

/// The greedy matching score (Lemma 3 lower bound; also the non-exact
/// comparator of the paper's Example 2).
pub fn greedy_overlap(
    repo: &Repository,
    sim: &dyn ElementSimilarity,
    alpha: f64,
    query: &[TokenId],
    set: SetId,
) -> f64 {
    let m = similarity_matrix(sim, alpha, query, repo.set(set));
    greedy_matching(&m).score
}

#[cfg(test)]
mod effort_tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;

    #[test]
    fn effort_reports_matrix_and_support_sizes() {
        let mut b = RepositoryBuilder::new();
        let id = b.add_set("c", ["LA", "Blain", "NewYork"]);
        let r = b.build();
        // "Missing" is not in the vocabulary: intern_query drops it.
        let q = r.intern_query(["LA", "Blain", "Missing"]);
        assert_eq!(q.len(), 2);
        let (outcome, effort) =
            semantic_overlap_bounded_with_effort(&r, &EqualitySimilarity, 0.5, &q, id, None);
        assert_eq!(outcome.score(), 2.0);
        assert_eq!(effort.matrix_cells, 6); // full 2×3 materialised
        assert_eq!(effort.support_cells, 4); // 2 live rows × 2 live cols
        let plain = semantic_overlap_bounded(&r, &EqualitySimilarity, 0.5, &q, id, None);
        assert_eq!(plain.score(), outcome.score());

        let mut total = MatchingEffort::default();
        total.merge(effort);
        total.merge(effort);
        assert_eq!(total.matrix_cells, 12);
        assert_eq!(total.support_cells, 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::{EqualitySimilarity, QGramJaccard};

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["LA", "Blain", "Appleton"]);
        b.add_set("c2", ["LA", "Blain", "NewYork"]);
        b.build()
    }

    #[test]
    fn equality_sim_reduces_to_vanilla_overlap() {
        let r = repo();
        let q = r.intern_query(["LA", "Blain", "Missing"]);
        for (id, _) in r.iter_sets() {
            let so = semantic_overlap(&r, &EqualitySimilarity, 0.5, &q, id);
            assert_eq!(so, r.vanilla_overlap(&q, id) as f64);
        }
    }

    #[test]
    fn vanilla_lower_bounds_semantic() {
        // Lemma 1.
        let mut b = RepositoryBuilder::new();
        b.add_set("c", ["Blaine", "Charlestown"]);
        let mut r = b.build();
        let q = r.intern_query_mut(["Blain", "Charlestown"]);
        let j = QGramJaccard::new(&r, 3);
        for (id, _) in r.iter_sets() {
            let so = semantic_overlap(&r, &j, 0.5, &q, id);
            assert!(so >= r.vanilla_overlap(&q, id) as f64 - 1e-12);
        }
    }

    #[test]
    fn symmetry_of_semantic_overlap() {
        // SO(Q, C) computed by swapping roles must agree (Def. 1 symmetry).
        let mut b = RepositoryBuilder::new();
        let c1 = b.add_set("c1", ["Blaine", "Charleston", "Columbia"]);
        let c2 = b.add_set("c2", ["Blain", "Charlestown"]);
        let r = b.build();
        let j = QGramJaccard::new(&r, 3);
        let q1: Vec<TokenId> = r.set(c1).to_vec();
        let q2: Vec<TokenId> = r.set(c2).to_vec();
        let a = semantic_overlap(&r, &j, 0.3, &q1, c2);
        let b2 = semantic_overlap(&r, &j, 0.3, &q2, c1);
        assert!((a - b2).abs() < 1e-12);
    }

    #[test]
    fn greedy_is_a_lower_bound() {
        let mut b = RepositoryBuilder::new();
        let id = b.add_set("c", ["Blaine", "Blainey", "Blains"]);
        let r = b.build();
        let j = QGramJaccard::new(&r, 3);
        let q = r.intern_query(["Blaine", "Blains"]);
        let g = greedy_overlap(&r, &j, 0.2, &q, id);
        let so = semantic_overlap(&r, &j, 0.2, &q, id);
        assert!(g <= so + 1e-12);
        assert!(g >= so / 2.0 - 1e-12);
    }

    #[test]
    fn bounded_overlap_terminates_or_agrees() {
        let r = repo();
        let q = r.intern_query(["LA", "Blain"]);
        let exact = semantic_overlap(&r, &EqualitySimilarity, 0.5, &q, SetId(0));
        match semantic_overlap_bounded(&r, &EqualitySimilarity, 0.5, &q, SetId(0), Some(100.0)) {
            MatchOutcome::EarlyTerminated { upper_bound } => {
                assert!(upper_bound >= exact - 1e-12)
            }
            MatchOutcome::Exact(m) => assert_eq!(m.score, exact),
        }
    }
}
