//! The Koios filter–verification framework (paper §III–§VII).
//!
//! [`Koios`] answers exact top-k semantic-overlap queries in two phases:
//!
//! 1. **Refinement** ([`refine`]): the token stream `Ie` feeds candidate
//!    discovery through the inverted index `Is`; candidates carry cheap
//!    lower bounds (incremental greedy matching, Lemma 5) and upper bounds
//!    (`Si + m·s`, bucketised by remaining capacity `m`, §V) and are pruned
//!    against the running threshold `θlb` — the k-th best lower bound
//!    (Lemma 4).
//! 2. **Post-processing** ([`postprocess`]): survivors are verified in
//!    upper-bound order; the No-EM filter (Lemma 7) certifies top-k
//!    membership without matching, and the Hungarian runs abort early once
//!    their label-sum falls under `θlb` (Lemma 8).
//!
//! [`PartitionedKoios`] scales out by sharding the repository and sharing a
//! global monotone `θlb` across partition searches (§VI).
//!
//! See `DESIGN.md` §2 for the soundness correction applied to the paper's
//! iUB bound ([`UbMode`]).

pub mod audit;
pub mod backend;
pub mod buckets;
pub mod config;
pub mod engine;
pub mod executor;
pub mod many_to_one;
pub mod mutable;
pub mod overlap;
pub mod partitioned;
pub mod persist;
pub mod postprocess;
pub mod refine;
pub mod result;
pub mod stats;
pub mod theta;

pub use audit::{audit_result, AuditOutcome};
pub use backend::EngineBackend;
pub use config::{KoiosConfig, UbMode};
pub use engine::{Koios, OwnedKoios};
pub use executor::ShardExecutor;
pub use many_to_one::{bounded_many_to_one_overlap, many_to_one_overlap};
pub use mutable::{cosine_factory, BatchRejected, MutableEngine, SimFactory};
pub use overlap::{
    greedy_overlap, semantic_overlap, semantic_overlap_bounded,
    semantic_overlap_bounded_with_effort, similarity_matrix, MatchingEffort,
};
pub use partitioned::{OwnedPartitionedKoios, PartitionedKoios};
pub use result::{Hit, ScoreBound, SearchResult};
pub use stats::{FunnelCounts, SearchStats, ShardFunnel};
pub use theta::SharedTheta;
