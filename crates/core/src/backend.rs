//! The engine backend a serving layer routes to.
//!
//! A long-lived service wants to own *an* engine without caring whether it
//! is a single [`Koios`](crate::Koios) over one inverted index or a
//! [`PartitionedKoios`](crate::PartitionedKoios) fanning out over shards
//! under a shared `θlb` (paper §VI, Fig. 7a). [`EngineBackend`] is that
//! seam: both variants expose the same configuration plumbing (cheap
//! `with_config` siblings for per-request `k`/`α` overrides, one
//! [`KoiosConfig::token_cache`] shared by every shard) and the same
//! deadline-aware search entry points, so the layers above are
//! backend-transparent — identical queries produce identical scores and
//! identical cache keys on either variant.

use crate::config::KoiosConfig;
use crate::engine::OwnedKoios;
use crate::partitioned::OwnedPartitionedKoios;
use crate::result::SearchResult;
use koios_common::{SetId, TokenId};
use koios_embed::repository::Repository;
use std::time::Instant;

/// An owned search engine: one index, or `p` shard indexes merged under a
/// shared monotone `θlb`.
///
/// Construct via the `From` impls (`OwnedKoios` / `OwnedPartitionedKoios`)
/// or hold one directly. Everything result-affecting lives in the shared
/// [`KoiosConfig`], so results — and therefore result-cache keys — do not
/// depend on the variant.
#[derive(Clone)]
pub enum EngineBackend {
    /// One engine over one repository-wide inverted index.
    Single(OwnedKoios),
    /// A sharded engine: per-partition indexes searched in parallel with a
    /// deadline-safe merge (see
    /// [`PartitionedKoios::search_with_deadline`](crate::PartitionedKoios::search_with_deadline)).
    Partitioned(OwnedPartitionedKoios),
}

impl EngineBackend {
    /// The engine configuration.
    pub fn config(&self) -> &KoiosConfig {
        match self {
            EngineBackend::Single(e) => e.config(),
            EngineBackend::Partitioned(e) => e.config(),
        }
    }

    /// A sibling backend over the same repository and index(es) with a
    /// different configuration — no index rebuild on either variant, so
    /// per-request overrides stay cheap.
    pub fn with_config(&self, cfg: KoiosConfig) -> Self {
        match self {
            EngineBackend::Single(e) => EngineBackend::Single(e.with_config(cfg)),
            EngineBackend::Partitioned(e) => EngineBackend::Partitioned(e.with_config(cfg)),
        }
    }

    /// The repository behind the engine.
    pub fn repository(&self) -> &Repository {
        match self {
            EngineBackend::Single(e) => e.repository(),
            EngineBackend::Partitioned(e) => e.repository(),
        }
    }

    /// Shared ownership of the repository behind the engine (an `Arc` bump
    /// for owned backends — what serving layers hold across a hot swap).
    pub fn repository_arc(&self) -> std::sync::Arc<Repository> {
        match self {
            EngineBackend::Single(e) => e.repository_arc(),
            EngineBackend::Partitioned(e) => e.repository_arc(),
        }
    }

    /// Number of index partitions (1 for [`EngineBackend::Single`]).
    pub fn num_partitions(&self) -> usize {
        match self {
            EngineBackend::Single(_) => 1,
            EngineBackend::Partitioned(e) => e.num_partitions(),
        }
    }

    /// Runs a top-k search (see [`crate::Koios::search`]).
    pub fn search(&self, query: &[TokenId]) -> SearchResult {
        self.search_with_deadline(query, None)
    }

    /// Runs a top-k search bounded by an absolute deadline; the earlier of
    /// the deadline and the configuration's relative
    /// [`KoiosConfig::time_budget`] wins. On the partitioned variant the
    /// deadline bounds every shard *and* the merge-time verification loop.
    pub fn search_with_deadline(
        &self,
        query: &[TokenId],
        deadline: Option<Instant>,
    ) -> SearchResult {
        match self {
            EngineBackend::Single(e) => e.search_with_deadline(query, deadline),
            EngineBackend::Partitioned(e) => e.search_with_deadline(query, deadline),
        }
    }

    /// Exact overlap oracle passthrough (auditing answers; identical on
    /// both variants — partitioning never changes scores).
    pub fn exact_overlap(&self, query: &[TokenId], set: SetId) -> f64 {
        match self {
            EngineBackend::Single(e) => e.exact_overlap(query, set),
            EngineBackend::Partitioned(e) => e.exact_overlap(query, set),
        }
    }

    /// The single engine, when this backend is [`EngineBackend::Single`].
    pub fn as_single(&self) -> Option<&OwnedKoios> {
        match self {
            EngineBackend::Single(e) => Some(e),
            EngineBackend::Partitioned(_) => None,
        }
    }

    /// The partitioned engine, when this backend is
    /// [`EngineBackend::Partitioned`].
    pub fn as_partitioned(&self) -> Option<&OwnedPartitionedKoios> {
        match self {
            EngineBackend::Single(_) => None,
            EngineBackend::Partitioned(e) => Some(e),
        }
    }
}

impl From<OwnedKoios> for EngineBackend {
    fn from(engine: OwnedKoios) -> Self {
        EngineBackend::Single(engine)
    }
}

impl From<OwnedPartitionedKoios> for EngineBackend {
    fn from(engine: OwnedPartitionedKoios) -> Self {
        EngineBackend::Partitioned(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Koios;
    use crate::partitioned::PartitionedKoios;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;
    use std::sync::Arc;

    fn repo() -> Arc<Repository> {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c", "d"]);
        b.add_set("s1", ["a", "b", "c", "x"]);
        b.add_set("s2", ["a", "b", "y", "z"]);
        b.add_set("s3", ["a", "m", "n", "o"]);
        Arc::new(b.build())
    }

    #[test]
    fn variants_agree_on_scores() {
        let repo = repo();
        let q = repo.intern_query(["a", "b", "c"]);
        let single: EngineBackend = Koios::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
        )
        .into();
        let parted: EngineBackend = PartitionedKoios::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            2,
            7,
        )
        .into();
        assert_eq!(single.num_partitions(), 1);
        assert_eq!(parted.num_partitions(), 2);
        let s = single.search(&q);
        let p = parted.search(&q);
        assert_eq!(s.hits.len(), p.hits.len());
        for (a, b) in s.hits.iter().zip(&p.hits) {
            assert!((a.score.ub() - b.score.ub()).abs() < 1e-9);
        }
        assert!(
            (single.exact_overlap(&q, SetId(0)) - parted.exact_overlap(&q, SetId(0))).abs() < 1e-9
        );
    }

    #[test]
    fn with_config_is_variant_preserving_and_cheap() {
        let repo = repo();
        let q = repo.intern_query(["a", "b", "c"]);
        let parted: EngineBackend = PartitionedKoios::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(3, 0.9),
            2,
            7,
        )
        .into();
        let narrowed = parted.with_config(KoiosConfig::new(1, 0.9));
        assert!(narrowed.as_partitioned().is_some());
        assert!(narrowed.as_single().is_none());
        assert_eq!(narrowed.config().k, 1);
        assert_eq!(narrowed.search(&q).hits.len(), 1);
    }
}
