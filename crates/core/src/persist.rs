//! Engine persistence: snapshot write-out and warm-start restore.
//!
//! `koios-store` owns the binary format (sections, checksums, typed
//! errors); this module threads it through the engine layer so one call
//! saves or restores a query-ready backend:
//!
//! * [`EngineBackend::write_snapshot`] serializes the repository, optional
//!   token vectors and every inverted index (one per shard on the
//!   partitioned variant) under the matching [`SnapshotLayout`].
//! * [`EngineBackend::from_snapshot`] restores whichever layout the
//!   snapshot holds — no rebuild, no re-partitioning: shard indexes come
//!   back bit-exactly, so a warm-started engine returns byte-identical
//!   hits. The default constructor rebuilds a [`CosineSimilarity`] over
//!   the snapshotted vectors; [`EngineBackend::from_snapshot_with`]
//!   accepts any similarity factory (equality, q-gram Jaccard, …).
//! * [`Koios::from_snapshot`] / [`PartitionedKoios::from_snapshot`] are
//!   the layout-checked variants: loading a sharded snapshot into a
//!   single engine (or vice versa) fails with
//!   [`StoreError::LayoutMismatch`] instead of silently degrading.

use crate::backend::EngineBackend;
use crate::config::KoiosConfig;
use crate::engine::{Koios, OwnedKoios};
use crate::partitioned::{OwnedPartitionedKoios, PartitionedKoios};
use koios_embed::repository::Repository;
use koios_embed::sim::{CosineSimilarity, ElementSimilarity};
use koios_embed::vectors::Embeddings;
use koios_store::snapshot::{
    read_snapshot, write_snapshot, SectionKind, SnapshotLayout, SnapshotMeta, SnapshotState,
    SnapshotView, StoreError,
};
use std::path::Path;
use std::sync::Arc;

impl EngineBackend {
    /// Serializes this backend's query-ready state — repository, the
    /// engine's inverted index(es) under the matching layout, and
    /// optionally the token vectors behind an embedding-based similarity —
    /// to `path` (conventionally `*.ksnap`). Pass the embeddings whenever
    /// the engine searches under [`CosineSimilarity`]; without them a
    /// restore must supply its own similarity via
    /// [`EngineBackend::from_snapshot_with`].
    pub fn write_snapshot(
        &self,
        path: impl AsRef<Path>,
        embeddings: Option<&Embeddings>,
    ) -> Result<SnapshotMeta, StoreError> {
        let view = match self {
            EngineBackend::Single(e) => SnapshotView {
                repository: e.repository(),
                embeddings,
                layout: SnapshotLayout::Single,
                indexes: vec![e.index().as_ref()],
                minhash: None,
            },
            EngineBackend::Partitioned(p) => SnapshotView {
                repository: p.repository(),
                embeddings,
                layout: SnapshotLayout::Partitioned {
                    partitions: p.num_partitions() as u32,
                    seed: p.partition_seed(),
                },
                indexes: p.indexes().iter().map(|i| i.as_ref()).collect(),
                minhash: None,
            },
        };
        write_snapshot(path.as_ref(), &view)
    }

    /// Restores a backend from a snapshot, searching under a
    /// [`CosineSimilarity`] rebuilt over the snapshotted token vectors
    /// (bit-identical to the saved ones, so scores are too). Fails with
    /// [`StoreError::MissingSection`] when the snapshot carries no
    /// embeddings — use [`Self::from_snapshot_with`] for engines over
    /// other similarities.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        cfg: KoiosConfig,
    ) -> Result<(EngineBackend, SnapshotMeta), StoreError> {
        let state = read_snapshot(path.as_ref())?;
        Self::from_state(state, cfg, |_, emb| match emb {
            Some(emb) => Ok(Arc::new(CosineSimilarity::new(emb)) as Arc<dyn ElementSimilarity>),
            None => Err(StoreError::MissingSection(SectionKind::Embeddings)),
        })
    }

    /// Restores a backend from a snapshot with a caller-chosen similarity:
    /// `make_sim` receives the restored repository and token vectors (if
    /// any) and returns the `Arc<dyn ElementSimilarity>` the engine will
    /// search under. The similarity must match the one the snapshot was
    /// built for if warm results are to equal cold results.
    pub fn from_snapshot_with<F>(
        path: impl AsRef<Path>,
        cfg: KoiosConfig,
        make_sim: F,
    ) -> Result<(EngineBackend, SnapshotMeta), StoreError>
    where
        F: FnOnce(&Repository, Option<Arc<Embeddings>>) -> Arc<dyn ElementSimilarity>,
    {
        let state = read_snapshot(path.as_ref())?;
        Self::from_state(state, cfg, |repo, emb| Ok(make_sim(repo, emb)))
    }

    /// Wires a backend from already-restored snapshot state (the layout
    /// decides the variant). Exposed so callers that inspected or
    /// transformed a [`SnapshotState`] can finish construction without a
    /// second file read. The similarity factory is fallible so callers can
    /// refuse snapshots missing what their similarity needs (e.g. no
    /// embeddings section) before any engine is built.
    pub fn from_state<F>(
        state: SnapshotState,
        cfg: KoiosConfig,
        make_sim: F,
    ) -> Result<(EngineBackend, SnapshotMeta), StoreError>
    where
        F: FnOnce(
            &Repository,
            Option<Arc<Embeddings>>,
        ) -> Result<Arc<dyn ElementSimilarity>, StoreError>,
    {
        let SnapshotState {
            meta,
            repository,
            embeddings,
            indexes,
            ..
        } = state;
        let repo = Arc::new(repository);
        let emb = embeddings.map(Arc::new);
        let sim = make_sim(&repo, emb)?;
        let backend = match meta.layout {
            SnapshotLayout::Single => {
                let index = indexes
                    .into_iter()
                    .next()
                    .expect("read_snapshot guarantees at least one index");
                EngineBackend::Single(Koios::with_index(
                    Arc::clone(&repo),
                    sim,
                    Arc::new(index),
                    cfg,
                ))
            }
            SnapshotLayout::Partitioned { seed, .. } => {
                EngineBackend::Partitioned(PartitionedKoios::from_indexes(
                    repo,
                    sim,
                    cfg,
                    indexes.into_iter().map(Arc::new).collect(),
                    seed,
                ))
            }
        };
        Ok((backend, meta))
    }
}

impl OwnedKoios {
    /// Restores a **single-index** engine from a snapshot (cosine
    /// similarity over the snapshotted vectors). A snapshot holding a
    /// partitioned layout is refused with [`StoreError::LayoutMismatch`] —
    /// its shard indexes only cover subsets of the repository, so treating
    /// one as a full index would silently drop results.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        cfg: KoiosConfig,
    ) -> Result<(OwnedKoios, SnapshotMeta), StoreError> {
        match EngineBackend::from_snapshot(path, cfg)? {
            (EngineBackend::Single(e), meta) => Ok((e, meta)),
            (EngineBackend::Partitioned(_), meta) => Err(StoreError::LayoutMismatch {
                expected: "single",
                found: meta.layout.describe(),
            }),
        }
    }
}

impl OwnedPartitionedKoios {
    /// Restores a **partitioned** engine from a snapshot (cosine
    /// similarity over the snapshotted vectors). A single-layout snapshot
    /// is refused with [`StoreError::LayoutMismatch`].
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        cfg: KoiosConfig,
    ) -> Result<(OwnedPartitionedKoios, SnapshotMeta), StoreError> {
        match EngineBackend::from_snapshot(path, cfg)? {
            (EngineBackend::Partitioned(p), meta) => Ok((p, meta)),
            (EngineBackend::Single(_), meta) => Err(StoreError::LayoutMismatch {
                expected: "partitioned",
                found: meta.layout.describe(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;
    use koios_embed::synthetic::SyntheticEmbeddings;

    fn repo_and_embeddings() -> (Arc<Repository>, Arc<Embeddings>) {
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["LA", "Blain", "Appleton", "MtPleasant"]);
        b.add_set("c2", ["LA", "Sacramento", "Blain", "SC"]);
        b.add_set("c3", ["Zebra", "Yak", "Gnu", "Appleton"]);
        b.add_set("c4", ["LA", "SC", "Yak"]);
        let repo = Arc::new(b.build());
        let emb = SyntheticEmbeddings::builder()
            .dimensions(16)
            .seed(9)
            .build(&repo);
        (repo, Arc::new(emb))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("koios-core-persist");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn single_backend_roundtrips_byte_identical() {
        let (repo, emb) = repo_and_embeddings();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::clone(&emb)));
        let cold: EngineBackend =
            OwnedKoios::new(Arc::clone(&repo), sim, KoiosConfig::new(3, 0.5)).into();
        let path = tmp("single.ksnap");
        let meta = cold.write_snapshot(&path, Some(&emb)).unwrap();
        assert_eq!(meta.layout, SnapshotLayout::Single);

        let (warm, rmeta) = EngineBackend::from_snapshot(&path, KoiosConfig::new(3, 0.5)).unwrap();
        assert_eq!(rmeta, meta);
        assert_eq!(warm.num_partitions(), 1);
        let q = repo.intern_query(["LA", "Blain", "SC"]);
        assert_eq!(warm.search(&q).hits, cold.search(&q).hits);
    }

    #[test]
    fn partitioned_backend_roundtrips_byte_identical() {
        let (repo, emb) = repo_and_embeddings();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::clone(&emb)));
        let cold: EngineBackend =
            OwnedPartitionedKoios::new(Arc::clone(&repo), sim, KoiosConfig::new(2, 0.5), 3, 41)
                .into();
        let path = tmp("parted.ksnap");
        let meta = cold.write_snapshot(&path, Some(&emb)).unwrap();
        assert_eq!(
            meta.layout,
            SnapshotLayout::Partitioned {
                partitions: 3,
                seed: 41
            }
        );

        let (warm, _) = EngineBackend::from_snapshot(&path, KoiosConfig::new(2, 0.5)).unwrap();
        assert_eq!(warm.num_partitions(), 3);
        assert_eq!(warm.as_partitioned().unwrap().partition_seed(), 41);
        let q = repo.intern_query(["LA", "Blain", "SC"]);
        assert_eq!(warm.search(&q).hits, cold.search(&q).hits);
    }

    #[test]
    fn layout_checked_constructors_refuse_cross_loads() {
        let (repo, emb) = repo_and_embeddings();
        let sim: Arc<dyn ElementSimilarity> = Arc::new(CosineSimilarity::new(Arc::clone(&emb)));
        let parted: EngineBackend = OwnedPartitionedKoios::new(
            Arc::clone(&repo),
            Arc::clone(&sim),
            KoiosConfig::new(2, 0.5),
            2,
            7,
        )
        .into();
        let ppath = tmp("cross-parted.ksnap");
        parted.write_snapshot(&ppath, Some(&emb)).unwrap();
        let err = OwnedKoios::from_snapshot(&ppath, KoiosConfig::new(2, 0.5))
            .err()
            .expect("sharded snapshot must not load into a single engine");
        assert!(
            matches!(
                err,
                StoreError::LayoutMismatch {
                    expected: "single",
                    ..
                }
            ),
            "{err}"
        );

        let single: EngineBackend =
            OwnedKoios::new(Arc::clone(&repo), sim, KoiosConfig::new(2, 0.5)).into();
        let spath = tmp("cross-single.ksnap");
        single.write_snapshot(&spath, Some(&emb)).unwrap();
        let err = OwnedPartitionedKoios::from_snapshot(&spath, KoiosConfig::new(2, 0.5))
            .err()
            .expect("single snapshot must not load into a partitioned engine");
        assert!(
            matches!(
                err,
                StoreError::LayoutMismatch {
                    expected: "partitioned",
                    ..
                }
            ),
            "{err}"
        );
        // The layout-agnostic constructor accepts both.
        assert!(EngineBackend::from_snapshot(&ppath, KoiosConfig::new(2, 0.5)).is_ok());
        assert!(EngineBackend::from_snapshot(&spath, KoiosConfig::new(2, 0.5)).is_ok());
    }

    #[test]
    fn snapshot_without_embeddings_needs_a_similarity_factory() {
        let (repo, _) = repo_and_embeddings();
        let cold: EngineBackend = OwnedKoios::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
        )
        .into();
        let path = tmp("no-emb.ksnap");
        cold.write_snapshot(&path, None).unwrap();

        let err = EngineBackend::from_snapshot(&path, KoiosConfig::new(2, 0.9))
            .err()
            .expect("embedding-less snapshot must not restore a cosine engine");
        assert!(
            matches!(err, StoreError::MissingSection(SectionKind::Embeddings)),
            "{err}"
        );

        let (warm, meta) =
            EngineBackend::from_snapshot_with(&path, KoiosConfig::new(2, 0.9), |_, emb| {
                assert!(emb.is_none());
                Arc::new(EqualitySimilarity)
            })
            .unwrap();
        assert!(!meta.has_embeddings);
        let q = repo.intern_query(["LA", "Blain", "SC"]);
        assert_eq!(warm.search(&q).hits, cold.search(&q).hits);
    }
}
