//! The refinement phase (paper §IV–§V, Algorithm 1).
//!
//! Tuples from the token stream discover candidates through the inverted
//! index and update two per-candidate quantities:
//!
//! * **iLB** (Lemma 5): the score of the partial greedy matching assembled
//!   from the descending edge stream — seeded with the vanilla overlap
//!   because identical tokens arrive first at similarity 1.
//! * **iUB**: `S_i + m_i·s` with `s` the current stream similarity. In
//!   [`UbMode::SoundRowMax`] (default) `S_i` sums the first emitted edge per
//!   query element (sound; DESIGN §2); in [`UbMode::PaperGreedy`] it is the
//!   greedy score, exactly as Lemma 6 states it.
//!
//! Candidates are pruned when their upper bound falls strictly below `θlb`,
//! the k-th best lower bound seen so far (Lemma 4) — at discovery via the
//! UB-filter (Lemma 2) and continuously via the bucket sweep (§V).

use crate::buckets::BucketIndex;
use crate::config::{KoiosConfig, UbMode};
use crate::stats::SearchStats;
use crate::theta::{slack, SharedTheta};
use koios_common::sparse::IdxSet;
use koios_common::topk::TopKList;
use koios_common::{HeapSize, SetId, Sim, TokenId};
use koios_embed::repository::Repository;
use koios_index::inverted::InvertedIndex;
use koios_index::knn::KnnSource;
use koios_index::token_stream::TokenStream;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

/// A candidate that survived refinement, with its final certified bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Survivor {
    /// The candidate set.
    pub set: SetId,
    /// Final lower bound (greedy matching score over the full stream).
    pub lb: f64,
    /// Final upper bound (mode-dependent end-of-stream collapse).
    pub ub: f64,
}

/// Output of the refinement phase.
pub struct RefineOutput {
    /// Unpruned candidates, descending by upper bound (ties by set id).
    pub survivors: Vec<Survivor>,
    /// The running top-k lower-bound list (continues into post-processing).
    pub llb: TopKList,
}

/// Per-candidate bound state.
struct Cand {
    /// `min(|Q|, |C|)` — the maximum matching cardinality.
    cap: u32,
    /// Greedy partial matching score (iLB).
    lb: f64,
    /// Query element indices matched by the greedy matching.
    matched_q: IdxSet,
    /// Candidate tokens matched by the greedy matching.
    matched_t: IdxSet,
    /// Row-max sum (sound iUB base); unused in paper mode.
    row_sum: f64,
    /// Number of query rows counted into `row_sum` (capped at `cap`).
    seen_rows: u32,
    /// Query rows already counted (sound mode only).
    seen_q: IdxSet,
    /// Tombstone flag: pruned candidates are remembered so posting hits
    /// cannot resurrect them (Algorithm 1 line 6).
    pruned: bool,
}

impl Cand {
    fn new(cap: u32) -> Self {
        Cand {
            cap,
            lb: 0.0,
            matched_q: IdxSet::new(),
            matched_t: IdxSet::new(),
            row_sum: 0.0,
            seen_rows: 0,
            seen_q: IdxSet::new(),
            pruned: false,
        }
    }

    fn tombstone(cap: u32) -> Self {
        let mut c = Cand::new(cap);
        c.pruned = true;
        c
    }

    /// Applies a stream tuple `(q_idx, token, s)`; returns whether the lower
    /// bound improved.
    fn apply(&mut self, q_idx: u32, token: TokenId, s: f64, mode: UbMode) -> bool {
        debug_assert!(!self.pruned);
        // Sound iUB: first emitted edge per query row, capped at `cap` rows
        // (the stream is descending, so the first `cap` rows carry the
        // largest row maxima).
        if mode == UbMode::SoundRowMax && self.seen_rows < self.cap && self.seen_q.insert(q_idx) {
            self.row_sum += s;
            self.seen_rows += 1;
        }
        // iLB: greedy matching accepts the edge iff both endpoints are free
        // (Lemma 5 — any prefix of greedy choices is a valid matching).
        if !self.matched_q.contains(q_idx) && !self.matched_t.contains(token.0) {
            self.matched_q.insert(q_idx);
            self.matched_t.insert(token.0);
            self.lb += s;
            true
        } else {
            false
        }
    }

    /// The `(m, S_i)` bucket key for the configured UB mode.
    fn bucket_key(&self, mode: UbMode) -> (u32, f64) {
        match mode {
            UbMode::SoundRowMax => (self.cap - self.seen_rows, self.row_sum),
            UbMode::PaperGreedy => (self.cap - self.matched_q.len() as u32, self.lb),
        }
    }

    /// The end-of-stream upper bound: all unseen edges are below `α`, so
    /// unseen rows contribute 0 in the sound mode; the paper-mode bound
    /// keeps the Lemma-6 form with `s = α`.
    fn final_ub(&self, mode: UbMode, alpha: f64) -> f64 {
        match mode {
            UbMode::SoundRowMax => self.row_sum,
            UbMode::PaperGreedy => {
                self.lb + (self.cap - self.matched_q.len() as u32) as f64 * alpha
            }
        }
    }

    /// Tombstones the candidate, releasing its tracking memory.
    fn prune(&mut self) {
        self.pruned = true;
        self.matched_q = IdxSet::new();
        self.matched_t = IdxSet::new();
        self.seen_q = IdxSet::new();
    }

    fn heap_size(&self) -> usize {
        self.matched_q.heap_size() + self.matched_t.heap_size() + self.seen_q.heap_size()
    }
}

/// Runs the refinement phase over `stream`.
#[allow(clippy::too_many_arguments)]
pub fn refine<K: KnnSource>(
    repo: &Repository,
    index: &InvertedIndex,
    query: &[TokenId],
    cfg: &KoiosConfig,
    theta: &SharedTheta,
    stream: &mut TokenStream<K>,
    stats: &mut SearchStats,
    deadline: Option<Instant>,
) -> RefineOutput {
    let qlen = query.len();
    let mode = cfg.ub_mode;
    let mut states: HashMap<SetId, Cand> = HashMap::new();
    let mut buckets = BucketIndex::new();
    let mut llb = TopKList::new(cfg.k);
    let mut last_swept_theta = theta.get();
    let mut since_sweep = 0usize;
    let mut last_sim = 1.0f64;

    while let Some(tuple) = stream.next() {
        stats.stream_tuples += 1;
        let s = tuple.sim;
        last_sim = s;
        let posting = index.postings(tuple.token);
        if let Some(f) = stats.funnel_mut() {
            f.stream_tuples += 1;
            f.postings_probed += 1;
            f.posting_entries_scanned += posting.len();
            f.posting_lengths.push(posting.len());
        }
        for &set in posting {
            // Tombstoned sets stay in posting lists until the owning index
            // is patched; never surface them as candidates (live corpora).
            if !repo.is_live(set) {
                if let Some(f) = stats.funnel_mut() {
                    f.tombstone_skips += 1;
                }
                continue;
            }
            match states.entry(set) {
                Entry::Occupied(mut e) => {
                    let cand = e.get_mut();
                    if cand.pruned {
                        continue;
                    }
                    let old_key = cand.bucket_key(mode);
                    let lb_improved = cand.apply(tuple.q_idx, tuple.token, s, mode);
                    let new_key = cand.bucket_key(mode);
                    if cfg.iub_filter && new_key != old_key {
                        buckets.reinsert(old_key.0, old_key.1, new_key.0, new_key.1, set);
                        stats.bucket_moves += 1;
                        if let Some(f) = stats.funnel_mut() {
                            f.bucket_moves += 1;
                        }
                    }
                    if lb_improved {
                        let lb = cand.lb;
                        if llb.offer(set, Sim::new(lb)) {
                            if let Some(f) = stats.funnel_mut() {
                                f.theta_raises += 1;
                            }
                            if let Some(b) = llb.bottom() {
                                theta.raise(b.get());
                            }
                        }
                    }
                }
                Entry::Vacant(v) => {
                    stats.candidates += 1;
                    if let Some(f) = stats.funnel_mut() {
                        f.candidates_discovered += 1;
                    }
                    let clen = repo.set_len(set) as u32;
                    let cap = (qlen as u32).min(clen);
                    // UB-filter at discovery (Lemma 2 with the §IV cap):
                    // the first tuple carries the set's maximum similarity.
                    // Gated with the iUB filter so the Baseline config
                    // (§VIII-A4) verifies every candidate unpruned.
                    if cfg.iub_filter && (cap as f64) * s < slack(theta.get()) {
                        stats.ub_filter_pruned += 1;
                        if let Some(f) = stats.funnel_mut() {
                            f.ub_filter_pruned += 1;
                        }
                        v.insert(Cand::tombstone(cap));
                        continue;
                    }
                    let mut cand = Cand::new(cap);
                    cand.apply(tuple.q_idx, tuple.token, s, mode);
                    let key = cand.bucket_key(mode);
                    let lb = cand.lb;
                    v.insert(cand);
                    if cfg.iub_filter {
                        buckets.insert(key.0, key.1, set);
                    }
                    if llb.offer(set, Sim::new(lb)) {
                        if let Some(f) = stats.funnel_mut() {
                            f.theta_raises += 1;
                        }
                        if let Some(b) = llb.bottom() {
                            theta.raise(b.get());
                        }
                    }
                }
            }
        }
        // Prune sweep: whenever θlb rose, and periodically as `s` decays.
        since_sweep += 1;
        if cfg.iub_filter {
            let th = theta.get();
            if th > last_swept_theta || since_sweep >= cfg.sweep_interval {
                let swept = buckets.sweep(s, slack(th), |set| {
                    if let Some(c) = states.get_mut(&set) {
                        c.prune();
                    }
                });
                stats.iub_pruned += swept;
                if let Some(f) = stats.funnel_mut() {
                    f.iub_pruned += swept;
                }
                last_swept_theta = th;
                since_sweep = 0;
            }
        }
        if stats.stream_tuples.is_multiple_of(1024) {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    stats.timed_out = true;
                    break;
                }
            }
        }
    }

    // End-of-stream collapse: every edge ≥ α has been emitted, so the
    // residual per-row potential drops to 0 (sound) / α (paper form).
    if cfg.iub_filter {
        let s_final = match mode {
            UbMode::SoundRowMax => 0.0,
            UbMode::PaperGreedy => cfg.alpha.min(last_sim),
        };
        let swept = buckets.sweep(s_final, slack(theta.get()), |set| {
            if let Some(c) = states.get_mut(&set) {
                c.prune();
            }
        });
        stats.iub_pruned += swept;
        if let Some(f) = stats.funnel_mut() {
            f.iub_pruned += swept;
        }
    }

    // Memory snapshot of the refinement structures (paper §VIII-D sums the
    // footprints of both phases' structures).
    let states_bytes = states.capacity() * (std::mem::size_of::<(SetId, Cand)>() + 1)
        + states.values().map(Cand::heap_size).sum::<usize>();
    stats.memory.add("token stream", stream.heap_bytes());
    stats.memory.add("candidate states", states_bytes);
    stats.memory.add("ub buckets", buckets.heap_size());
    stats.memory.add("top-k lb list", llb.heap_size());

    let mut survivors: Vec<Survivor> = states
        .iter()
        .filter(|(_, c)| !c.pruned)
        .map(|(&set, c)| Survivor {
            set,
            lb: c.lb,
            ub: c.final_ub(mode, cfg.alpha),
        })
        .collect();
    survivors.sort_by(|a, b| {
        b.ub.partial_cmp(&a.ub)
            .expect("bounds are never NaN")
            .then_with(|| a.set.cmp(&b.set))
    });
    stats.to_postprocess = survivors.len();
    if let Some(f) = stats.funnel_mut() {
        f.entered_postprocess = survivors.len();
    }
    RefineOutput { survivors, llb }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cand_greedy_respects_one_to_one() {
        let mut c = Cand::new(2);
        assert!(c.apply(0, TokenId(10), 0.9, UbMode::SoundRowMax));
        // Same query row: rejected by greedy.
        assert!(!c.apply(0, TokenId(11), 0.8, UbMode::SoundRowMax));
        // Same token: rejected by greedy.
        assert!(!c.apply(1, TokenId(10), 0.7, UbMode::SoundRowMax));
        // Fresh pair: accepted.
        assert!(c.apply(1, TokenId(12), 0.6, UbMode::SoundRowMax));
        assert!((c.lb - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sound_rowmax_counts_first_edge_per_row() {
        let mut c = Cand::new(2);
        c.apply(0, TokenId(10), 0.9, UbMode::SoundRowMax);
        c.apply(0, TokenId(11), 0.8, UbMode::SoundRowMax); // row 0 already seen
        c.apply(1, TokenId(10), 0.7, UbMode::SoundRowMax); // row 1 first edge
        assert!((c.row_sum - 1.6).abs() < 1e-12);
        assert_eq!(c.seen_rows, 2);
        // Row capacity exhausted: further rows ignored.
        c.apply(2, TokenId(12), 0.6, UbMode::SoundRowMax);
        assert!((c.row_sum - 1.6).abs() < 1e-12);
        assert_eq!(c.bucket_key(UbMode::SoundRowMax), (0, 1.6));
        assert!((c.final_ub(UbMode::SoundRowMax, 0.5) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn rowmax_dominates_greedy_lb() {
        // DESIGN §2 injection argument: row_sum >= lb at all times.
        // |C| = 3 tokens {10, 11, 12}, |Q| = 4 rows → cap = 3.
        let tuples = [
            (0u32, 10u32, 0.9),
            (1, 10, 0.85),
            (2, 11, 0.8),
            (1, 11, 0.75),
            (3, 12, 0.7),
        ];
        let mut c = Cand::new(3);
        for (q, t, s) in tuples {
            c.apply(q, TokenId(t), s, UbMode::SoundRowMax);
            assert!(
                c.row_sum + 1e-12 >= c.lb,
                "row_sum {} < lb {}",
                c.row_sum,
                c.lb
            );
        }
    }

    #[test]
    fn paper_mode_keys_track_greedy() {
        let mut c = Cand::new(3);
        c.apply(0, TokenId(10), 0.9, UbMode::PaperGreedy);
        assert_eq!(c.bucket_key(UbMode::PaperGreedy), (2, 0.9));
        // Rejected edge leaves the key unchanged.
        c.apply(0, TokenId(11), 0.8, UbMode::PaperGreedy);
        assert_eq!(c.bucket_key(UbMode::PaperGreedy), (2, 0.9));
        let ub = c.final_ub(UbMode::PaperGreedy, 0.8);
        assert!((ub - (0.9 + 2.0 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn tombstone_releases_memory() {
        let mut c = Cand::new(4);
        for i in 0..50 {
            c.apply(i, TokenId(i + 100), 0.9, UbMode::SoundRowMax);
        }
        assert!(c.heap_size() > 0);
        c.prune();
        assert!(c.pruned);
        assert_eq!(c.heap_size(), 0);
    }
}
