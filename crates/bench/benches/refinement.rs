//! Refinement-phase filter ablation: plain UB-filter vs the full bucketised
//! iUB filter (§V), and the cost of per-tuple vs batched prune sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use koios_bench::setup_profile;
use koios_core::{Koios, KoiosConfig};
use koios_datagen::profiles;
use std::hint::black_box;
use std::sync::Arc;

fn bench_filter_ablation(c: &mut Criterion) {
    let run = setup_profile(profiles::opendata(0.05), 3);
    let query = run.benchmark.queries[run.benchmark.queries.len() / 2]
        .tokens
        .clone();
    let mut g = c.benchmark_group("refinement_filters");
    g.sample_size(10);

    let engine_full = Koios::new(
        &run.corpus.repository,
        Arc::clone(&run.sim),
        KoiosConfig::new(10, 0.8),
    );
    g.bench_function("koios_full_filters", |b| {
        b.iter(|| black_box(engine_full.search(&query).hits.len()))
    });

    let mut cfg = KoiosConfig::new(10, 0.8);
    cfg.iub_filter = false;
    let engine_no_iub = Koios::new(&run.corpus.repository, Arc::clone(&run.sim), cfg);
    g.bench_function("koios_without_iub", |b| {
        b.iter(|| black_box(engine_no_iub.search(&query).hits.len()))
    });

    let mut cfg = KoiosConfig::new(10, 0.8);
    cfg.sweep_interval = 64;
    let engine_batched = Koios::new(&run.corpus.repository, Arc::clone(&run.sim), cfg);
    g.bench_function("koios_sweep_every_64", |b| {
        b.iter(|| black_box(engine_batched.search(&query).hits.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_filter_ablation);
criterion_main!(benches);
