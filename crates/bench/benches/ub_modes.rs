//! Ablation bench for DESIGN §2: the sound row-max iUB vs the paper's
//! greedy iUB (identical `S_i + m·s` shape, different `S_i` update rule).

use criterion::{criterion_group, criterion_main, Criterion};
use koios_bench::setup_profile;
use koios_core::{Koios, KoiosConfig, UbMode};
use koios_datagen::profiles;
use std::hint::black_box;
use std::sync::Arc;

fn bench_ub_modes(c: &mut Criterion) {
    let run = setup_profile(profiles::opendata(0.05), 5);
    let query = run.benchmark.queries[run.benchmark.queries.len() / 2]
        .tokens
        .clone();
    let mut g = c.benchmark_group("ub_modes");
    g.sample_size(10);
    for (label, mode) in [
        ("sound_rowmax", UbMode::SoundRowMax),
        ("paper_greedy", UbMode::PaperGreedy),
    ] {
        let engine = Koios::new(
            &run.corpus.repository,
            Arc::clone(&run.sim),
            KoiosConfig::new(10, 0.8).with_ub_mode(mode),
        );
        g.bench_function(label, |b| {
            b.iter(|| black_box(engine.search(&query).hits.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ub_modes);
criterion_main!(benches);
