//! Micro-benchmarks of the matching substrate: the `O(r²·c)` Hungarian
//! scaling that motivates the whole filter stack (§I: verification is cubic
//! versus linear for syntactic overlap), the cheap greedy lower bound, and
//! the effect of label-sum early termination (Lemma 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use koios_matching::{greedy_matching, solve_max_matching, WeightMatrix};
use std::hint::black_box;

/// Deterministic pseudo-random α-thresholded similarity matrix.
fn matrix(n: usize, density: f64, seed: u64) -> WeightMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    WeightMatrix::from_fn(n, n, |_, _| {
        if next() < density {
            0.8 + 0.2 * next()
        } else {
            0.0
        }
    })
}

fn bench_hungarian_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("hungarian");
    g.sample_size(10);
    for n in [8usize, 16, 32, 64, 128, 256] {
        let m = matrix(n, 0.2, 7);
        g.bench_with_input(BenchmarkId::new("exact", n), &m, |b, m| {
            b.iter(|| black_box(solve_max_matching(m, None).score()))
        });
    }
    g.finish();
}

fn bench_greedy_vs_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_vs_exact");
    g.sample_size(10);
    let m = matrix(96, 0.25, 11);
    g.bench_function("greedy_96", |b| b.iter(|| black_box(greedy_matching(&m).score)));
    g.bench_function("exact_96", |b| {
        b.iter(|| black_box(solve_max_matching(&m, None).score()))
    });
    g.finish();
}

fn bench_early_termination(c: &mut Criterion) {
    let mut g = c.benchmark_group("em_early_termination");
    g.sample_size(10);
    let m = matrix(128, 0.2, 13);
    let opt = solve_max_matching(&m, None).score();
    // A threshold just above the optimum terminates the run early
    // (the post-processing situation once θlb beats the candidate).
    g.bench_function("terminated", |b| {
        b.iter(|| black_box(solve_max_matching(&m, Some(opt * 1.05))))
    });
    g.bench_function("completed", |b| {
        b.iter(|| black_box(solve_max_matching(&m, Some(opt * 0.5))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hungarian_scaling,
    bench_greedy_vs_exact,
    bench_early_termination
);
criterion_main!(benches);
