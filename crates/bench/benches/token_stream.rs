//! Benchmarks of the index substrate: inverted-index construction (the
//! paper reports 1.3–80 s per dataset) and token-stream throughput (the
//! refinement phase consumes the whole `≥ α` stream).

use criterion::{criterion_group, criterion_main, Criterion};
use koios_bench::setup_profile;
use koios_datagen::profiles;
use koios_index::inverted::InvertedIndex;
use koios_index::knn::{ExactScanKnn, HeapKnn};
use koios_index::token_stream::TokenStream;
use std::hint::black_box;
use std::sync::Arc;

fn bench_inverted_index_build(c: &mut Criterion) {
    let run = setup_profile(profiles::twitter(0.05), 1);
    let mut g = c.benchmark_group("inverted_index");
    g.sample_size(10);
    g.bench_function("build_twitter_0.05", |b| {
        b.iter(|| black_box(InvertedIndex::build(&run.corpus.repository)))
    });
    g.finish();
}

fn bench_stream_drain(c: &mut Criterion) {
    let run = setup_profile(profiles::twitter(0.05), 2);
    let query = run.benchmark.queries[0].tokens.clone();
    let vocab = run.corpus.repository.vocab_size();
    let mut g = c.benchmark_group("token_stream");
    g.sample_size(10);
    g.bench_function("drain_exact_scan", |b| {
        b.iter(|| {
            let knn = ExactScanKnn::new(Arc::clone(&run.sim), query.clone(), vocab, 0.8);
            let mut ts = TokenStream::new(knn, query.len());
            let mut n = 0usize;
            while ts.next().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.bench_function("drain_heap", |b| {
        b.iter(|| {
            let knn = HeapKnn::new(Arc::clone(&run.sim), query.clone(), vocab, 0.8);
            let mut ts = TokenStream::new(knn, query.len());
            let mut n = 0usize;
            while ts.next().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_inverted_index_build, bench_stream_drain);
criterion_main!(benches);
