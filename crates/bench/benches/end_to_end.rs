//! End-to-end Koios vs Baseline vs Baseline+ on every dataset profile
//! (the criterion companion of Table III; the harness regenerates the
//! full table with partitions and timeouts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use koios_bench::setup_profile;
use koios_core::{Koios, KoiosConfig};
use koios_datagen::profiles::DatasetProfile;
use std::hint::black_box;
use std::sync::Arc;

fn bench_profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for profile in DatasetProfile::all(0.02) {
        let name = profile.spec.name.clone();
        let run = setup_profile(profile, 4);
        let query = run.benchmark.queries[0].tokens.clone();
        let koios = Koios::new(
            &run.corpus.repository,
            Arc::clone(&run.sim),
            KoiosConfig::new(10, 0.8),
        );
        g.bench_with_input(BenchmarkId::new("koios", &name), &query, |b, q| {
            b.iter(|| black_box(koios.search(q).hits.len()))
        });
        let baseline = Koios::new(
            &run.corpus.repository,
            Arc::clone(&run.sim),
            KoiosConfig::new(10, 0.8).baseline(),
        );
        g.bench_with_input(BenchmarkId::new("baseline", &name), &query, |b, q| {
            b.iter(|| black_box(baseline.search(q).hits.len()))
        });
        let plus = Koios::new(
            &run.corpus.repository,
            Arc::clone(&run.sim),
            KoiosConfig::new(10, 0.8).baseline_plus(),
        );
        g.bench_with_input(BenchmarkId::new("baseline_plus", &name), &query, |b, q| {
            b.iter(|| black_box(plus.search(q).hits.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_profiles);
criterion_main!(benches);
