//! Corpus/benchmark plumbing shared by the harness and the criterion
//! benches.

use koios_datagen::benchmark::QueryBenchmark;
use koios_datagen::corpus::Corpus;
use koios_datagen::profiles::DatasetProfile;
use koios_embed::sim::{CosineSimilarity, ElementSimilarity};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A generated profile ready to run: corpus, cosine similarity over its
/// synthetic embeddings, query benchmark, and the build times the paper
/// reports separately from query response times (§VIII-A3).
///
/// The corpus and similarity are behind `Arc`s, so clones are cheap and
/// [`setup_profile_cached`] can hand the same generated corpus to every
/// experiment that asks for the same profile.
#[derive(Clone)]
pub struct ProfileRun {
    /// The profile that produced this run.
    pub profile: DatasetProfile,
    /// The generated corpus (shared across cached runs).
    pub corpus: Arc<Corpus>,
    /// Cosine element similarity over the corpus embeddings.
    pub sim: Arc<dyn ElementSimilarity>,
    /// The query workload.
    pub benchmark: QueryBenchmark,
    /// Corpus generation time (excluded from response times).
    pub generation_time: std::time::Duration,
}

/// Generates a profile's corpus, embeddings and benchmark from scratch.
///
/// Use this when the *build itself* is what you are measuring (e.g. the
/// cold-build side of the snapshot experiment); everything else should go
/// through [`setup_profile_cached`] so a multi-experiment harness run
/// generates each corpus once.
pub fn setup_profile(profile: DatasetProfile, query_seed: u64) -> ProfileRun {
    let t0 = Instant::now();
    let corpus = profile.generate();
    let generation_time = t0.elapsed();
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
    let benchmark = profile.benchmark(&corpus, query_seed);
    ProfileRun {
        profile,
        corpus: Arc::new(corpus),
        sim,
        benchmark,
        generation_time,
    }
}

/// [`setup_profile`] behind a process-wide memo: the first request for a
/// `(profile, query_seed)` pair generates the corpus, every later request
/// clones the shared `Arc`s. Generation is deterministic in the profile
/// spec and seed, so the cached corpus is exactly what a fresh build would
/// produce — `harness all` used to regenerate the same OpenData corpus for
/// nearly every experiment; now it builds once.
pub fn setup_profile_cached(profile: DatasetProfile, query_seed: u64) -> ProfileRun {
    static CORPORA: OnceLock<Mutex<HashMap<String, ProfileRun>>> = OnceLock::new();
    // The debug rendering of the profile covers every generation input
    // (spec fields, intervals, queries per interval), so equal keys imply
    // identical corpora and benchmarks.
    let key = format!("{profile:?}#{query_seed}");
    let cache = CORPORA.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("corpus cache lock");
    cache
        .entry(key)
        .or_insert_with(|| setup_profile(profile, query_seed))
        .clone()
}

/// Caps the number of queries per interval (harness time control).
pub fn cap_queries(bench: &mut QueryBenchmark, per_interval: usize) {
    let n_intervals = bench.intervals.len().max(1);
    let mut kept = Vec::new();
    let mut counts = vec![0usize; n_intervals];
    for q in bench.queries.drain(..) {
        if counts[q.interval] < per_interval {
            counts[q.interval] += 1;
            kept.push(q);
        }
    }
    bench.queries = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_datagen::profiles;

    #[test]
    fn setup_produces_queries_and_sim() {
        let run = setup_profile(profiles::twitter(0.01), 1);
        assert!(run.corpus.repository.num_sets() > 0);
        assert!(!run.benchmark.is_empty());
        assert!(run.generation_time.as_nanos() > 0);
    }

    #[test]
    fn cap_queries_limits_per_interval() {
        let run = setup_profile(profiles::twitter(0.01), 2);
        let mut b = run.benchmark.clone();
        cap_queries(&mut b, 3);
        assert!(b.len() <= 3);
    }

    #[test]
    fn cached_setup_shares_one_corpus() {
        let a = setup_profile_cached(profiles::twitter(0.01), 7);
        let b = setup_profile_cached(profiles::twitter(0.01), 7);
        assert!(
            Arc::ptr_eq(&a.corpus, &b.corpus),
            "identical profiles must share the generated corpus"
        );
        assert_eq!(a.benchmark.len(), b.benchmark.len());
        // A different query seed keys its own entry.
        let c = setup_profile_cached(profiles::twitter(0.01), 8);
        assert!(!Arc::ptr_eq(&a.corpus, &c.corpus));
        // Cached contents match a fresh build exactly.
        let fresh = setup_profile(profiles::twitter(0.01), 7);
        for (id, set) in fresh.corpus.repository.iter_sets() {
            assert_eq!(a.corpus.repository.set(id), set);
        }
    }
}
