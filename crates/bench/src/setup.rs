//! Corpus/benchmark plumbing shared by the harness and the criterion
//! benches.

use koios_datagen::benchmark::QueryBenchmark;
use koios_datagen::corpus::Corpus;
use koios_datagen::profiles::DatasetProfile;
use koios_embed::sim::{CosineSimilarity, ElementSimilarity};
use std::sync::Arc;
use std::time::Instant;

/// A generated profile ready to run: corpus, cosine similarity over its
/// synthetic embeddings, query benchmark, and the build times the paper
/// reports separately from query response times (§VIII-A3).
pub struct ProfileRun {
    /// The profile that produced this run.
    pub profile: DatasetProfile,
    /// The generated corpus.
    pub corpus: Corpus,
    /// Cosine element similarity over the corpus embeddings.
    pub sim: Arc<dyn ElementSimilarity>,
    /// The query workload.
    pub benchmark: QueryBenchmark,
    /// Corpus generation time (excluded from response times).
    pub generation_time: std::time::Duration,
}

/// Generates a profile's corpus, embeddings and benchmark.
pub fn setup_profile(profile: DatasetProfile, query_seed: u64) -> ProfileRun {
    let t0 = Instant::now();
    let corpus = profile.generate();
    let generation_time = t0.elapsed();
    let sim: Arc<dyn ElementSimilarity> =
        Arc::new(CosineSimilarity::new(Arc::new(corpus.embeddings.clone())));
    let benchmark = profile.benchmark(&corpus, query_seed);
    ProfileRun {
        profile,
        corpus,
        sim,
        benchmark,
        generation_time,
    }
}

/// Caps the number of queries per interval (harness time control).
pub fn cap_queries(bench: &mut QueryBenchmark, per_interval: usize) {
    let n_intervals = bench.intervals.len().max(1);
    let mut kept = Vec::new();
    let mut counts = vec![0usize; n_intervals];
    for q in bench.queries.drain(..) {
        if counts[q.interval] < per_interval {
            counts[q.interval] += 1;
            kept.push(q);
        }
    }
    bench.queries = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_datagen::profiles;

    #[test]
    fn setup_produces_queries_and_sim() {
        let run = setup_profile(profiles::twitter(0.01), 1);
        assert!(run.corpus.repository.num_sets() > 0);
        assert!(!run.benchmark.is_empty());
        assert!(run.generation_time.as_nanos() > 0);
    }

    #[test]
    fn cap_queries_limits_per_interval() {
        let run = setup_profile(profiles::twitter(0.01), 2);
        let mut b = run.benchmark.clone();
        cap_queries(&mut b, 3);
        assert!(b.len() <= 3);
    }
}
