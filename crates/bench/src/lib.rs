//! Shared infrastructure for the Koios experiment harness and benches.
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! evaluation section (§VIII) as formatted text; the `harness` binary is a
//! thin CLI over it, and `EXPERIMENTS.md` records one full run. [`setup`]
//! holds the corpus/benchmark plumbing shared with the criterion benches.

pub mod experiments;
pub mod setup;
pub mod table;

pub use setup::{setup_profile, ProfileRun};
pub use table::TextTable;
