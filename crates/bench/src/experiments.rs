//! Regeneration of every table and figure in the paper's evaluation (§VIII).
//!
//! Each `table*` / `fig*` function runs the corresponding experiment on the
//! scaled synthetic profiles and renders the same rows/series the paper
//! reports. Absolute numbers differ from the paper (laptop vs 64-core +
//! 4-GPU testbed, scaled corpora); the *shapes* — who wins, pruning ratios,
//! trends across query cardinality and parameters — are the reproduction
//! target (see `EXPERIMENTS.md` for a recorded run and the comparison).

use crate::setup::{cap_queries, setup_profile_cached, ProfileRun};
use crate::table::{fmt_secs, pct, TextTable};
use koios_baselines::silkmoth::{SilkMoth, SilkMothVariant};
use koios_baselines::vanilla_topk;
use koios_common::{Json, SetId, TokenId};
use koios_core::{Koios, KoiosConfig, PartitionedKoios, SearchResult, UbMode};
use koios_datagen::profiles;
use koios_embed::sim::{ElementSimilarity, QGramJaccard};
use koios_index::inverted::InvertedIndex;
use koios_index::knn_cache::TokenKnnCache;
use koios_service::{SearchRequest, SearchService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// Harness-wide knobs (the paper's defaults are α = 0.8, k = 10,
/// partitions = 10, 2500 s timeout).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Corpus scale multiplier (1.0 = the laptop-scale profile defaults).
    pub scale: f64,
    /// Result size `k`.
    pub k: usize,
    /// Element similarity threshold `α`.
    pub alpha: f64,
    /// Partitions for the response-time experiments.
    pub partitions: usize,
    /// Queries per cardinality interval (time control).
    pub queries_per_interval: usize,
    /// Per-query timeout (the paper uses 2500 s at testbed scale).
    pub timeout: Duration,
    /// Benchmark sampling seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 0.1,
            k: 10,
            alpha: 0.8,
            partitions: 10,
            queries_per_interval: 2,
            timeout: Duration::from_secs(10),
            seed: 42,
        }
    }
}

impl HarnessConfig {
    fn koios_config(&self) -> KoiosConfig {
        let mut c = KoiosConfig::new(self.k, self.alpha);
        c.time_budget = Some(self.timeout);
        c
    }

    /// The shared corpus-builder: every experiment asking for the same
    /// profile reuses one generated corpus ([`setup_profile_cached`]); only
    /// the query cap is applied per experiment.
    fn profile_run(&self, profile: koios_datagen::profiles::DatasetProfile) -> ProfileRun {
        let mut run = setup_profile_cached(profile, self.seed);
        cap_queries(&mut run.benchmark, self.queries_per_interval);
        run
    }
}

/// One query's outcome annotated with its benchmark interval.
struct Outcome {
    interval: usize,
    result: SearchResult,
}

fn run_partitioned(run: &ProfileRun, hc: &HarnessConfig) -> Vec<Outcome> {
    let engine = PartitionedKoios::new(
        &run.corpus.repository,
        Arc::clone(&run.sim),
        hc.koios_config(),
        hc.partitions.max(1),
        hc.seed,
    );
    run.benchmark
        .queries
        .iter()
        .map(|q| Outcome {
            interval: q.interval,
            result: engine.search(&q.tokens),
        })
        .collect()
}

fn run_single(run: &ProfileRun, cfg: KoiosConfig) -> Vec<Outcome> {
    let engine = Koios::new(&run.corpus.repository, Arc::clone(&run.sim), cfg);
    run.benchmark
        .queries
        .iter()
        .map(|q| Outcome {
            interval: q.interval,
            result: engine.search(&q.tokens),
        })
        .collect()
}

fn run_baseline(run: &ProfileRun, hc: &HarnessConfig, plus: bool) -> Vec<Outcome> {
    let mut cfg = if plus {
        KoiosConfig::new(hc.k, hc.alpha).baseline_plus()
    } else {
        KoiosConfig::new(hc.k, hc.alpha).baseline()
    };
    cfg.time_budget = Some(hc.timeout);
    cfg = cfg.with_parallel_em(hc.partitions.max(1));
    run_single(run, cfg)
}

fn avg(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// p50/p99 summary of one service-side histogram as a JSON object
/// (`null` when the histogram never recorded, so artifact consumers can
/// tell "unused path" from "0 ms").
fn histogram_json(h: &koios_telemetry::Histogram) -> Json {
    let snap = h.snapshot();
    if snap.count() == 0 {
        return Json::Null;
    }
    Json::obj([
        ("count", Json::num(snap.count() as f64)),
        ("p50_ms", Json::num(snap.p50_ns() / 1e6)),
        ("p99_ms", Json::num(snap.p99_ns() / 1e6)),
    ])
}

/// The serving-stack telemetry scrape that rides along in the JSON
/// artifacts: per-stage engine latency plus the queue/search split the
/// service measures itself ([`koios_service::ServiceMetrics`]).
fn telemetry_json(m: &koios_service::ServiceMetrics) -> Json {
    Json::obj([
        ("stage_refine", histogram_json(&m.stage_refine)),
        ("stage_postprocess", histogram_json(&m.stage_postprocess)),
        ("stage_verify", histogram_json(&m.stage_verify)),
        ("stage_merge", histogram_json(&m.stage_merge)),
        ("queue_wait", histogram_json(&m.queue_wait)),
        ("request_queue", histogram_json(&m.request_queue)),
        ("request_search", histogram_json(&m.request_search)),
    ])
}

/// The tail-sampler summary that rides along in `BENCH_serving.json`:
/// lifetime retention counters plus the slowest retained trace's per-stage
/// breakdown, so the artifact explains its own p99 without a live server.
fn traces_json(service: &SearchService) -> Json {
    let Some(ts) = service.trace_stats() else {
        return Json::Null;
    };
    let sampled_pct = if ts.completed > 0 {
        100.0 * ts.retained as f64 / ts.completed as f64
    } else {
        0.0
    };
    let slowest = match service.slowest_trace() {
        None => Json::Null,
        Some(t) => {
            // Longest span per stage name (partitioned stage spans overlap,
            // so per-stage maxima, not sums).
            let stage_ms = |name: &str| {
                let ns = t
                    .spans
                    .iter()
                    .filter(|s| s.name == name)
                    .map(|s| s.duration_ns)
                    .max()
                    .unwrap_or(0);
                Json::num(ns as f64 / 1e6)
            };
            Json::obj([
                (
                    "trace_id",
                    Json::str(koios_common::fingerprint::hex(t.trace_id)),
                ),
                ("duration_ms", Json::num(t.duration_ns as f64 / 1e6)),
                ("spans", Json::num(t.spans.len() as f64)),
                ("depth", Json::num(t.depth() as f64)),
                ("reason", Json::str(t.reason.as_str())),
                (
                    "stages",
                    Json::obj([
                        ("queue_ms", stage_ms("queue")),
                        ("executor_ms", stage_ms("executor")),
                        ("refine_ms", stage_ms("refine")),
                        ("verify_ms", stage_ms("verify")),
                        ("merge_ms", stage_ms("merge")),
                        ("serialize_ms", stage_ms("serialize")),
                    ]),
                ),
            ])
        }
    };
    Json::obj([
        ("completed", Json::num(ts.completed as f64)),
        ("retained", Json::num(ts.retained as f64)),
        ("sampled", Json::num(ts.sampled as f64)),
        ("sampled_pct", Json::num(sampled_pct)),
        ("stored", Json::num(ts.stored as f64)),
        ("slowest", slowest),
    ])
}

/// Table I: characteristics of the (generated) datasets.
pub fn table1(hc: &HarnessConfig) -> String {
    let mut t = TextTable::new(vec![
        "dataset",
        "#Sets",
        "MaxSize",
        "AvgSize",
        "#UniqElems",
        "coverage",
        "gen time",
    ]);
    for profile in profiles::DatasetProfile::all(hc.scale) {
        let name = profile.spec.name.clone();
        let run = setup_profile_cached(profile, hc.seed);
        let st = run.corpus.repository.stats();
        t.row(vec![
            name,
            st.num_sets.to_string(),
            st.max_size.to_string(),
            format!("{:.1}", st.avg_size),
            st.unique_elems.to_string(),
            pct(run.corpus.embeddings.coverage()),
            fmt_secs(run.generation_time.as_secs_f64()),
        ]);
    }
    format!(
        "Table I — dataset characteristics (scale {}):\n{}",
        hc.scale,
        t.render()
    )
}

/// Table II: average percentage of sets pruned by each filter.
pub fn table2(hc: &HarnessConfig) -> String {
    let mut t = TextTable::new(vec![
        "dataset",
        "iUB-Filter",
        "EM-Early-Terminated",
        "No-EM",
    ]);
    for profile in profiles::DatasetProfile::all(hc.scale) {
        let name = profile.spec.name.clone();
        let run = hc.profile_run(profile);
        let outcomes = run_partitioned(&run, hc);
        let refine = avg(outcomes
            .iter()
            .map(|o| o.result.stats.refinement_prune_ratio()));
        let em_early = avg(outcomes.iter().map(|o| {
            let s = &o.result.stats;
            if s.to_postprocess == 0 {
                0.0
            } else {
                s.em_early_terminated as f64 / s.to_postprocess as f64
            }
        }));
        let no_em = avg(outcomes.iter().map(|o| {
            let s = &o.result.stats;
            if s.to_postprocess == 0 {
                0.0
            } else {
                s.no_em as f64 / s.to_postprocess as f64
            }
        }));
        t.row(vec![name, pct(refine), pct(em_early), pct(no_em)]);
    }
    format!(
        "Table II — avg % of sets pruned by filter (refinement % of candidates;\npost-processing % of surviving sets). Paper: iUB 53–91%, EM-early 0–5%, No-EM 1.4–55%.\n{}",
        t.render()
    )
}

/// Table III: average response time and memory, Koios vs Baseline.
pub fn table3(hc: &HarnessConfig) -> String {
    let mut t = TextTable::new(vec![
        "dataset",
        "K refine",
        "K postproc",
        "K response",
        "K mem(MB)",
        "B response",
        "B mem(MB)",
        "B timeouts",
        "speedup",
    ]);
    for profile in profiles::DatasetProfile::all(hc.scale) {
        let name = profile.spec.name.clone();
        let run = hc.profile_run(profile);
        let koios = run_partitioned(&run, hc);
        let base = run_baseline(&run, hc, false);
        let k_ref = avg(koios
            .iter()
            .map(|o| o.result.stats.refine_time.as_secs_f64()));
        let k_post = avg(koios
            .iter()
            .map(|o| o.result.stats.postprocess_time.as_secs_f64()));
        let k_resp = avg(koios
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let k_mem = avg(koios.iter().map(|o| o.result.stats.memory.total_mib()));
        let b_resp = avg(base
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let b_mem = avg(base.iter().map(|o| o.result.stats.memory.total_mib()));
        let b_to = base.iter().filter(|o| o.result.stats.timed_out).count();
        t.row(vec![
            name,
            fmt_secs(k_ref),
            fmt_secs(k_post),
            fmt_secs(k_resp),
            format!("{k_mem:.1}"),
            fmt_secs(b_resp),
            format!("{b_mem:.1}"),
            format!("{b_to}/{}", base.len()),
            format!("{:.1}x", b_resp / k_resp.max(1e-9)),
        ]);
    }
    format!(
        "Table III — avg response time & memory, Koios (K, {} partitions) vs Baseline (B).\nBaseline timeouts ({}s budget) floor its reported time, as in the paper.\n{}",
        hc.partitions,
        hc.timeout.as_secs(),
        t.render()
    )
}

fn prune_table(hc: &HarnessConfig, profile: koios_datagen::profiles::DatasetProfile) -> TextTable {
    let intervals = profile.intervals.clone();
    let run = hc.profile_run(profile);
    let outcomes = run_partitioned(&run, hc);
    let mut t = TextTable::new(vec![
        "query card.",
        "Candidates",
        "iUB-Filtered",
        "No-EM",
        "EM-Early-Term",
        "EM",
    ]);
    for (idx, (lo, hi)) in intervals.iter().enumerate() {
        let of_interval: Vec<&Outcome> = outcomes.iter().filter(|o| o.interval == idx).collect();
        if of_interval.is_empty() {
            continue;
        }
        let f = |g: fn(&koios_core::SearchStats) -> usize| {
            avg(of_interval.iter().map(|o| g(&o.result.stats) as f64))
        };
        t.row(vec![
            format!("{lo}-{hi}"),
            format!("{:.0}", f(|s| s.candidates)),
            format!("{:.0}", f(|s| s.ub_filter_pruned + s.iub_pruned)),
            format!("{:.0}", f(|s| s.no_em)),
            format!("{:.0}", f(|s| s.em_early_terminated)),
            format!("{:.0}", f(|s| s.em_full)),
        ]);
    }
    t
}

/// Table IV: OpenData — number of sets pruned by each filter per interval.
pub fn table4(hc: &HarnessConfig) -> String {
    format!(
        "Table IV — OpenData-like: avg #sets pruned by filter per query-cardinality interval.\n{}",
        prune_table(hc, profiles::opendata(hc.scale)).render()
    )
}

/// Table V: WDC — number of sets pruned by each filter per interval.
pub fn table5(hc: &HarnessConfig) -> String {
    format!(
        "Table V — WDC-like: avg #sets pruned by filter per query-cardinality interval.\n{}",
        prune_table(hc, profiles::wdc(hc.scale)).render()
    )
}

fn interval_figure(
    hc: &HarnessConfig,
    profile: koios_datagen::profiles::DatasetProfile,
    label: &str,
) -> String {
    let intervals = profile.intervals.clone();
    let run = hc.profile_run(profile);
    let koios = run_partitioned(&run, hc);
    let base = run_baseline(&run, hc, false);
    let mut t = TextTable::new(vec![
        "query card.",
        "K time",
        "K refine%",
        "K postproc%",
        "K mem(MB)",
        "B time",
        "B mem(MB)",
        "K t/o",
        "B t/o",
    ]);
    for (idx, (lo, hi)) in intervals.iter().enumerate() {
        let ko: Vec<&Outcome> = koios.iter().filter(|o| o.interval == idx).collect();
        let bo: Vec<&Outcome> = base.iter().filter(|o| o.interval == idx).collect();
        if ko.is_empty() {
            continue;
        }
        let k_time = avg(ko
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let k_ref = avg(ko.iter().map(|o| {
            let s = &o.result.stats;
            s.refine_time.as_secs_f64() / s.response_time().as_secs_f64().max(1e-12)
        }));
        let k_mem = avg(ko.iter().map(|o| o.result.stats.memory.total_mib()));
        let b_time = avg(bo
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let b_mem = avg(bo.iter().map(|o| o.result.stats.memory.total_mib()));
        let k_to = ko.iter().filter(|o| o.result.stats.timed_out).count();
        let b_to = bo.iter().filter(|o| o.result.stats.timed_out).count();
        t.row(vec![
            format!("{lo}-{hi}"),
            fmt_secs(k_time),
            pct(k_ref),
            pct(1.0 - k_ref),
            format!("{k_mem:.1}"),
            fmt_secs(b_time),
            format!("{b_mem:.1}"),
            k_to.to_string(),
            b_to.to_string(),
        ]);
    }
    format!(
        "{label} — response time, phase breakdown and memory vs query cardinality\n(K = Koios with {} partitions, B = Baseline):\n{}",
        hc.partitions,
        t.render()
    )
}

/// Fig. 5: OpenData panels (a)–(d).
pub fn fig5(hc: &HarnessConfig) -> String {
    interval_figure(hc, profiles::opendata(hc.scale), "Fig. 5 — OpenData-like")
}

/// Fig. 6: WDC panels (a)–(d).
pub fn fig6(hc: &HarnessConfig) -> String {
    interval_figure(hc, profiles::wdc(hc.scale), "Fig. 6 — WDC-like")
}

/// Fig. 7: parameter analysis on OpenData (partitions, α, k, memory vs α).
pub fn fig7(hc: &HarnessConfig) -> String {
    let mut out = String::new();
    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);

    // (a) partitions sweep.
    let mut t = TextTable::new(vec!["partitions", "time", "refine%", "postproc%"]);
    for parts in [1usize, 2, 5, 10, 20] {
        let mut sub = hc.clone();
        sub.partitions = parts;
        let outcomes = run_partitioned(&run, &sub);
        let time = avg(outcomes
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let refine = avg(outcomes.iter().map(|o| {
            let s = &o.result.stats;
            s.refine_time.as_secs_f64() / s.response_time().as_secs_f64().max(1e-12)
        }));
        t.row(vec![
            parts.to_string(),
            fmt_secs(time),
            pct(refine),
            pct(1.0 - refine),
        ]);
    }
    out.push_str(&format!(
        "Fig. 7a — time vs #partitions (k={}, α={}):\n{}\n\n",
        hc.k,
        hc.alpha,
        t.render()
    ));

    // (b) + (d): α sweep (time and memory).
    let mut t = TextTable::new(vec!["alpha", "time", "refine%", "mem(MB)"]);
    for alpha in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut cfg = KoiosConfig::new(hc.k, alpha);
        cfg.time_budget = Some(hc.timeout);
        let outcomes = run_single(&run, cfg);
        let time = avg(outcomes
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let refine = avg(outcomes.iter().map(|o| {
            let s = &o.result.stats;
            s.refine_time.as_secs_f64() / s.response_time().as_secs_f64().max(1e-12)
        }));
        let mem = avg(outcomes.iter().map(|o| o.result.stats.memory.total_mib()));
        t.row(vec![
            format!("{alpha}"),
            fmt_secs(time),
            pct(refine),
            format!("{mem:.1}"),
        ]);
    }
    out.push_str(&format!(
        "Fig. 7b/7d — time & memory vs element similarity threshold α (k={}, 1 partition):\n{}\n\n",
        hc.k,
        t.render()
    ));

    // (c) k sweep.
    let mut t = TextTable::new(vec!["k", "time", "refine%", "postproc sets"]);
    for k in [1usize, 5, 10, 25, 50] {
        let mut sub = hc.clone();
        sub.k = k;
        let outcomes = run_partitioned(&run, &sub);
        let time = avg(outcomes
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let refine = avg(outcomes.iter().map(|o| {
            let s = &o.result.stats;
            s.refine_time.as_secs_f64() / s.response_time().as_secs_f64().max(1e-12)
        }));
        let post = avg(outcomes
            .iter()
            .map(|o| o.result.stats.to_postprocess as f64));
        t.row(vec![
            k.to_string(),
            fmt_secs(time),
            pct(refine),
            format!("{post:.0}"),
        ]);
    }
    out.push_str(&format!(
        "Fig. 7c — time vs result size k (α={}, {} partitions):\n{}",
        hc.alpha,
        hc.partitions,
        t.render()
    ));
    out
}

/// Fig. 8: quality of semantic vs vanilla top-k on OpenData.
pub fn fig8(hc: &HarnessConfig) -> String {
    let profile = profiles::opendata(hc.scale);
    let intervals = profile.intervals.clone();
    let run = hc.profile_run(profile);
    let repo = &run.corpus.repository;
    let index = InvertedIndex::build(repo);
    let engine = Koios::new(repo, Arc::clone(&run.sim), hc.koios_config());

    let mut t = TextTable::new(vec![
        "query card.",
        "kth vanilla (van list)",
        "kth vanilla (sem list)",
        "kth semantic (sem list)",
        "kth semantic (van list)",
        "|intersection|/k",
    ]);
    for (idx, (lo, hi)) in intervals.iter().enumerate() {
        let queries: Vec<_> = run.benchmark.interval_queries(idx).collect();
        if queries.is_empty() {
            continue;
        }
        let mut van_van = Vec::new();
        let mut sem_van = Vec::new();
        let mut sem_sem = Vec::new();
        let mut van_sem = Vec::new();
        let mut inter = Vec::new();
        for q in queries {
            let sem = engine.search(&q.tokens);
            let van = vanilla_topk(repo, &index, &q.tokens, hc.k);
            if sem.hits.is_empty() || van.is_empty() {
                continue;
            }
            let sem_ids: Vec<SetId> = sem.set_ids();
            let van_ids: Vec<SetId> = van.iter().map(|v| v.0).collect();
            // k-th (= last) entries of each list, measured both ways.
            van_van.push(van.last().unwrap().1 as f64);
            sem_van.push(repo.vanilla_overlap(&q.tokens, *sem_ids.last().unwrap()) as f64);
            sem_sem.push(sem.hits.last().unwrap().score.lb());
            van_sem.push(engine.exact_overlap(&q.tokens, *van_ids.last().unwrap()));
            let common = sem_ids.iter().filter(|id| van_ids.contains(id)).count();
            inter.push(common as f64 / sem_ids.len().max(1) as f64);
        }
        t.row(vec![
            format!("{lo}-{hi}"),
            format!("{:.1}", avg(van_van.into_iter())),
            format!("{:.1}", avg(sem_van.into_iter())),
            format!("{:.2}", avg(sem_sem.into_iter())),
            format!("{:.2}", avg(van_sem.into_iter())),
            pct(avg(inter.into_iter())),
        ]);
    }
    format!(
        "Fig. 8 — semantic vs vanilla top-k quality (k = {}). The semantic list's k-th\nset has lower vanilla overlap but higher semantic overlap; the intersection\nshows how many vanilla results semantic search shares (paper: ~50% at the\nsmallest interval).\n{}",
        hc.k,
        t.render()
    )
}

/// §VIII-B: Koios vs SilkMoth-syntactic vs SilkMoth-semantic on q-gram
/// Jaccard element similarity.
pub fn silkmoth(hc: &HarnessConfig) -> String {
    // Smaller corpus: SilkMoth-semantic is deliberately slow.
    let mut profile = profiles::opendata((hc.scale * 0.5).max(0.01));
    profile.queries_per_interval = 2;
    let run = hc.profile_run(profile);
    let repo = &run.corpus.repository;
    let sim: Arc<dyn ElementSimilarity> = Arc::new(QGramJaccard::new(repo, 3));
    let alpha = hc.alpha;

    // Koios first — also yields each query's θ*k; the paper feeds SilkMoth
    // the *minimum* θ*k over the benchmark (an advantage for SilkMoth).
    let mut cfg = KoiosConfig::new(hc.k, alpha);
    cfg.no_em_filter = false;
    cfg.time_budget = Some(hc.timeout);
    let engine = Koios::new(repo, Arc::clone(&sim), cfg);
    let mut koios_time = Vec::new();
    let mut theta_min = f64::INFINITY;
    let mut results = Vec::new();
    for q in &run.benchmark.queries {
        let res = engine.search(&q.tokens);
        koios_time.push(res.stats.response_time().as_secs_f64());
        if let Some(h) = res.hits.last() {
            theta_min = theta_min.min(h.score.lb());
        }
        results.push(res);
    }
    if !theta_min.is_finite() {
        theta_min = 0.0;
    }

    let mut t = TextTable::new(vec!["engine", "avg time", "avg candidates", "avg verified"]);
    t.row(vec![
        "koios".to_string(),
        fmt_secs(avg(koios_time.iter().copied())),
        format!(
            "{:.0}",
            avg(results.iter().map(|r| r.stats.candidates as f64))
        ),
        format!("{:.0}", avg(results.iter().map(|r| r.stats.em_full as f64))),
    ]);
    for variant in [SilkMothVariant::Syntactic, SilkMothVariant::Semantic] {
        let sm = SilkMoth::new(repo, variant, 3, alpha);
        let mut times = Vec::new();
        let mut cands = Vec::new();
        let mut ver = Vec::new();
        for q in &run.benchmark.queries {
            let t0 = std::time::Instant::now();
            let (_, stats) = sm.search_topk(&q.tokens, hc.k, theta_min);
            times.push(t0.elapsed().as_secs_f64());
            cands.push(stats.candidate_sets as f64);
            ver.push(stats.verified as f64);
        }
        t.row(vec![
            format!("silkmoth-{variant:?}").to_lowercase(),
            fmt_secs(avg(times.into_iter())),
            format!("{:.0}", avg(cands.into_iter())),
            format!("{:.0}", avg(ver.into_iter())),
        ]);
    }
    format!(
        "§VIII-B — Koios vs SilkMoth on q-gram Jaccard (α = {alpha}, θ*k = {theta_min:.2} fed\nto SilkMoth as in the paper; paper shape: Koios < syntactic < semantic):\n{}",
        t.render()
    )
}

/// Token-level kNN cache experiment (ROADMAP "smarter caching"): cold vs
/// warm searches on an overlapping-query workload.
///
/// The workload takes every benchmark query and adds two sibling queries
/// sharing all but one element (head/tail dropped), the overlap pattern a
/// serving workload exhibits (users refining a query, dashboards with
/// shared dimensions). Three engine passes run over it:
///
/// * `no-cache` — the reference engine, fresh vocabulary scans per query;
/// * `cold` — a [`TokenKnnCache`]-backed engine with an empty cache (this
///   pass both measures fill overhead and populates the cache);
/// * `warm` — the same engine again, now served from the shared lists.
///
/// All three passes must return identical hits (printed as
/// `identical: true`); the refine-time column shows the kNN/refinement
/// work the warm pass avoids.
pub fn token_cache(hc: &HarnessConfig) -> String {
    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let repo = &run.corpus.repository;

    let mut workload: Vec<Vec<TokenId>> = Vec::new();
    for q in &run.benchmark.queries {
        workload.push(q.tokens.clone());
        if q.tokens.len() > 2 {
            workload.push(q.tokens[1..].to_vec());
            workload.push(q.tokens[..q.tokens.len() - 1].to_vec());
        }
    }

    let plain = Koios::new(repo, Arc::clone(&run.sim), hc.koios_config());
    let cache = Arc::new(TokenKnnCache::new(256 << 20));
    let caching = plain.with_config(hc.koios_config().with_token_cache(Arc::clone(&cache)));

    let run_pass = |engine: &Koios| -> (Vec<SearchResult>, f64, f64) {
        let results: Vec<SearchResult> = workload.iter().map(|q| engine.search(q)).collect();
        let refine = avg(results.iter().map(|r| r.stats.refine_time.as_secs_f64()));
        let resp = avg(results
            .iter()
            .map(|r| r.stats.response_time().as_secs_f64()));
        (results, refine, resp)
    };

    let (ref_results, ref_refine, ref_resp) = run_pass(&plain);
    let (cold_results, cold_refine, cold_resp) = run_pass(&caching);
    let (warm_results, warm_refine, warm_resp) = run_pass(&caching);

    let identical = ref_results
        .iter()
        .zip(&cold_results)
        .zip(&warm_results)
        .all(|((a, b), c)| a.hits == b.hits && c.hits == a.hits);

    let mut t = TextTable::new(vec![
        "pass",
        "avg refine",
        "avg response",
        "kNN hits",
        "kNN misses",
        "hit rate",
        "bytes served(MB)",
    ]);
    let pass_row =
        |t: &mut TextTable, label: &str, results: &[SearchResult], refine: f64, resp: f64| {
            let hits: usize = results.iter().map(|r| r.stats.knn_cache.hits).sum();
            let misses: usize = results.iter().map(|r| r.stats.knn_cache.misses).sum();
            let served: usize = results.iter().map(|r| r.stats.knn_cache.bytes_served).sum();
            let total = (hits + misses).max(1);
            t.row(vec![
                label.to_string(),
                fmt_secs(refine),
                fmt_secs(resp),
                hits.to_string(),
                misses.to_string(),
                pct(hits as f64 / total as f64),
                format!("{:.1}", served as f64 / (1 << 20) as f64),
            ]);
        };
    pass_row(&mut t, "no-cache", &ref_results, ref_refine, ref_resp);
    pass_row(
        &mut t,
        "cold (fills)",
        &cold_results,
        cold_refine,
        cold_resp,
    );
    pass_row(&mut t, "warm", &warm_results, warm_refine, warm_resp);

    let snap = cache.snapshot();
    format!(
        "Token cache — cold vs warm on an overlapping workload ({} queries incl.\n\
         head/tail-dropped siblings, k={}, α={}). identical: {identical}.\n\
         warm refine speedup vs no-cache: {:.1}x; cache: {} lists, {:.1} MB held.\n{}",
        workload.len(),
        hc.k,
        hc.alpha,
        ref_refine / warm_refine.max(1e-9),
        snap.entries,
        snap.bytes as f64 / (1 << 20) as f64,
        t.render()
    )
}

/// Shard-aware serving scaling experiment (ROADMAP "shard-aware service
/// routing"; the serving-layer view of Fig. 7a): a [`SearchService`] over a
/// partitioned backend, swept across shards × workers.
///
/// Every combination pushes the same benchmark workload (result cache
/// bypassed so each request really searches) through the service and
/// reports wall time, throughput, mean engine response time and timeouts.
/// The `1 shard × 1 worker` cell is the single-engine reference; every
/// other cell must return identical hit scores (`identical: true` in the
/// output — sharding under a shared `θlb` is exact, §VI). Besides the
/// rendered table, the rows are written to `BENCH_partitioned.json` in the
/// working directory so CI can track scaling trends across commits; each
/// row embeds a `telemetry` scrape of that cell's service registry
/// (per-stage + queue-wait p50/p99).
pub fn partitioned(hc: &HarnessConfig) -> String {
    partitioned_with_output(hc, std::path::Path::new("BENCH_partitioned.json"))
}

/// [`partitioned`] with an explicit JSON artifact path (tests write to a
/// temp location instead of the working directory).
pub fn partitioned_with_output(hc: &HarnessConfig, json_path: &std::path::Path) -> String {
    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let repo = Arc::new(run.corpus.repository.clone());
    let requests: Vec<SearchRequest> = run
        .benchmark
        .queries
        .iter()
        .map(|q| {
            SearchRequest::new(q.tokens.clone())
                .with_time_budget(hc.timeout)
                .bypassing_cache()
        })
        .collect();

    // 4 shards is the cell the scaling gate reads (4 shards × 4 workers
    // vs 1 worker), so it is always swept alongside the configured count.
    let mut shard_counts = vec![1usize, 2, 4, hc.partitions.max(1)];
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let worker_counts = [1usize, 2, 4];

    let mut t = TextTable::new(vec![
        "shards",
        "workers",
        "wall",
        "qps",
        "scaling eff",
        "avg response",
        "timeouts",
        "knn hit rate",
    ]);
    let mut reference: Vec<Vec<f64>> = Vec::new();
    let mut identical = true;
    let mut json_rows: Vec<Json> = Vec::new();
    // Best observed 4-worker/1-worker speedup across shard counts, for the
    // CI scaling gate.
    let mut best_speedup = 0.0f64;
    for &shards in &shard_counts {
        // The 1-worker cell of this shard count anchors its scaling
        // efficiency column (worker_counts starts at 1).
        let mut qps_one_worker = 0.0f64;
        for workers in worker_counts {
            let service = SearchService::new_partitioned(
                Arc::clone(&repo),
                Arc::clone(&run.sim),
                hc.koios_config(),
                shards,
                hc.seed,
                ServiceConfig::new()
                    .with_workers(workers)
                    .with_cache_capacity(0),
            );
            let t0 = std::time::Instant::now();
            let responses = service.search_batch(&requests);
            let wall = t0.elapsed().as_secs_f64();

            let scores: Vec<Vec<f64>> = responses
                .iter()
                .map(|r| r.result.hits.iter().map(|h| h.score.ub()).collect())
                .collect();
            if reference.is_empty() {
                reference = scores;
            } else {
                identical &= reference.len() == scores.len()
                    && reference.iter().zip(&scores).all(|(a, b)| {
                        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
                    });
            }

            let timeouts = responses
                .iter()
                .filter(|r| r.result.stats.timed_out)
                .count();
            let avg_resp = avg(responses
                .iter()
                .map(|r| r.result.stats.response_time().as_secs_f64()));
            let qps = requests.len() as f64 / wall.max(1e-9);
            if workers == 1 {
                qps_one_worker = qps;
            }
            // qps at W workers ÷ (W × qps at 1 worker, same shard count):
            // 1.0 = perfect linear scaling, 1/W = no scaling at all.
            let scaling_efficiency = qps / (workers as f64 * qps_one_worker.max(1e-9));
            if workers == *worker_counts.last().expect("non-empty sweep") {
                best_speedup = best_speedup.max(qps / qps_one_worker.max(1e-9));
            }
            let st = service.stats();
            let knn_rate = st.token_cache_hit_rate();
            t.row(vec![
                shards.to_string(),
                workers.to_string(),
                fmt_secs(wall),
                format!("{qps:.1}"),
                format!("{scaling_efficiency:.2}"),
                fmt_secs(avg_resp),
                format!("{timeouts}/{}", requests.len()),
                pct(knn_rate),
            ]);
            json_rows.push(Json::obj([
                ("shards", Json::num(shards as f64)),
                ("workers", Json::num(workers as f64)),
                ("wall_secs", Json::num(wall)),
                ("qps", Json::num(qps)),
                ("scaling_efficiency", Json::num(scaling_efficiency)),
                ("avg_response_secs", Json::num(avg_resp)),
                ("timeouts", Json::num(timeouts as f64)),
                ("knn_hit_rate", Json::num(knn_rate)),
                // Each cell is its own service, so the scrape is per-cell:
                // stage p50/p99 + queue-wait straight from the registry.
                ("telemetry", telemetry_json(service.metrics())),
            ]));
        }
    }

    // The artifact goes through the shared encoder (one JSON
    // implementation in the workspace; non-finite values become `null`
    // instead of invalid JSON). CI greps for `"identical":true`.
    // CI scaling gate: lenient — the best 4-worker cell must beat its
    // 1-worker anchor by ≥ 1.2×. A single-core machine cannot demonstrate
    // parallel speedup at all, so it auto-passes (the multi-core CI runner
    // carries the real gate).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scaling_ok = cores < 2 || best_speedup >= 1.2;

    let json = Json::obj([
        ("experiment", Json::str("partitioned")),
        ("scale", Json::num(hc.scale)),
        ("k", Json::num(hc.k as f64)),
        ("alpha", Json::num(hc.alpha)),
        ("queries", Json::num(requests.len() as f64)),
        ("identical", Json::Bool(identical)),
        ("cores", Json::num(cores as f64)),
        ("best_worker_speedup", Json::num(best_speedup)),
        ("scaling_ok", Json::Bool(scaling_ok)),
        ("rows", Json::Arr(json_rows)),
    ])
    .encode()
        + "\n";
    let json_note = match std::fs::write(json_path, &json) {
        Ok(()) => format!("rows written to {}", json_path.display()),
        Err(e) => format!("could not write {}: {e}", json_path.display()),
    };

    format!(
        "Partitioned serving — shards × workers over {} queries (k={}, α={},\n\
         result cache bypassed; all cells identical to the 1-shard reference: {identical};\n\
         best 4-worker speedup {best_speedup:.2}× on {cores} core(s), scaling_ok={scaling_ok}).\n\
         {json_note}.\n{}",
        requests.len(),
        hc.k,
        hc.alpha,
        t.render()
    )
}

/// Network serving experiment (ROADMAP "async / network front-end"): an
/// in-process [`KoiosServer`](koios_net::KoiosServer) driven by N
/// concurrent HTTP clients.
///
/// The service (partitioned backend, persistent worker pool, result cache
/// bypassed so every request really searches) is bound to an ephemeral
/// loopback port; client-count sweeps push the benchmark workload through
/// `POST /search` and measure end-to-end latency — HTTP framing, JSON,
/// queueing *and* engine time. Every wire response is checked against the
/// in-process reference scores (`identical: true`), and the rows are
/// written to `BENCH_serving.json` (throughput + p50/p99 latency) so CI can
/// track the serving path across commits. The artifact also carries a
/// `telemetry` scrape of the service's own registry — per-stage and
/// queue-wait p50/p99 — so wire latency can be attributed to queueing vs
/// engine stages, and queries slower than 1% of the timeout land in a
/// `BENCH_serving.slow.jsonl` slow-query log next to it.
pub fn serving(hc: &HarnessConfig) -> String {
    serving_with_output(hc, std::path::Path::new("BENCH_serving.json"))
}

/// [`serving`] with an explicit JSON artifact path (tests write to a temp
/// location instead of the working directory).
pub fn serving_with_output(hc: &HarnessConfig, json_path: &std::path::Path) -> String {
    use koios_net::{client::KoiosClient, server::KoiosServer};

    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let repo = Arc::new(run.corpus.repository.clone());

    // Slow-query log artifact next to the JSON rows (BENCH_serving.json →
    // BENCH_serving.slow.jsonl), truncated per run so CI uploads only this
    // run's offenders. Threshold: 1% of the per-query timeout.
    let slow_path = json_path.with_extension("slow.jsonl");
    let _ = std::fs::remove_file(&slow_path);
    let mut service_cfg = ServiceConfig::new().with_workers(4).with_cache_capacity(0);
    let slow_note = match koios_service::SlowQueryLog::to_file(hc.timeout / 100, &slow_path) {
        Ok(log) => {
            service_cfg = service_cfg.with_slow_query_log(log);
            format!(
                "slow queries (>{:?}) in {}",
                hc.timeout / 100,
                slow_path.display()
            )
        }
        Err(e) => format!("slow-query log disabled ({}: {e})", slow_path.display()),
    };

    let service = Arc::new(SearchService::new_partitioned(
        Arc::clone(&repo),
        Arc::clone(&run.sim),
        hc.koios_config(),
        hc.partitions.max(1),
        hc.seed,
        service_cfg,
    ));

    let queries: Vec<Vec<TokenId>> = run
        .benchmark
        .queries
        .iter()
        .map(|q| q.tokens.clone())
        .collect();
    // In-process reference scores for the identity check.
    let reference: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| {
            service
                .search(SearchRequest::new(q.clone()).bypassing_cache())
                .result
                .hits
                .iter()
                .map(|h| h.score.ub())
                .collect()
        })
        .collect();
    let bodies: Vec<Json> = queries
        .iter()
        .map(|q| {
            Json::obj([
                ("tokens", Json::arr(q.iter().map(|t| Json::num(t.0 as f64)))),
                ("bypass_cache", Json::Bool(true)),
                ("time_budget_ms", Json::num(hc.timeout.as_millis() as f64)),
            ])
        })
        .collect();

    let server = match KoiosServer::bind(Arc::clone(&service), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => return format!("Serving — could not bind a loopback port: {e}"),
    };
    let addr = server.addr();

    let percentile = |sorted: &[f64], p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };

    let mut t = TextTable::new(vec![
        "clients",
        "requests",
        "wall",
        "qps",
        "scaling eff",
        "p50 latency",
        "p99 latency",
    ]);
    let mut identical = true;
    let mut json_rows: Vec<Json> = Vec::new();
    // The 1-client sweep anchors the per-row scaling efficiency.
    let mut qps_one_client = 0.0f64;
    for clients in [1usize, 2, 4] {
        let t0 = std::time::Instant::now();
        let per_thread: Vec<(Vec<f64>, bool)> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let bodies = &bodies;
                    let reference = &reference;
                    sc.spawn(move || {
                        let mut client = KoiosClient::new(addr);
                        let mut latencies = Vec::with_capacity(bodies.len());
                        let mut ok = true;
                        for (body, want) in bodies.iter().zip(reference) {
                            let r0 = std::time::Instant::now();
                            let reply = client.search(body);
                            latencies.push(r0.elapsed().as_secs_f64() * 1e3);
                            let mut got: Option<Vec<f64>> = None;
                            if let Ok((200, j)) = reply {
                                if let Some(hits) = j.get("hits").and_then(Json::as_array) {
                                    let scores: Vec<f64> = hits
                                        .iter()
                                        .filter_map(|h| h.get("ub").and_then(Json::as_f64))
                                        .collect();
                                    if scores.len() == hits.len() {
                                        got = Some(scores);
                                    }
                                }
                            }
                            ok &= matches!(
                                &got,
                                Some(got) if got.len() == want.len()
                                    && got.iter().zip(want).all(|(a, b)| (a - b).abs() < 1e-9)
                            );
                        }
                        (latencies, ok)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed().as_secs_f64();

        let mut latencies: Vec<f64> = Vec::new();
        for (lat, ok) in per_thread {
            identical &= ok;
            latencies.extend(lat);
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let requests = latencies.len();
        let qps = requests as f64 / wall.max(1e-9);
        if clients == 1 {
            qps_one_client = qps;
        }
        // qps at C clients ÷ (C × qps at 1 client) — same definition as
        // the partitioned sweep's per-worker column.
        let scaling_efficiency = qps / (clients as f64 * qps_one_client.max(1e-9));
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        t.row(vec![
            clients.to_string(),
            requests.to_string(),
            fmt_secs(wall),
            format!("{qps:.1}"),
            format!("{scaling_efficiency:.2}"),
            format!("{p50:.2}ms"),
            format!("{p99:.2}ms"),
        ]);
        json_rows.push(Json::obj([
            ("clients", Json::num(clients as f64)),
            ("requests", Json::num(requests as f64)),
            ("wall_secs", Json::num(wall)),
            ("qps", Json::num(qps)),
            ("scaling_efficiency", Json::num(scaling_efficiency)),
            ("p50_ms", Json::num(p50)),
            ("p99_ms", Json::num(p99)),
        ]));
    }

    // One service served every sweep, so its registry now holds the whole
    // run: split end-to-end latency into queue vs search and report the
    // per-stage engine breakdown alongside the wire-level percentiles.
    let m = service.metrics();
    let split_line = {
        let fmt = |h: &koios_telemetry::Histogram, label: &str| {
            let s = h.snapshot();
            if s.count() == 0 {
                format!("{label} —")
            } else {
                format!(
                    "{label} p50 {:.2}ms / p99 {:.2}ms",
                    s.p50_ns() / 1e6,
                    s.p99_ns() / 1e6
                )
            }
        };
        format!(
            "service-side split: {}; {}; {}; {}",
            fmt(&m.request_queue, "queue"),
            fmt(&m.queue_wait, "pool wait"),
            fmt(&m.request_search, "search"),
            fmt(&m.stage_refine, "refine stage"),
        )
    };

    // Shared encoder, same as `partitioned` — CI greps `"identical":true`.
    let json = Json::obj([
        ("experiment", Json::str("serving")),
        ("scale", Json::num(hc.scale)),
        ("k", Json::num(hc.k as f64)),
        ("alpha", Json::num(hc.alpha)),
        ("partitions", Json::num(hc.partitions.max(1) as f64)),
        ("queries", Json::num(queries.len() as f64)),
        ("identical", Json::Bool(identical)),
        ("telemetry", telemetry_json(m)),
        ("traces", traces_json(&service)),
        ("slow_query_log", Json::str(slow_path.display().to_string())),
        ("rows", Json::Arr(json_rows)),
    ])
    .encode()
        + "\n";
    let json_note = match std::fs::write(json_path, &json) {
        Ok(()) => format!("rows written to {}", json_path.display()),
        Err(e) => format!("could not write {}: {e}", json_path.display()),
    };

    format!(
        "Serving over HTTP — clients × {} queries against an in-process koios-net\n\
         server ({} partitions, 4 workers, result cache bypassed; all wire scores\n\
         identical to in-process search: {identical}).\n{split_line}.\n{json_note};\n{slow_note}.\n{}",
        queries.len(),
        hc.partitions.max(1),
        t.render()
    )
}

/// Tracing overhead A/B: the same partitioned service with and without
/// the request tracer, interleaved best-of rounds.
///
/// Both services share one corpus and config; the only difference is
/// [`ServiceConfig::without_tracing`]. Each round times a full pass of the
/// benchmark queries on each service, alternating which side goes first so
/// thermal/cache drift cancels; best-of rounds is compared. The gate
/// (`overhead_ok`) passes when the traced best is within 2% of the
/// untraced best *or* within the untraced side's own round-to-round noise
/// — a machine whose baseline jitters by 5% cannot certify a 2% bar, and
/// the artifact records both numbers so CI can tell which clause held.
/// Results are also cross-checked for byte-identical hits (`identical`).
pub fn trace_overhead(hc: &HarnessConfig) -> String {
    trace_overhead_with_output(hc, std::path::Path::new("BENCH_trace_overhead.json"))
}

/// [`trace_overhead`] with an explicit JSON artifact path.
pub fn trace_overhead_with_output(hc: &HarnessConfig, json_path: &std::path::Path) -> String {
    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let repo = Arc::new(run.corpus.repository.clone());
    let build = |tracing: bool| {
        let mut cfg = ServiceConfig::new().with_workers(4).with_cache_capacity(0);
        if !tracing {
            cfg = cfg.without_tracing();
        }
        SearchService::new_partitioned(
            Arc::clone(&repo),
            Arc::clone(&run.sim),
            hc.koios_config(),
            hc.partitions.max(1),
            hc.seed,
            cfg,
        )
    };
    let traced = build(true);
    let untraced = build(false);

    let queries: Vec<Vec<TokenId>> = run
        .benchmark
        .queries
        .iter()
        .map(|q| q.tokens.clone())
        .collect();

    // Divergence check once up front: tracing must not change results.
    let identical = queries.iter().all(|q| {
        let a = traced.search(SearchRequest::new(q.clone()).bypassing_cache());
        let b = untraced.search(SearchRequest::new(q.clone()).bypassing_cache());
        a.result.hits == b.result.hits
    });

    let pass = |svc: &SearchService| {
        let t0 = std::time::Instant::now();
        for q in &queries {
            let _ = svc.search(SearchRequest::new(q.clone()).bypassing_cache());
        }
        t0.elapsed().as_secs_f64()
    };

    const ROUNDS: usize = 5;
    let mut traced_walls = Vec::with_capacity(ROUNDS);
    let mut untraced_walls = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate which side runs first within the pair.
        if round % 2 == 0 {
            untraced_walls.push(pass(&untraced));
            traced_walls.push(pass(&traced));
        } else {
            traced_walls.push(pass(&traced));
            untraced_walls.push(pass(&untraced));
        }
    }
    let best = |w: &[f64]| w.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = |w: &[f64]| w.iter().cloned().fold(0.0f64, f64::max);
    let best_untraced = best(&untraced_walls);
    let best_traced = best(&traced_walls);
    let overhead_pct = 100.0 * (best_traced / best_untraced.max(1e-12) - 1.0);
    let noise_pct = 100.0 * (worst(&untraced_walls) / best_untraced.max(1e-12) - 1.0);
    let overhead_ok = overhead_pct <= 2.0 || overhead_pct <= noise_pct;
    let qps = |wall: f64| queries.len() as f64 / wall.max(1e-12);

    let trace_stats = traces_json(&traced);
    let json = Json::obj([
        ("experiment", Json::str("trace_overhead")),
        ("scale", Json::num(hc.scale)),
        ("k", Json::num(hc.k as f64)),
        ("alpha", Json::num(hc.alpha)),
        ("partitions", Json::num(hc.partitions.max(1) as f64)),
        ("queries", Json::num(queries.len() as f64)),
        ("rounds", Json::num(ROUNDS as f64)),
        ("identical", Json::Bool(identical)),
        ("untraced_best_qps", Json::num(qps(best_untraced))),
        ("traced_best_qps", Json::num(qps(best_traced))),
        ("overhead_pct", Json::num(overhead_pct)),
        ("baseline_noise_pct", Json::num(noise_pct)),
        ("overhead_ok", Json::Bool(overhead_ok)),
        ("traces", trace_stats),
    ])
    .encode()
        + "\n";
    let json_note = match std::fs::write(json_path, &json) {
        Ok(()) => format!("rows written to {}", json_path.display()),
        Err(e) => format!("could not write {}: {e}", json_path.display()),
    };

    format!(
        "Tracing overhead A/B — {} queries × {ROUNDS} interleaved rounds on a {}-shard\n\
         service (identical hits: {identical}).\n\
         untraced best {:.1} qps, traced best {:.1} qps, overhead {overhead_pct:+.2}%\n\
         (baseline round-to-round noise {noise_pct:.2}%), overhead_ok={overhead_ok}.\n\
         {json_note}.",
        queries.len(),
        hc.partitions.max(1),
        qps(best_untraced),
        qps(best_traced),
    )
}

/// Profiler + EXPLAIN overhead A/B/C: the same partitioned service with
/// the cooperative wall-clock profiler on (1 ms sampler), with EXPLAIN
/// funnel accounting per request, and with both off, interleaved best-of
/// rounds.
///
/// Three service legs share one corpus and config (tracing off everywhere
/// so the measured deltas isolate this PR's two opt-in costs):
/// `baseline` has no profiler, `profiled` runs the default 1 ms sampler,
/// and `explain` (also profiler-free) sends every request with
/// `explain: true`. The gate (`overhead_ok`) passes when **both** the
/// profiled and the explain best are within 2% of the baseline best *or*
/// within the baseline's own round-to-round noise — same two-clause rule
/// as [`trace_overhead`], recorded per leg so CI can tell which clause
/// held. Hits are cross-checked for exact equality across all three legs
/// (`identical`), and the artifact records the sampler's tick count plus
/// whether it produced non-empty collapsed stacks.
pub fn profile_overhead(hc: &HarnessConfig) -> String {
    profile_overhead_with_output(hc, std::path::Path::new("BENCH_profile.json"))
}

/// [`profile_overhead`] with an explicit JSON artifact path.
pub fn profile_overhead_with_output(hc: &HarnessConfig, json_path: &std::path::Path) -> String {
    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let repo = Arc::new(run.corpus.repository.clone());
    let build = |profiler: bool| {
        let mut cfg = ServiceConfig::new()
            .with_workers(4)
            .with_cache_capacity(0)
            .without_tracing();
        if !profiler {
            cfg = cfg.without_profiler();
        }
        SearchService::new_partitioned(
            Arc::clone(&repo),
            Arc::clone(&run.sim),
            hc.koios_config(),
            hc.partitions.max(1),
            hc.seed,
            cfg,
        )
    };
    let baseline = build(false);
    let profiled = build(true);
    let explain = build(false);

    let queries: Vec<Vec<TokenId>> = run
        .benchmark
        .queries
        .iter()
        .map(|q| q.tokens.clone())
        .collect();

    // Divergence check once up front: neither the sampler nor funnel
    // accounting may change a single hit.
    let identical = queries.iter().all(|q| {
        let a = baseline.search(SearchRequest::new(q.clone()).bypassing_cache());
        let b = profiled.search(SearchRequest::new(q.clone()).bypassing_cache());
        let c = explain.search(
            SearchRequest::new(q.clone())
                .with_explain(true)
                .bypassing_cache(),
        );
        a.result.hits == b.result.hits && a.result.hits == c.result.hits
    });

    let pass = |svc: &SearchService, with_explain: bool| {
        let t0 = std::time::Instant::now();
        for q in &queries {
            let mut req = SearchRequest::new(q.clone()).bypassing_cache();
            if with_explain {
                req = req.with_explain(true);
            }
            let _ = svc.search(req);
        }
        t0.elapsed().as_secs_f64()
    };

    const ROUNDS: usize = 5;
    let mut baseline_walls = Vec::with_capacity(ROUNDS);
    let mut profiled_walls = Vec::with_capacity(ROUNDS);
    let mut explain_walls = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Rotate which leg runs first so thermal/cache drift cancels.
        match round % 3 {
            0 => {
                baseline_walls.push(pass(&baseline, false));
                profiled_walls.push(pass(&profiled, false));
                explain_walls.push(pass(&explain, true));
            }
            1 => {
                profiled_walls.push(pass(&profiled, false));
                explain_walls.push(pass(&explain, true));
                baseline_walls.push(pass(&baseline, false));
            }
            _ => {
                explain_walls.push(pass(&explain, true));
                baseline_walls.push(pass(&baseline, false));
                profiled_walls.push(pass(&profiled, false));
            }
        }
    }
    let best = |w: &[f64]| w.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = |w: &[f64]| w.iter().cloned().fold(0.0f64, f64::max);
    let best_baseline = best(&baseline_walls);
    let best_profiled = best(&profiled_walls);
    let best_explain = best(&explain_walls);
    let pct = |wall: f64| 100.0 * (wall / best_baseline.max(1e-12) - 1.0);
    let profiler_overhead_pct = pct(best_profiled);
    let explain_overhead_pct = pct(best_explain);
    let noise_pct = 100.0 * (worst(&baseline_walls) / best_baseline.max(1e-12) - 1.0);
    let leg_ok = |overhead: f64| overhead <= 2.0 || overhead <= noise_pct;
    let overhead_ok = leg_ok(profiler_overhead_pct) && leg_ok(explain_overhead_pct);
    let qps = |wall: f64| queries.len() as f64 / wall.max(1e-12);

    // The sampler must have actually been working while it was measured.
    let (ticks, has_stacks) = profiled
        .profiler()
        .map(|p| (p.ticks(), !p.collapsed_stacks().is_empty()))
        .unwrap_or((0, false));

    let json = Json::obj([
        ("experiment", Json::str("profile_overhead")),
        ("scale", Json::num(hc.scale)),
        ("k", Json::num(hc.k as f64)),
        ("alpha", Json::num(hc.alpha)),
        ("partitions", Json::num(hc.partitions.max(1) as f64)),
        ("queries", Json::num(queries.len() as f64)),
        ("rounds", Json::num(ROUNDS as f64)),
        ("identical", Json::Bool(identical)),
        ("baseline_best_qps", Json::num(qps(best_baseline))),
        ("profiled_best_qps", Json::num(qps(best_profiled))),
        ("explain_best_qps", Json::num(qps(best_explain))),
        ("profiler_overhead_pct", Json::num(profiler_overhead_pct)),
        ("explain_overhead_pct", Json::num(explain_overhead_pct)),
        ("baseline_noise_pct", Json::num(noise_pct)),
        ("profiler_ticks", Json::num(ticks as f64)),
        ("collapsed_stacks_nonempty", Json::Bool(has_stacks)),
        ("overhead_ok", Json::Bool(overhead_ok)),
    ])
    .encode()
        + "\n";
    let json_note = match std::fs::write(json_path, &json) {
        Ok(()) => format!("rows written to {}", json_path.display()),
        Err(e) => format!("could not write {}: {e}", json_path.display()),
    };

    format!(
        "Profiler/EXPLAIN overhead A/B/C — {} queries × {ROUNDS} rotated rounds on a\n\
         {}-shard service (identical hits: {identical}; sampler ticks {ticks}).\n\
         baseline best {:.1} qps, profiled best {:.1} qps ({profiler_overhead_pct:+.2}%),\n\
         explain best {:.1} qps ({explain_overhead_pct:+.2}%); baseline noise {noise_pct:.2}%,\n\
         overhead_ok={overhead_ok}.\n\
         {json_note}.",
        queries.len(),
        hc.partitions.max(1),
        qps(best_baseline),
        qps(best_profiled),
        qps(best_explain),
    )
}

/// Snapshot persistence experiment (ROADMAP "production-scale serving"):
/// cold build vs warm start from a `koios-store` snapshot.
///
/// The cold side regenerates the corpus from scratch (deliberately
/// bypassing the shared corpus cache) and builds a single-index and a
/// partitioned engine; the warm side writes one snapshot per backend, then
/// restores each with `EngineBackend::from_snapshot` (best of three loads).
/// Every benchmark query must return **byte-identical** hits on the
/// restored engine (`identical: true` — snapshots store vectors and
/// indexes bit-exactly, so this is equality, not tolerance). The rows land
/// in `BENCH_store.json`; CI greps `"identical":true` and
/// `"speedup_ok":true` (load ≥ 5× faster than cold build on both
/// backends).
pub fn snapshot(hc: &HarnessConfig) -> String {
    snapshot_with_output(hc, std::path::Path::new("BENCH_store.json"))
}

/// [`snapshot`] with an explicit JSON artifact path (tests write to a temp
/// location instead of the working directory).
pub fn snapshot_with_output(hc: &HarnessConfig, json_path: &std::path::Path) -> String {
    use koios_core::EngineBackend;

    // Cold build, measured from scratch: corpus + embedding generation
    // (what `setup_profile` times as `generation_time`) plus engine/index
    // construction per backend.
    let mut run = crate::setup::setup_profile(profiles::opendata(hc.scale), hc.seed);
    cap_queries(&mut run.benchmark, hc.queries_per_interval);
    let gen_secs = run.generation_time.as_secs_f64();
    let repo = Arc::new(run.corpus.repository.clone());

    let t0 = std::time::Instant::now();
    let single_cold: EngineBackend =
        koios_core::OwnedKoios::new(Arc::clone(&repo), Arc::clone(&run.sim), hc.koios_config())
            .into();
    let build_single = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let parted_cold: EngineBackend = koios_core::OwnedPartitionedKoios::new(
        Arc::clone(&repo),
        Arc::clone(&run.sim),
        hc.koios_config(),
        hc.partitions.max(1),
        hc.seed,
    )
    .into();
    let build_parted = t0.elapsed().as_secs_f64();

    // Per-process work dir: concurrent harness/test runs (e.g. CI jobs on
    // one runner) must not race on each other's snapshot files.
    let dir = std::env::temp_dir().join(format!("koios-bench-snapshot-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return format!("Snapshot — could not create {}: {e}", dir.display());
    }
    let emb = &run.corpus.embeddings;
    let queries: Vec<&Vec<TokenId>> = run.benchmark.queries.iter().map(|q| &q.tokens).collect();

    let mut t = TextTable::new(vec![
        "backend",
        "cold build",
        "write",
        "size(MB)",
        "load",
        "speedup",
        "identical",
    ]);
    let mut json_rows: Vec<Json> = Vec::new();
    let mut identical = true;
    let mut speedup_ok = true;
    for (label, cold, build_secs, file) in [
        ("single", &single_cold, build_single, "single.ksnap"),
        ("partitioned", &parted_cold, build_parted, "parted.ksnap"),
    ] {
        let path = dir.join(file);
        let t0 = std::time::Instant::now();
        let meta = match cold.write_snapshot(&path, Some(emb)) {
            Ok(m) => m,
            Err(e) => return format!("Snapshot — writing {} failed: {e}", path.display()),
        };
        let write_secs = t0.elapsed().as_secs_f64();

        // Best of three loads: at small scales a single load is only a few
        // ms, so damp filesystem jitter.
        let mut load_secs = f64::INFINITY;
        let mut warm = None;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            match EngineBackend::from_snapshot(&path, hc.koios_config()) {
                Ok((backend, _)) => {
                    load_secs = load_secs.min(t0.elapsed().as_secs_f64());
                    warm = Some(backend);
                }
                Err(e) => return format!("Snapshot — loading {} failed: {e}", path.display()),
            }
        }
        let warm = warm.expect("three loads ran");
        assert_eq!(warm.num_partitions(), cold.num_partitions());

        let backend_identical = queries
            .iter()
            .all(|q| warm.search(q).hits == cold.search(q).hits);
        identical &= backend_identical;
        let cold_build = gen_secs + build_secs;
        let speedup = cold_build / load_secs.max(1e-9);
        speedup_ok &= speedup >= 5.0;

        t.row(vec![
            label.to_string(),
            fmt_secs(cold_build),
            fmt_secs(write_secs),
            format!("{:.1}", meta.total_bytes as f64 / (1 << 20) as f64),
            fmt_secs(load_secs),
            format!("{speedup:.1}x"),
            backend_identical.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("backend", Json::str(label)),
            ("partitions", Json::num(cold.num_partitions() as f64)),
            ("cold_build_secs", Json::num(cold_build)),
            ("write_secs", Json::num(write_secs)),
            ("snapshot_bytes", Json::num(meta.total_bytes as f64)),
            ("load_secs", Json::num(load_secs)),
            ("speedup", Json::num(speedup)),
            ("identical", Json::Bool(backend_identical)),
        ]));
    }

    // `SnapshotMeta::read` inspects without loading payloads — surface it
    // so the experiment also exercises the cheap-introspection path.
    let meta_line = match koios_store::SnapshotMeta::read(&dir.join("parted.ksnap")) {
        Ok(m) => format!(
            "meta-only read: v{}, {}, {} sections, {} sets / {} tokens",
            m.format_version,
            m.layout.describe(),
            m.sections.len(),
            m.num_sets,
            m.vocab_size
        ),
        Err(e) => format!("meta-only read failed: {e}"),
    };

    // Shared encoder, same as `partitioned`/`serving` — CI greps
    // `"identical":true` and `"speedup_ok":true`.
    let json = Json::obj([
        ("experiment", Json::str("snapshot")),
        ("scale", Json::num(hc.scale)),
        ("k", Json::num(hc.k as f64)),
        ("alpha", Json::num(hc.alpha)),
        ("queries", Json::num(queries.len() as f64)),
        ("generation_secs", Json::num(gen_secs)),
        ("identical", Json::Bool(identical)),
        ("speedup_ok", Json::Bool(speedup_ok)),
        ("rows", Json::Arr(json_rows)),
    ])
    .encode()
        + "\n";
    let json_note = match std::fs::write(json_path, &json) {
        Ok(()) => format!("rows written to {}", json_path.display()),
        Err(e) => format!("could not write {}: {e}", json_path.display()),
    };

    format!(
        "Snapshot warm start — cold build (corpus generation + index build) vs\n\
         `koios-store` load, verified over {} queries (k={}, α={}; reloaded hits\n\
         byte-identical on both backends: {identical}; load ≥5x faster: {speedup_ok}).\n\
         {meta_line}.\n{json_note}.\n{}",
        queries.len(),
        hc.k,
        hc.alpha,
        t.render()
    )
}

/// Live mutation under load: a writer streams `CorpusOp` batches into a
/// mutable service while reader threads query it continuously. Measures
/// ingest throughput and the query rate sustained during the churn, and
/// verifies the two hard guarantees of the mutability layer: **zero
/// dropped requests** across every backend swap, and a final state
/// **byte-identical** to a cold engine that replays the same script in
/// one sitting. A snapshot → delta-append → warm-restore leg checks that
/// persistence reproduces the same answers. CI greps `"identical":true`
/// and `"zero_drops":true` in `BENCH_live.json`.
pub fn live(hc: &HarnessConfig) -> String {
    live_with_output(hc, std::path::Path::new("BENCH_live.json"))
}

/// [`live`] with an explicit JSON artifact path (tests write to a temp
/// location instead of the working directory).
pub fn live_with_output(hc: &HarnessConfig, json_path: &std::path::Path) -> String {
    use koios_core::{cosine_factory, MutableEngine};
    use koios_embed::ops::CorpusOp;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let repo = Arc::new(run.corpus.repository.clone());
    let emb = Arc::new(run.corpus.embeddings.clone());
    let queries: Vec<Vec<TokenId>> = run
        .benchmark
        .queries
        .iter()
        .map(|q| q.tokens.clone())
        .collect();

    // A deterministic op script over the profile's own vocabulary: ~2/3
    // inserts, 1/3 removes of sets that are provably live at that point.
    let total_ops = 1200usize;
    let base = repo.num_sets() as u32;
    let mut ops = Vec::with_capacity(total_ops);
    let mut live_ids: Vec<u32> = (0..base).collect();
    let mut next_id = base;
    let vocab = repo.vocab_size();
    let mut i = 0usize;
    while ops.len() < total_ops {
        let len = 3 + (i * 7) % 8;
        let tokens: Vec<String> = (0..len)
            .map(|j| {
                repo.token_str(TokenId(((i * 131 + j * 31) % vocab) as u32))
                    .to_string()
            })
            .collect();
        ops.push(CorpusOp::insert(&format!("bench-live-{i}"), tokens));
        live_ids.push(next_id);
        next_id += 1;
        if i % 3 == 2 {
            let victim = live_ids.swap_remove((i * 13) % live_ids.len());
            ops.push(CorpusOp::remove(SetId(victim)));
        }
        i += 1;
    }
    let inserts = ops.iter().filter(|o| o.is_insert()).count();

    let readers = 4usize;
    let batch_size = 20usize;
    let mut t = TextTable::new(vec![
        "backend",
        "ops",
        "batches",
        "ingest ops/s",
        "queries during churn",
        "dropped",
        "identical",
    ]);
    let mut json_rows: Vec<Json> = Vec::new();
    let mut identical = true;
    let mut zero_drops = true;
    for (label, partitions) in [("single", 1usize), ("partitioned", hc.partitions.max(1))] {
        let cfg = hc
            .koios_config()
            .with_token_cache(Arc::new(TokenKnnCache::new(16 << 20)));
        let build = |cfg: KoiosConfig| -> Result<MutableEngine, koios_store::StoreError> {
            if partitions == 1 {
                MutableEngine::single(
                    Arc::clone(&repo),
                    Some(Arc::clone(&emb)),
                    cfg,
                    cosine_factory(),
                )
            } else {
                MutableEngine::partitioned(
                    Arc::clone(&repo),
                    Some(Arc::clone(&emb)),
                    cfg,
                    partitions,
                    hc.seed,
                    cosine_factory(),
                )
            }
        };
        let engine = match build(cfg.clone()) {
            Ok(e) => e,
            Err(e) => return format!("Live — building {label} engine failed: {e}"),
        };
        let service = SearchService::from_mutable(
            engine,
            ServiceConfig::new()
                .with_workers(readers)
                .with_cache_capacity(256),
        );

        // Churn phase: readers hammer, the writer streams batches.
        let answered = AtomicU64::new(0);
        let dropped = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let mut ingest_secs = 0.0;
        let mut batches = 0usize;
        std::thread::scope(|sc| {
            for r in 0..readers {
                let service = &service;
                let queries = &queries;
                let answered = &answered;
                let dropped = &dropped;
                let done = &done;
                sc.spawn(move || {
                    let mut qi = r;
                    while !done.load(Ordering::Relaxed) {
                        let q = queries[qi % queries.len()].clone();
                        let resp = service.search(SearchRequest::new(q));
                        if resp.rejected {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        qi += 1;
                    }
                });
            }
            let t0 = std::time::Instant::now();
            for batch in ops.chunks(batch_size) {
                if let Err(e) = service.ingest(batch) {
                    done.store(true, Ordering::Relaxed);
                    panic!("live ingest rejected a valid batch: {e}");
                }
                batches += 1;
            }
            ingest_secs = t0.elapsed().as_secs_f64();
            done.store(true, Ordering::Relaxed);
        });

        // Cold replay of the same script, then byte-identical probes over
        // the benchmark queries against the served state.
        let mut cold = match build(cfg) {
            Ok(e) => e,
            Err(e) => return format!("Live — rebuilding {label} engine failed: {e}"),
        };
        if let Err(e) = cold.apply(&ops) {
            return format!("Live — cold replay on {label} failed: {e}");
        }
        let cold_backend = cold.backend();
        let live_backend = service.backend();
        let mut backend_identical =
            live_backend.repository_arc().num_sets() == cold.repository().num_sets();
        backend_identical &= queries
            .iter()
            .all(|q| live_backend.search(q).hits == cold_backend.search(q).hits);

        // Persistence leg: base write, one delta batch, warm restore.
        let dir = std::env::temp_dir().join(format!("koios-bench-live-{}", std::process::id()));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return format!("Live — could not create {}: {e}", dir.display());
        }
        let path = dir.join(format!("{label}.ksnap"));
        let _ = std::fs::remove_file(&path);
        let delta_batch = [CorpusOp::insert(
            "bench-live-delta",
            ["bench", "delta", "probe"],
        )];
        let roundtrip = service
            .snapshot_to(&path)
            .and_then(|_| service.ingest(&delta_batch).map(|_| ()))
            .and_then(|()| service.snapshot_to(&path));
        match roundtrip {
            Ok(meta) => {
                backend_identical &= meta.deltas.len() == 1;
                match SearchService::from_snapshot(
                    &path,
                    hc.koios_config(),
                    ServiceConfig::new().with_workers(1),
                ) {
                    Ok(warm) => {
                        let warm_backend = warm.backend();
                        backend_identical &= queries.iter().all(|q| {
                            warm_backend.search(q).hits == service.backend().search(q).hits
                        });
                    }
                    Err(e) => return format!("Live — warm restore of {label} failed: {e}"),
                }
            }
            Err(e) => return format!("Live — delta snapshot of {label} failed: {e}"),
        }

        identical &= backend_identical;
        let drops = dropped.load(Ordering::Relaxed);
        zero_drops &= drops == 0;
        let st = service.stats();
        let ops_per_sec = ops.len() as f64 / ingest_secs.max(1e-9);
        t.row(vec![
            label.to_string(),
            ops.len().to_string(),
            batches.to_string(),
            format!("{ops_per_sec:.0}"),
            answered.load(Ordering::Relaxed).to_string(),
            drops.to_string(),
            backend_identical.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("backend", Json::str(label)),
            ("partitions", Json::num(partitions as f64)),
            ("ops", Json::num(ops.len() as f64)),
            ("inserts", Json::num(inserts as f64)),
            ("removes", Json::num((ops.len() - inserts) as f64)),
            ("batches", Json::num(batches as f64)),
            ("ingest_secs", Json::num(ingest_secs)),
            ("ops_per_sec", Json::num(ops_per_sec)),
            (
                "queries_during_churn",
                Json::num(answered.load(Ordering::Relaxed) as f64),
            ),
            ("dropped", Json::num(drops as f64)),
            ("final_epoch", Json::num(st.engine_epoch as f64)),
            ("sets_added", Json::num(st.sets_added as f64)),
            ("sets_removed", Json::num(st.sets_removed as f64)),
            ("identical", Json::Bool(backend_identical)),
        ]));
    }

    let json = Json::obj([
        ("experiment", Json::str("live")),
        ("scale", Json::num(hc.scale)),
        ("k", Json::num(hc.k as f64)),
        ("alpha", Json::num(hc.alpha)),
        ("queries", Json::num(queries.len() as f64)),
        ("total_ops", Json::num(ops.len() as f64)),
        ("identical", Json::Bool(identical)),
        ("zero_drops", Json::Bool(zero_drops)),
        ("rows", Json::Arr(json_rows)),
    ])
    .encode()
        + "\n";
    let json_note = match std::fs::write(json_path, &json) {
        Ok(()) => format!("rows written to {}", json_path.display()),
        Err(e) => format!("could not write {}: {e}", json_path.display()),
    };

    format!(
        "Live mutation under load — {} ops streamed through a mutable service\n\
         while {readers} reader threads query (k={}, α={}). Mutated state\n\
         byte-identical to a cold replay on both backends: {identical};\n\
         zero dropped requests: {zero_drops}; delta snapshot round-trip verified.\n\
         {json_note}.\n{}",
        ops.len(),
        hc.k,
        hc.alpha,
        t.render()
    )
}

/// DESIGN §2 ablation: sound row-max iUB vs the paper's greedy iUB.
pub fn ablation(hc: &HarnessConfig) -> String {
    let profile = profiles::opendata(hc.scale);
    let run = hc.profile_run(profile);
    let mut t = TextTable::new(vec![
        "ub mode",
        "avg time",
        "refine pruned%",
        "postproc sets",
        "bucket moves",
    ]);
    let mut score_sets: Vec<Vec<f64>> = Vec::new();
    for (label, mode, iub) in [
        ("sound-rowmax", UbMode::SoundRowMax, true),
        ("paper-greedy", UbMode::PaperGreedy, true),
        ("iub-off", UbMode::SoundRowMax, false),
    ] {
        let mut cfg = KoiosConfig::new(hc.k, hc.alpha).with_ub_mode(mode);
        cfg.iub_filter = iub;
        cfg.no_em_filter = false; // exact scores for the agreement check
        cfg.time_budget = Some(hc.timeout);
        let outcomes = run_single(&run, cfg);
        let time = avg(outcomes
            .iter()
            .map(|o| o.result.stats.response_time().as_secs_f64()));
        let pruned = avg(outcomes
            .iter()
            .map(|o| o.result.stats.refinement_prune_ratio()));
        let post = avg(outcomes
            .iter()
            .map(|o| o.result.stats.to_postprocess as f64));
        let moves = avg(outcomes.iter().map(|o| o.result.stats.bucket_moves as f64));
        t.row(vec![
            label.to_string(),
            fmt_secs(time),
            pct(pruned),
            format!("{post:.0}"),
            format!("{moves:.0}"),
        ]);
        score_sets.push(
            outcomes
                .iter()
                .flat_map(|o| o.result.hits.iter().map(|h| h.score.ub()))
                .collect(),
        );
    }
    let agree = score_sets.iter().skip(1).all(|s| {
        s.len() == score_sets[0].len()
            && s.iter()
                .zip(&score_sets[0])
                .all(|(a, b)| (a - b).abs() < 1e-6)
    });
    format!(
        "Ablation (DESIGN §2) — upper-bound rules on OpenData-like (k={}, α={}).\nAll modes returned identical top-k scores: {}.\n{}",
        hc.k,
        hc.alpha,
        agree,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: 0.01,
            k: 3,
            alpha: 0.8,
            partitions: 2,
            queries_per_interval: 1,
            timeout: Duration::from_secs(10),
            seed: 1,
        }
    }

    #[test]
    fn table1_renders_four_rows() {
        let out = table1(&tiny());
        assert!(out.contains("dblp"));
        assert!(out.contains("wdc"));
        assert_eq!(out.lines().count(), 7); // title + header + sep + 4 rows
    }

    #[test]
    fn table2_and_3_render() {
        let hc = tiny();
        let t2 = table2(&hc);
        assert!(t2.contains("iUB-Filter"));
        let t3 = table3(&hc);
        assert!(t3.contains("speedup"));
    }

    #[test]
    fn interval_tables_render() {
        let hc = tiny();
        assert!(table4(&hc).contains("Candidates"));
        assert!(fig8(&hc).contains("intersection"));
    }

    #[test]
    fn token_cache_identical_and_renders() {
        let out = token_cache(&tiny());
        assert!(out.contains("identical: true"), "{out}");
        assert!(out.contains("warm"));
        assert!(out.contains("hit rate"));
    }

    #[test]
    fn partitioned_serving_is_identical_and_renders() {
        let dir = std::env::temp_dir().join("koios-bench-partitioned-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("BENCH_partitioned.json");
        let out = partitioned_with_output(&tiny(), &json_path);
        assert!(
            out.contains("identical to the 1-shard reference: true"),
            "{out}"
        );
        assert!(out.contains("qps"));
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"experiment\":\"partitioned\""));
        assert!(json.contains("\"identical\":true"));
        // Every cell scraped its service registry into the artifact.
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"stage_refine\""));
        assert!(json.contains("\"queue_wait\""));
    }

    #[test]
    fn serving_over_http_is_identical_and_renders() {
        let dir = std::env::temp_dir().join("koios-bench-serving-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("BENCH_serving.json");
        let out = serving_with_output(&tiny(), &json_path);
        assert!(
            out.contains("identical to in-process search: true"),
            "{out}"
        );
        assert!(out.contains("p50 latency"));
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"experiment\":\"serving\""));
        assert!(json.contains("\"identical\":true"));
        assert!(json.contains("\"p99_ms\""));
        // Telemetry scrape + slow-query log ride along in the artifact.
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"stage_refine\""));
        assert!(json.contains("\"queue_wait\""));
        assert!(json.contains("\"slow_query_log\""));
        assert!(json_path.with_extension("slow.jsonl").exists());
        assert!(out.contains("service-side split"), "{out}");
        // The tail-sampler summary rides along too.
        assert!(json.contains("\"traces\""));
        assert!(json.contains("\"sampled_pct\""));
    }

    #[test]
    fn trace_overhead_ab_is_identical_and_renders() {
        let dir = std::env::temp_dir().join("koios-bench-trace-overhead-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("BENCH_trace_overhead.json");
        let out = trace_overhead_with_output(&tiny(), &json_path);
        assert!(out.contains("identical hits: true"), "{out}");
        assert!(out.contains("overhead_ok="), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"experiment\":\"trace_overhead\""));
        assert!(json.contains("\"identical\":true"));
        assert!(json.contains("\"overhead_pct\""));
        assert!(json.contains("\"baseline_noise_pct\""));
        assert!(json.contains("\"overhead_ok\""));
        // The 2%-or-noise gate itself is asserted by the CI smoke run at a
        // larger scale; a unit-test corpus is too small for stable ratios.
    }

    #[test]
    fn snapshot_roundtrip_is_identical_and_renders() {
        let dir = std::env::temp_dir().join("koios-bench-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("BENCH_store.json");
        let out = snapshot_with_output(&tiny(), &json_path);
        assert!(
            out.contains("byte-identical on both backends: true"),
            "{out}"
        );
        assert!(out.contains("meta-only read: v2"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"experiment\":\"snapshot\""));
        assert!(json.contains("\"identical\":true"));
        assert!(json.contains("\"backend\":\"partitioned\""));
        // The 5x speedup bar is asserted by the CI smoke gate at a larger
        // scale, not here: a unit-test corpus is too small for stable
        // wall-clock ratios.
    }

    #[test]
    fn live_mutation_is_identical_and_renders() {
        let dir = std::env::temp_dir().join("koios-bench-live-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("BENCH_live.json");
        let out = live_with_output(&tiny(), &json_path);
        assert!(
            out.contains("byte-identical to a cold replay on both backends: true"),
            "{out}"
        );
        assert!(out.contains("zero dropped requests: true"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"experiment\":\"live\""));
        assert!(json.contains("\"identical\":true"));
        assert!(json.contains("\"zero_drops\":true"));
        assert!(json.contains("\"backend\":\"partitioned\""));
    }

    #[test]
    fn silkmoth_and_ablation_render() {
        let hc = tiny();
        let s = silkmoth(&hc);
        assert!(s.contains("silkmoth-syntactic"));
        let a = ablation(&hc);
        assert!(a.contains("sound-rowmax"));
        assert!(a.contains("identical top-k scores: true"), "{a}");
    }
}
