//! Minimal fixed-width text tables for harness output.

/// A text table with a header row and aligned columns.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>width$}", width = widths[i]));
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 0.001 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All rows share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(pct(0.955), "95.5%");
    }
}
