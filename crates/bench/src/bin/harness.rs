//! The Koios experiment harness.
//!
//! Regenerates every table and figure of the paper's evaluation (§VIII) on
//! the scaled synthetic profiles. Run it in release mode:
//!
//! ```text
//! cargo run --release -p koios-bench --bin harness -- all
//! cargo run --release -p koios-bench --bin harness -- table3 --scale 0.3
//! ```
//!
//! Subcommands: `table1 table2 table3 table4 table5 fig5 fig6 fig7 fig8
//! silkmoth ablation token_cache partitioned serving trace_overhead
//! profile_overhead snapshot live all`.
//! (`partitioned`, `serving`, `trace_overhead`, `profile_overhead`,
//! `snapshot` and `live` also write `BENCH_partitioned.json` /
//! `BENCH_serving.json` / `BENCH_trace_overhead.json` /
//! `BENCH_profile.json` / `BENCH_store.json` / `BENCH_live.json` to the
//! working directory.) Options: `--scale F`
//! (corpus scale, default 0.2), `--k N`, `--alpha F`, `--partitions N`,
//! `--queries N` (per interval), `--timeout SECS`, `--seed N`.

use koios_bench::experiments::{self, HarnessConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: harness <table1|table2|table3|table4|table5|fig5|fig6|fig7|fig8|silkmoth|ablation|token_cache|partitioned|serving|trace_overhead|profile_overhead|snapshot|live|all>\n\
         \x20       [--scale F] [--k N] [--alpha F] [--partitions N] [--queries N] [--timeout SECS] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> (Vec<String>, HarnessConfig) {
    let mut cfg = HarnessConfig::default();
    let mut cmds = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match a.as_str() {
            "--scale" => cfg.scale = take("--scale").parse().unwrap_or_else(|_| usage()),
            "--k" => cfg.k = take("--k").parse().unwrap_or_else(|_| usage()),
            "--alpha" => cfg.alpha = take("--alpha").parse().unwrap_or_else(|_| usage()),
            "--partitions" => {
                cfg.partitions = take("--partitions").parse().unwrap_or_else(|_| usage())
            }
            "--queries" => {
                cfg.queries_per_interval = take("--queries").parse().unwrap_or_else(|_| usage())
            }
            "--timeout" => {
                cfg.timeout =
                    Duration::from_secs(take("--timeout").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => cfg.seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            cmd if !cmd.starts_with('-') => cmds.push(cmd.to_string()),
            _ => usage(),
        }
    }
    if cmds.is_empty() {
        usage();
    }
    (cmds, cfg)
}

fn main() {
    let (cmds, cfg) = parse_args();
    let all = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "silkmoth",
        "ablation",
        "token_cache",
        "partitioned",
        "serving",
        "trace_overhead",
        "profile_overhead",
        "snapshot",
        "live",
    ];
    let selected: Vec<&str> = if cmds.iter().any(|c| c == "all") {
        all.to_vec()
    } else {
        cmds.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "koios harness — scale {}, k {}, alpha {}, partitions {}, {} queries/interval, {}s timeout\n",
        cfg.scale,
        cfg.k,
        cfg.alpha,
        cfg.partitions,
        cfg.queries_per_interval,
        cfg.timeout.as_secs()
    );
    for cmd in selected {
        let t0 = std::time::Instant::now();
        let out = match cmd {
            "table1" => experiments::table1(&cfg),
            "table2" => experiments::table2(&cfg),
            "table3" => experiments::table3(&cfg),
            "table4" => experiments::table4(&cfg),
            "table5" => experiments::table5(&cfg),
            "fig5" => experiments::fig5(&cfg),
            "fig6" => experiments::fig6(&cfg),
            "fig7" => experiments::fig7(&cfg),
            "fig8" => experiments::fig8(&cfg),
            "silkmoth" => experiments::silkmoth(&cfg),
            "ablation" => experiments::ablation(&cfg),
            "token_cache" => experiments::token_cache(&cfg),
            "partitioned" => experiments::partitioned(&cfg),
            "serving" => experiments::serving(&cfg),
            "trace_overhead" => experiments::trace_overhead(&cfg),
            "profile_overhead" => experiments::profile_overhead(&cfg),
            "snapshot" => experiments::snapshot(&cfg),
            "live" => experiments::live(&cfg),
            other => {
                eprintln!("unknown experiment: {other}");
                usage()
            }
        };
        println!("{out}");
        println!("[{cmd} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
