//! Randomized contract tests: every `ElementSimilarity` implementation
//! honours the Def. 1 contract — identity, symmetry, range, and `simα`
//! thresholding.
//!
//! Originally written with `proptest`; rewritten as seeded random-case
//! loops because the offline build environment cannot vendor the crate.

use koios_common::TokenId;
use koios_embed::repository::RepositoryBuilder;
use koios_embed::sim::*;
use koios_embed::synthetic::SyntheticEmbeddings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn build_providers(tokens: Vec<String>) -> (usize, Vec<Box<dyn ElementSimilarity>>) {
    let mut b = RepositoryBuilder::new();
    for t in &tokens {
        b.intern(t);
    }
    let repo = b.build();
    let n = repo.vocab_size();
    let emb = SyntheticEmbeddings::builder()
        .dimensions(16)
        .seed(7)
        .oov_fraction(0.2)
        .build(&repo);
    let providers: Vec<Box<dyn ElementSimilarity>> = vec![
        Box::new(CosineSimilarity::new(Arc::new(emb))),
        Box::new(QGramJaccard::new(&repo, 3)),
        Box::new(WordJaccard::new(&repo)),
        Box::new(EditSimilarity::new(&repo)),
        Box::new(EqualitySimilarity),
    ];
    (n, providers)
}

/// 2..8 distinct random strings over letters and spaces, length 0..=12.
fn random_tokens(rng: &mut StdRng) -> Vec<String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ";
    let n = rng.gen_range(2..8usize);
    let mut v: Vec<String> = (0..n)
        .map(|_| {
            let len = rng.gen_range(0..13usize);
            (0..len)
                .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
                .collect()
        })
        .collect();
    v.sort();
    v.dedup();
    if v.len() < 2 {
        v.push("fallback-token".to_string());
        v.push("other-token".to_string());
    }
    v
}

#[test]
fn contract_holds_for_all_providers() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for _ in 0..64 {
        let tokens = random_tokens(&mut rng);
        let alpha = rng.gen::<f64>();
        let (n, providers) = build_providers(tokens);
        for p in &providers {
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    let (ta, tb) = (TokenId(a), TokenId(b));
                    let s = p.sim(ta, tb);
                    assert!(s.is_finite(), "{}: sim not finite", p.name());
                    assert!(
                        (0.0..=1.0 + 1e-9).contains(&s),
                        "{}: sim out of range: {s}",
                        p.name()
                    );
                    let r = p.sim(tb, ta);
                    assert!((s - r).abs() < 1e-9, "{}: asymmetric", p.name());
                    if a == b {
                        assert_eq!(s, 1.0, "{}: identity violated", p.name());
                    }
                    let sa = p.sim_alpha(ta, tb, alpha);
                    if a == b {
                        assert_eq!(sa, 1.0);
                    } else if s >= alpha {
                        assert!((sa - s).abs() < 1e-12);
                    } else {
                        assert_eq!(sa, 0.0);
                    }
                }
            }
        }
    }
}

/// `fill_matrix` (the batched verification path) must agree cell-by-cell
/// with per-pair `sim_alpha` for every provider.
#[test]
fn fill_matrix_matches_per_pair() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for _ in 0..32 {
        let tokens = random_tokens(&mut rng);
        let alpha = rng.gen::<f64>();
        let (n, providers) = build_providers(tokens);
        let all: Vec<TokenId> = (0..n as u32).map(TokenId).collect();
        let (query, set) = all.split_at(n / 2);
        for p in &providers {
            let mut out = vec![0.0; query.len() * set.len()];
            p.fill_matrix(query, set, alpha, &mut out);
            for (i, &q) in query.iter().enumerate() {
                for (j, &t) in set.iter().enumerate() {
                    let want = p.sim_alpha(q, t, alpha);
                    let got = out[i * set.len() + j];
                    assert!(
                        (want - got).abs() < 1e-9,
                        "{}: cell ({i},{j}) {got} != {want}",
                        p.name()
                    );
                }
            }
        }
    }
}
