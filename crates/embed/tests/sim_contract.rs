//! Property tests: every `ElementSimilarity` implementation honours the
//! Def. 1 contract — identity, symmetry, range, and `simα` thresholding.

use koios_embed::repository::RepositoryBuilder;
use koios_embed::sim::*;
use koios_embed::synthetic::SyntheticEmbeddings;
use koios_common::TokenId;
use proptest::prelude::*;
use std::sync::Arc;

fn build_providers(tokens: Vec<String>) -> (usize, Vec<Box<dyn ElementSimilarity>>) {
    let mut b = RepositoryBuilder::new();
    for t in &tokens {
        b.intern(t);
    }
    let repo = b.build();
    let n = repo.vocab_size();
    let emb = SyntheticEmbeddings::builder()
        .dimensions(16)
        .seed(7)
        .oov_fraction(0.2)
        .build(&repo);
    let providers: Vec<Box<dyn ElementSimilarity>> = vec![
        Box::new(CosineSimilarity::new(Arc::new(emb))),
        Box::new(QGramJaccard::new(&repo, 3)),
        Box::new(WordJaccard::new(&repo)),
        Box::new(EditSimilarity::new(&repo)),
        Box::new(EqualitySimilarity),
    ];
    (n, providers)
}

fn token_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-zA-Z ]{0,12}", 2..8).prop_map(|mut v| {
        v.sort();
        v.dedup();
        if v.len() < 2 {
            v.push("fallback-token".to_string());
            v.push("other-token".to_string());
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn contract_holds_for_all_providers(tokens in token_strategy(), alpha in 0.0f64..1.0) {
        let (n, providers) = build_providers(tokens);
        for p in &providers {
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    let (ta, tb) = (TokenId(a), TokenId(b));
                    let s = p.sim(ta, tb);
                    prop_assert!(s.is_finite(), "{}: sim not finite", p.name());
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&s),
                        "{}: sim out of range: {s}", p.name());
                    let r = p.sim(tb, ta);
                    prop_assert!((s - r).abs() < 1e-9, "{}: asymmetric", p.name());
                    if a == b {
                        prop_assert_eq!(s, 1.0, "{}: identity violated", p.name());
                    }
                    let sa = p.sim_alpha(ta, tb, alpha);
                    if a == b {
                        prop_assert_eq!(sa, 1.0);
                    } else if s >= alpha {
                        prop_assert!((sa - s).abs() < 1e-12);
                    } else {
                        prop_assert_eq!(sa, 0.0);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `fill_matrix` (the batched verification path) must agree cell-by-cell
    /// with per-pair `sim_alpha` for every provider.
    #[test]
    fn fill_matrix_matches_per_pair(tokens in token_strategy(), alpha in 0.0f64..1.0) {
        let (n, providers) = build_providers(tokens);
        let all: Vec<TokenId> = (0..n as u32).map(TokenId).collect();
        let (query, set) = all.split_at(n / 2);
        for p in &providers {
            let mut out = vec![0.0; query.len() * set.len()];
            p.fill_matrix(query, set, alpha, &mut out);
            for (i, &q) in query.iter().enumerate() {
                for (j, &t) in set.iter().enumerate() {
                    let want = p.sim_alpha(q, t, alpha);
                    let got = out[i * set.len() + j];
                    prop_assert!((want - got).abs() < 1e-9,
                        "{}: cell ({i},{j}) {got} != {want}", p.name());
                }
            }
        }
    }
}
