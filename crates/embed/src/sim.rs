//! Pluggable element similarity functions.
//!
//! Def. 1 of the paper only requires `sim` to be symmetric, in `[0, 1]`, and
//! `1` for identical elements — notably *not* a metric (cosine of embeddings
//! violates the triangle inequality), which is what sets Koios apart from
//! SilkMoth-style filters. [`ElementSimilarity`] captures exactly that
//! contract; every search component is generic over it.

use crate::repository::Repository;
use crate::vectors::{dot, Embeddings};
use koios_common::TokenId;
use std::sync::Arc;

/// A symmetric element similarity over the interned vocabulary.
///
/// Contract (checked by the property tests in `tests/sim_contract.rs`):
/// * `sim(a, a) == 1.0` — identical elements always match perfectly, even
///   out-of-vocabulary ones (paper §V, out-of-vocabulary handling);
/// * `sim(a, b) == sim(b, a)`;
/// * `0.0 <= sim(a, b) <= 1.0` and never NaN.
pub trait ElementSimilarity: Send + Sync {
    /// The similarity of two tokens.
    fn sim(&self, a: TokenId, b: TokenId) -> f64;

    /// `simα`: the similarity if it reaches `alpha`, else 0 (Def. 1).
    /// Identical tokens score 1 regardless of `alpha`.
    fn sim_alpha(&self, a: TokenId, b: TokenId, alpha: f64) -> f64 {
        let s = self.sim(a, b);
        if s >= alpha {
            s
        } else {
            0.0
        }
    }

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Scores `q` against the whole vocabulary `0..vocab`, appending every
    /// `(token, sim)` with `sim ≥ alpha` — plus the self pair `(q, 1.0)` —
    /// to `out`. This is the token-index construction hot path; the default
    /// delegates to [`Self::sim`] per pair, and implementations with a
    /// columnar layout (embeddings) override it with a tight scan.
    fn scores_above(&self, q: TokenId, vocab: usize, alpha: f64, out: &mut Vec<(f64, TokenId)>) {
        for t in 0..vocab as u32 {
            let t = TokenId(t);
            if t == q {
                out.push((1.0, t));
                continue;
            }
            let s = self.sim(q, t);
            if s >= alpha {
                out.push((s, t));
            }
        }
    }

    /// Fills the row-major `simα` matrix between `query` (rows) and `set`
    /// (columns) — the verification hot path (one call per exact matching).
    /// The default delegates to [`Self::sim_alpha`] per cell.
    fn fill_matrix(&self, query: &[TokenId], set: &[TokenId], alpha: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), query.len() * set.len());
        for (i, &q) in query.iter().enumerate() {
            let row = &mut out[i * set.len()..(i + 1) * set.len()];
            for (j, &t) in set.iter().enumerate() {
                row[j] = self.sim_alpha(q, t, alpha);
            }
        }
    }
}

/// Cosine similarity of token embeddings (the paper's default `sim`).
///
/// Out-of-vocabulary tokens have similarity 0 to everything except
/// themselves; negative cosines are clamped to 0 to respect the `[0, 1]`
/// contract.
pub struct CosineSimilarity {
    emb: Arc<Embeddings>,
}

impl CosineSimilarity {
    /// Wraps an embedding table.
    pub fn new(emb: Arc<Embeddings>) -> Self {
        CosineSimilarity { emb }
    }

    /// The underlying embeddings.
    pub fn embeddings(&self) -> &Arc<Embeddings> {
        &self.emb
    }
}

impl ElementSimilarity for CosineSimilarity {
    fn sim(&self, a: TokenId, b: TokenId) -> f64 {
        if a == b {
            return 1.0;
        }
        self.emb.cosine(a, b).map_or(0.0, |c| c.clamp(0.0, 1.0))
    }

    fn name(&self) -> &'static str {
        "cosine-embedding"
    }

    fn scores_above(&self, q: TokenId, vocab: usize, alpha: f64, out: &mut Vec<(f64, TokenId)>) {
        let vocab = vocab.min(self.emb.vocab());
        let Some(qv) = self.emb.get(q) else {
            // Out-of-vocabulary query token: only the self pair matches.
            if q.idx() < vocab {
                out.push((1.0, q));
            }
            return;
        };
        // Tight columnar scan: unit vectors make cosine a dot product.
        for t in 0..vocab as u32 {
            let t = TokenId(t);
            if t == q {
                out.push((1.0, t));
                continue;
            }
            let Some(tv) = self.emb.get(t) else { continue };
            // Must agree bit-for-bit with `sim()` (which uses `dot`): the
            // refinement bounds assume stream weights equal matrix weights.
            let s = dot(qv, tv).clamp(0.0, 1.0);
            if s >= alpha {
                out.push((s, t));
            }
        }
    }

    fn fill_matrix(&self, query: &[TokenId], set: &[TokenId], alpha: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), query.len() * set.len());
        for (i, &q) in query.iter().enumerate() {
            let row = &mut out[i * set.len()..(i + 1) * set.len()];
            let qv = self.emb.get(q);
            for (j, &t) in set.iter().enumerate() {
                row[j] = if t == q {
                    1.0
                } else {
                    match (qv, self.emb.get(t)) {
                        (Some(a), Some(b)) => {
                            let s = dot(a, b).clamp(0.0, 1.0);
                            if s >= alpha {
                                s
                            } else {
                                0.0
                            }
                        }
                        _ => 0.0,
                    }
                };
            }
        }
    }
}

/// Strict equality: 1 iff the tokens are identical.
///
/// Semantic overlap under this similarity *is* vanilla overlap (Def. 1's
/// special case), which the integration tests exploit as an oracle.
pub struct EqualitySimilarity;

impl ElementSimilarity for EqualitySimilarity {
    fn sim(&self, a: TokenId, b: TokenId) -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "equality"
    }
}

/// Jaccard similarity of lowercase character q-grams (the fuzzy-overlap
/// element similarity used for the SilkMoth comparison, §VIII-B; `q = 3`
/// reproduces the paper's examples, e.g. `J(Blaine, Blain) = 3/4`).
pub struct QGramJaccard {
    q: usize,
    grams: Vec<Box<[u64]>>,
}

impl QGramJaccard {
    /// Precomputes gram sets for every token currently in the vocabulary.
    /// Tokens interned later are unknown to this instance — intern query
    /// strings first (see `Repository::intern_query_mut`).
    pub fn new(repo: &Repository, q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        let grams = (0..repo.vocab_size())
            .map(|i| gram_set(repo.token_str(TokenId(i as u32)), q))
            .collect();
        QGramJaccard { q, grams }
    }

    /// The configured gram length.
    pub fn q(&self) -> usize {
        self.q
    }

    fn set_of(&self, t: TokenId) -> &[u64] {
        self.grams.get(t.idx()).map(|g| &**g).unwrap_or(&[])
    }
}

/// Builds the sorted hash set of lowercase character q-grams of `s`.
/// Strings shorter than `q` contribute their whole text as a single gram.
fn gram_set(s: &str, q: usize) -> Box<[u64]> {
    let chars: Vec<char> = s.to_lowercase().chars().collect();
    let mut grams: Vec<u64> = if chars.len() < q {
        if chars.is_empty() {
            Vec::new()
        } else {
            vec![hash_chars(&chars)]
        }
    } else {
        chars.windows(q).map(hash_chars).collect()
    };
    grams.sort_unstable();
    grams.dedup();
    grams.into_boxed_slice()
}

fn hash_chars(cs: &[char]) -> u64 {
    // FNV-1a over the code points: cheap, deterministic, collision-safe
    // enough for gram-set Jaccard at vocabulary scale.
    let mut h = 0xcbf29ce484222325u64;
    for &c in cs {
        h ^= c as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Jaccard of two sorted slices.
fn sorted_jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

impl ElementSimilarity for QGramJaccard {
    fn sim(&self, a: TokenId, b: TokenId) -> f64 {
        if a == b {
            return 1.0;
        }
        sorted_jaccard(self.set_of(a), self.set_of(b))
    }

    fn name(&self) -> &'static str {
        "qgram-jaccard"
    }
}

/// Jaccard similarity of the lowercase words inside an element (SilkMoth's
/// default element similarity for multi-word set elements).
pub struct WordJaccard {
    words: Vec<Box<[u64]>>,
}

impl WordJaccard {
    /// Precomputes word sets for the current vocabulary.
    pub fn new(repo: &Repository) -> Self {
        let words = (0..repo.vocab_size())
            .map(|i| {
                let mut ws: Vec<u64> = repo
                    .token_str(TokenId(i as u32))
                    .to_lowercase()
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|w| !w.is_empty())
                    .map(|w| hash_chars(&w.chars().collect::<Vec<_>>()))
                    .collect();
                ws.sort_unstable();
                ws.dedup();
                ws.into_boxed_slice()
            })
            .collect();
        WordJaccard { words }
    }
}

impl ElementSimilarity for WordJaccard {
    fn sim(&self, a: TokenId, b: TokenId) -> f64 {
        if a == b {
            return 1.0;
        }
        let empty: &[u64] = &[];
        let wa = self.words.get(a.idx()).map(|w| &**w).unwrap_or(empty);
        let wb = self.words.get(b.idx()).map(|w| &**w).unwrap_or(empty);
        sorted_jaccard(wa, wb)
    }

    fn name(&self) -> &'static str {
        "word-jaccard"
    }
}

/// Normalised edit similarity: `1 − levenshtein(a, b) / max(|a|, |b|)`.
pub struct EditSimilarity {
    strings: Vec<Box<str>>,
}

impl EditSimilarity {
    /// Snapshots the current vocabulary strings.
    pub fn new(repo: &Repository) -> Self {
        let strings = (0..repo.vocab_size())
            .map(|i| repo.token_str(TokenId(i as u32)).into())
            .collect();
        EditSimilarity { strings }
    }
}

/// Levenshtein distance with a rolling single-row DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

impl ElementSimilarity for EditSimilarity {
    fn sim(&self, a: TokenId, b: TokenId) -> f64 {
        if a == b {
            return 1.0;
        }
        let empty = "";
        let sa = self.strings.get(a.idx()).map(|s| &**s).unwrap_or(empty);
        let sb = self.strings.get(b.idx()).map(|s| &**s).unwrap_or(empty);
        let max_len = sa.chars().count().max(sb.chars().count());
        if max_len == 0 {
            return 0.0;
        }
        1.0 - levenshtein(sa, sb) as f64 / max_len as f64
    }

    fn name(&self) -> &'static str {
        "edit-similarity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryBuilder;

    fn repo_with(tokens: &[&str]) -> (Repository, Vec<TokenId>) {
        let mut b = RepositoryBuilder::new();
        let ids: Vec<TokenId> = tokens.iter().map(|t| b.intern(t)).collect();
        (b.build(), ids)
    }

    #[test]
    fn qgram_matches_paper_examples() {
        let (repo, ids) = repo_with(&["Blaine", "Blain", "BigApple", "Appleton", "NewYorkCity"]);
        let j = QGramJaccard::new(&repo, 3);
        // Jaccard(Blaine, Blain) = 3/4.
        assert!((j.sim(ids[0], ids[1]) - 0.75).abs() < 1e-12);
        // Jaccard(BigApple, Appleton) = 1/3.
        assert!((j.sim(ids[2], ids[3]) - 1.0 / 3.0).abs() < 1e-12);
        // Jaccard(BigApple, NewYorkCity) = 0.
        assert_eq!(j.sim(ids[2], ids[4]), 0.0);
    }

    #[test]
    fn qgram_identity_and_symmetry() {
        let (repo, ids) = repo_with(&["alpha", "alphas"]);
        let j = QGramJaccard::new(&repo, 3);
        assert_eq!(j.sim(ids[0], ids[0]), 1.0);
        assert_eq!(j.sim(ids[0], ids[1]), j.sim(ids[1], ids[0]));
    }

    #[test]
    fn qgram_short_strings() {
        let (repo, ids) = repo_with(&["ab", "ab2", "xy"]);
        let j = QGramJaccard::new(&repo, 3);
        // Both shorter than q: single-gram sets; different text → 0.
        assert_eq!(j.sim(ids[0], ids[2]), 0.0);
        assert!(j.sim(ids[0], ids[1]) >= 0.0);
    }

    #[test]
    fn equality_is_vanilla() {
        let (_, ids) = repo_with(&["a", "b"]);
        let e = EqualitySimilarity;
        assert_eq!(e.sim(ids[0], ids[0]), 1.0);
        assert_eq!(e.sim(ids[0], ids[1]), 0.0);
        assert_eq!(e.sim_alpha(ids[0], ids[1], 0.5), 0.0);
    }

    #[test]
    fn sim_alpha_thresholds() {
        let (repo, ids) = repo_with(&["Blaine", "Blain"]);
        let j = QGramJaccard::new(&repo, 3);
        assert_eq!(j.sim_alpha(ids[0], ids[1], 0.8), 0.0); // 0.75 < 0.8
        assert!((j.sim_alpha(ids[0], ids[1], 0.7) - 0.75).abs() < 1e-12);
        // Identical tokens pass any threshold.
        assert_eq!(j.sim_alpha(ids[0], ids[0], 0.99), 1.0);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn edit_similarity_normalises() {
        let (repo, ids) = repo_with(&["kitten", "sitting", "kitten2"]);
        let e = EditSimilarity::new(&repo);
        assert!((e.sim(ids[0], ids[1]) - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(e.sim(ids[0], ids[0]), 1.0);
        assert!(e.sim(ids[0], ids[2]) > e.sim(ids[0], ids[1]));
    }

    #[test]
    fn word_jaccard_on_phrases() {
        let (repo, ids) = repo_with(&["new york city", "york city", "los angeles"]);
        let w = WordJaccard::new(&repo);
        assert!((w.sim(ids[0], ids[1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.sim(ids[0], ids[2]), 0.0);
    }

    #[test]
    fn cosine_oov_matches_only_itself() {
        let (_, ids) = repo_with(&["a", "b"]);
        let emb = Embeddings::new(4, 2); // nobody has a vector
        let c = CosineSimilarity::new(Arc::new(emb));
        assert_eq!(c.sim(ids[0], ids[0]), 1.0);
        assert_eq!(c.sim(ids[0], ids[1]), 0.0);
    }

    #[test]
    fn cosine_clamps_negative() {
        let (_, ids) = repo_with(&["a", "b"]);
        let mut emb = Embeddings::new(2, 2);
        emb.set(ids[0], &[1.0, 0.0]);
        emb.set(ids[1], &[-1.0, 0.0]);
        let c = CosineSimilarity::new(Arc::new(emb));
        assert_eq!(c.sim(ids[0], ids[1]), 0.0);
    }
}
