//! Synthetic clustered embeddings — the FastText substitute.
//!
//! The paper's experiments use pre-trained FastText vectors; those are not
//! available offline, so we generate vectors with the *structure Koios
//! depends on* (DESIGN.md §3): tokens are partitioned into semantic
//! clusters; a token's vector is its cluster centroid plus isotropic
//! Gaussian noise, re-normalised. Within a cluster the expected cosine is
//! `1/(1+σ²)` (σ = [`SyntheticEmbeddings::noise`]), across clusters it
//! concentrates around `0 ± 1/√dim`, so an `α ≈ 0.8` threshold separates
//! "semantic neighbours" from noise exactly like the real embeddings do.
//!
//! Determinism: every cluster centroid and every token vector is generated
//! from an RNG stream seeded by `(seed, cluster)` / `(seed, token)`, so the
//! output is independent of generation order and stable across runs.

use crate::rand_util::{gaussian_vec, stream_seed};
use crate::repository::Repository;
use crate::vectors::Embeddings;
use koios_common::TokenId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for synthetic clustered embeddings.
///
/// ```
/// use koios_embed::repository::RepositoryBuilder;
/// use koios_embed::synthetic::SyntheticEmbeddings;
///
/// let mut b = RepositoryBuilder::new();
/// b.add_set("s", ["dog", "hound", "car"]);
/// let mut repo = b.build();
/// let emb = SyntheticEmbeddings::builder()
///     .dimensions(16)
///     .seed(1)
///     .synonyms(&mut repo, &[&["dog", "hound"]])
///     .build(&repo);
/// let dog = repo.token_id("dog").unwrap();
/// let hound = repo.token_id("hound").unwrap();
/// let car = repo.token_id("car").unwrap();
/// assert!(emb.cosine(dog, hound).unwrap() > emb.cosine(dog, car).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticEmbeddings {
    dim: usize,
    seed: u64,
    clusters: Option<usize>,
    noise: f64,
    synonym_noise: f64,
    oov_fraction: f64,
    groups: Vec<Vec<TokenId>>,
}

impl Default for SyntheticEmbeddings {
    fn default() -> Self {
        SyntheticEmbeddings {
            dim: 64,
            seed: 42,
            clusters: None,
            noise: 0.35,
            synonym_noise: 0.2,
            oov_fraction: 0.0,
            groups: Vec::new(),
        }
    }
}

impl SyntheticEmbeddings {
    /// Starts a builder with defaults (64 dims, σ = 0.35, no OOV).
    pub fn builder() -> Self {
        Self::default()
    }

    /// Sets the embedding dimensionality (paper: 300; default here: 64).
    pub fn dimensions(mut self, dim: usize) -> Self {
        assert!(dim > 0);
        self.dim = dim;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of background clusters (default: `vocab / 8`,
    /// at least 1).
    pub fn clusters(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.clusters = Some(n);
        self
    }

    /// Sets the within-cluster noise σ. Expected within-cluster cosine is
    /// `1/(1+σ²)`: σ = 0.35 → ≈ 0.89, σ = 0.5 → 0.8.
    pub fn noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.noise = sigma;
        self
    }

    /// Sets the noise for explicitly declared synonym groups (tighter than
    /// background clusters by default).
    pub fn synonym_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.synonym_noise = sigma;
        self
    }

    /// Fraction of tokens left without a vector (out-of-vocabulary); the
    /// paper keeps sets with ≥70% coverage, i.e. up to 30% OOV.
    pub fn oov_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.oov_fraction = f;
        self
    }

    /// Declares groups of strings that must be mutual semantic neighbours
    /// (each group gets its own tight cluster). Strings are interned into
    /// `repo` so they can be queried even when absent from every set.
    pub fn synonyms(mut self, repo: &mut Repository, groups: &[&[&str]]) -> Self {
        for group in groups {
            let ids = group
                .iter()
                .map(|s| repo.interner_mut().intern(s))
                .collect();
            self.groups.push(ids);
        }
        self
    }

    /// Like [`Self::synonyms`] for already-interned tokens.
    pub fn synonym_tokens(mut self, groups: Vec<Vec<TokenId>>) -> Self {
        self.groups.extend(groups);
        self
    }

    /// Generates the embedding table for the current vocabulary of `repo`.
    pub fn build(&self, repo: &Repository) -> Embeddings {
        self.build_with_clusters(repo).0
    }

    /// Generates the embeddings plus the cluster assignment of each token
    /// (`None` = out-of-vocabulary). Used by the data generators to build
    /// semantically coherent sets.
    pub fn build_with_clusters(&self, repo: &Repository) -> (Embeddings, Vec<Option<u32>>) {
        let vocab = repo.vocab_size();
        let n_groups = self.groups.len();
        let n_bg = self.clusters.unwrap_or((vocab / 8).max(1));
        let mut assignment: Vec<Option<u32>> = vec![None; vocab];
        let mut forced = vec![false; vocab];

        // Synonym groups take cluster ids [0, n_groups).
        for (g, members) in self.groups.iter().enumerate() {
            for &t in members {
                assignment[t.idx()] = Some(g as u32);
                forced[t.idx()] = true;
            }
        }
        // Everything else: OOV with probability `oov_fraction`, otherwise a
        // uniform background cluster in [n_groups, n_groups + n_bg).
        for t in 0..vocab {
            if forced[t] {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, 0x0A55 ^ t as u64));
            if rng.gen::<f64>() < self.oov_fraction {
                assignment[t] = None;
            } else {
                assignment[t] = Some((n_groups + rng.gen_range(0..n_bg)) as u32);
            }
        }

        let sigma_of = |cluster: u32| {
            if (cluster as usize) < n_groups {
                self.synonym_noise
            } else {
                self.noise
            }
        };
        let emb = clustered_embeddings(self.dim, &assignment, sigma_of, self.seed);
        (emb, assignment)
    }
}

/// Low-level generator: one unit vector per token from
/// `normalize(centroid[cluster] + σ(cluster)·gauss)`.
///
/// `assignment[t] = None` leaves token `t` out-of-vocabulary.
pub fn clustered_embeddings(
    dim: usize,
    assignment: &[Option<u32>],
    sigma_of: impl Fn(u32) -> f64,
    seed: u64,
) -> Embeddings {
    let mut emb = Embeddings::new(dim, assignment.len());
    let mut centroid_cache: std::collections::HashMap<u32, Vec<f64>> =
        std::collections::HashMap::new();
    let mut noise = vec![0.0f64; dim];
    let mut v = vec![0.0f64; dim];
    for (t, &cluster) in assignment.iter().enumerate() {
        let Some(c) = cluster else { continue };
        let centroid = centroid_cache.entry(c).or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, 0xC1u64 << 32 | c as u64));
            let mut cv = vec![0.0f64; dim];
            gaussian_vec(&mut rng, &mut cv);
            let norm = cv.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            cv.iter_mut().for_each(|x| *x /= norm);
            cv
        });
        let sigma = sigma_of(c);
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, 0x70u64 << 40 | t as u64));
        gaussian_vec(&mut rng, &mut noise);
        // Per-dimension noise scaled so the *total* perturbation norm is
        // ≈ sigma (noise vector has expected norm √dim before scaling).
        let scale = sigma / (dim as f64).sqrt();
        for i in 0..dim {
            v[i] = centroid[i] + noise[i] * scale;
        }
        emb.set(TokenId(t as u32), &v);
    }
    emb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryBuilder;

    fn repo_with_tokens(n: usize) -> Repository {
        let mut b = RepositoryBuilder::new();
        for i in 0..n {
            b.intern(&format!("tok{i}"));
        }
        b.build()
    }

    #[test]
    fn deterministic_across_builds() {
        let repo = repo_with_tokens(50);
        let b = SyntheticEmbeddings::builder().dimensions(16).seed(9);
        let e1 = b.clone().build(&repo);
        let e2 = b.build(&repo);
        for t in 0..50 {
            assert_eq!(e1.get(TokenId(t)), e2.get(TokenId(t)));
        }
    }

    #[test]
    fn within_cluster_cosine_beats_cross_cluster() {
        let repo = repo_with_tokens(200);
        let (emb, clusters) = SyntheticEmbeddings::builder()
            .dimensions(64)
            .clusters(10)
            .noise(0.35)
            .seed(3)
            .build_with_clusters(&repo);
        let mut within = Vec::new();
        let mut cross = Vec::new();
        for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let (Some(ca), Some(cb)) = (clusters[a as usize], clusters[b as usize]) else {
                    continue;
                };
                if let Some(c) = emb.cosine(TokenId(a), TokenId(b)) {
                    if ca == cb {
                        within.push(c);
                    } else {
                        cross.push(c);
                    }
                }
            }
        }
        assert!(!within.is_empty() && !cross.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mw = mean(&within);
        let mc = mean(&cross);
        assert!(
            mw > 0.75,
            "within-cluster mean cosine too low: {mw} (σ=0.35 ⇒ ≈0.89)"
        );
        assert!(mc < 0.4, "cross-cluster mean cosine too high: {mc}");
    }

    #[test]
    fn oov_fraction_respected() {
        let repo = repo_with_tokens(500);
        let emb = SyntheticEmbeddings::builder()
            .dimensions(8)
            .oov_fraction(0.3)
            .seed(5)
            .build(&repo);
        let cov = emb.coverage();
        assert!((cov - 0.7).abs() < 0.08, "coverage {cov} far from 0.7");
    }

    #[test]
    fn synonym_groups_are_tight_and_interned() {
        let mut b = RepositoryBuilder::new();
        b.add_set("s", ["LA", "Boston"]);
        let mut repo = b.build();
        let emb = SyntheticEmbeddings::builder()
            .dimensions(32)
            .seed(11)
            .synonyms(&mut repo, &[&["NewYorkCity", "BigApple"]])
            .build(&repo);
        let nyc = repo.token_id("NewYorkCity").expect("interned by synonyms");
        let big = repo.token_id("BigApple").unwrap();
        let la = repo.token_id("LA").unwrap();
        let c_syn = emb.cosine(nyc, big).unwrap();
        assert!(c_syn > 0.85, "synonyms should be close, got {c_syn}");
        let c_other = emb.cosine(nyc, la).unwrap();
        assert!(c_syn > c_other);
    }

    #[test]
    fn vectors_are_unit_length() {
        let repo = repo_with_tokens(20);
        let emb = SyntheticEmbeddings::builder().dimensions(16).build(&repo);
        for t in 0..20u32 {
            if let Some(v) = emb.get(TokenId(t)) {
                let n: f64 = v.iter().map(|x| (*x as f64) * (*x as f64)).sum();
                assert!((n - 1.0).abs() < 1e-5);
            }
        }
    }
}
