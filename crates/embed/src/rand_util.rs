//! Small sampling helpers on top of `rand`.
//!
//! The workspace avoids the `rand_distr` dependency (not on the offline
//! allow-list); the two distributions needed — standard Gaussians for
//! embedding noise and Zipf for token frequencies (in `koios-datagen`) —
//! are easy to implement directly.

use rand::Rng;

/// Draws a standard normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills `out` with i.i.d. standard normal samples.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = gaussian(rng);
    }
}

/// Derives a decorrelated stream seed from a base seed and a stream index
/// (splitmix64 finalizer), so per-token / per-cluster RNGs are independent
/// of generation order.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn gaussian_is_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(gaussian(&mut rng).is_finite());
        }
    }

    #[test]
    fn stream_seeds_differ() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, stream_seed(42, 0));
    }
}
