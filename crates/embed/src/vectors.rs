//! Dense embedding storage.
//!
//! [`Embeddings`] stores one optional unit vector per vocabulary token,
//! aligned with [`TokenId`]s. Vectors are L2-normalised on insertion so
//! cosine similarity reduces to a dot product — the layout a Faiss-style
//! inner-product index would use.

use koios_common::{HeapSize, TokenId};

/// A vocabulary-aligned table of optional unit vectors.
#[derive(Debug, Clone)]
pub struct Embeddings {
    dim: usize,
    data: Vec<f32>,
    present: Vec<bool>,
}

impl Embeddings {
    /// Creates an empty table for `vocab` tokens of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, vocab: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Embeddings {
            dim,
            data: vec![0.0; dim * vocab],
            present: vec![false; vocab],
        }
    }

    /// Rebuilds a table from raw storage — the snapshot restore path of
    /// `koios-store`. Unlike [`Self::set`], vectors are **not**
    /// re-normalised: the stored `f32` bit patterns are adopted verbatim,
    /// so a reloaded table is bit-identical to the one that was saved (and
    /// therefore every cosine, bound and hit score is too).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len() != dim * present.len()` (the
    /// snapshot decoder validates both before calling).
    pub fn from_raw(dim: usize, data: Vec<f32>, present: Vec<bool>) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert_eq!(
            data.len(),
            dim * present.len(),
            "raw data must be dim * vocab values"
        );
        Embeddings { dim, data, present }
    }

    /// The raw vector storage, row-major by token id (absent tokens hold
    /// zeroes). Paired with [`Self::present_mask`] this is the inverse of
    /// [`Self::from_raw`] — the snapshot writer reads it verbatim.
    pub fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// Which tokens have a vector, aligned with token ids.
    pub fn present_mask(&self) -> &[bool] {
        &self.present
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vocabulary slots (present or not).
    pub fn vocab(&self) -> usize {
        self.present.len()
    }

    /// Fraction of tokens with a vector (the paper filters datasets to ≥70%
    /// pre-trained-vector coverage).
    pub fn coverage(&self) -> f64 {
        if self.present.is_empty() {
            return 0.0;
        }
        self.present.iter().filter(|&&p| p).count() as f64 / self.present.len() as f64
    }

    /// Stores a vector for `t`, normalising it to unit length. A zero (or
    /// non-finite) vector marks the token as out-of-vocabulary instead.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `dim` or `t` is out of range.
    pub fn set(&mut self, t: TokenId, v: &[f64]) {
        assert_eq!(v.len(), self.dim, "vector has wrong dimensionality");
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let slot = &mut self.data[t.idx() * self.dim..(t.idx() + 1) * self.dim];
        if norm > 0.0 && norm.is_finite() {
            for (o, x) in slot.iter_mut().zip(v) {
                *o = (x / norm) as f32;
            }
            self.present[t.idx()] = true;
        } else {
            slot.fill(0.0);
            self.present[t.idx()] = false;
        }
    }

    /// The unit vector of `t`, or `None` for out-of-vocabulary tokens.
    pub fn get(&self, t: TokenId) -> Option<&[f32]> {
        if *self.present.get(t.idx())? {
            Some(&self.data[t.idx() * self.dim..(t.idx() + 1) * self.dim])
        } else {
            None
        }
    }

    /// Whether `t` has a vector.
    pub fn has(&self, t: TokenId) -> bool {
        self.present.get(t.idx()).copied().unwrap_or(false)
    }

    /// Cosine similarity of two tokens (`None` if either is OOV).
    /// Vectors are unit length, so this is a dot product.
    pub fn cosine(&self, a: TokenId, b: TokenId) -> Option<f64> {
        let va = self.get(a)?;
        let vb = self.get(b)?;
        Some(dot(va, vb))
    }

    /// Grows the table to cover `vocab` tokens; new slots are absent
    /// (zero rows, `present = false`). Shrinking is not supported — the
    /// vocabulary is append-only — so a smaller `vocab` is a no-op. This is
    /// the live-ingest companion of [`Self::from_raw`]: appending rows
    /// never disturbs existing bit patterns.
    pub fn grow(&mut self, vocab: usize) {
        if vocab <= self.present.len() {
            return;
        }
        self.data.resize(vocab * self.dim, 0.0);
        self.present.resize(vocab, false);
    }

    /// Stores a raw `f32` row for `t` **without normalising** — the
    /// live-ingest path, mirroring [`Self::from_raw`]'s bit-exactness so a
    /// mutated table equals the table a cold rebuild over the same rows
    /// produces. An all-zero row marks the token out-of-vocabulary, exactly
    /// as the snapshot codec treats absent rows.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from `dim` or `t` is out of range.
    pub fn set_raw_row(&mut self, t: TokenId, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "vector has wrong dimensionality");
        let slot = &mut self.data[t.idx() * self.dim..(t.idx() + 1) * self.dim];
        slot.copy_from_slice(row);
        self.present[t.idx()] = row.iter().any(|&x| x != 0.0);
    }
}

/// Dot product of two equally-sized slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x as f64) * (*y as f64))
        .sum()
}

impl HeapSize for Embeddings {
    fn heap_size(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>() + self.present.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_normalises() {
        let mut e = Embeddings::new(2, 3);
        e.set(TokenId(0), &[3.0, 4.0]);
        let v = e.get(TokenId(0)).unwrap();
        assert!((v[0] - 0.6).abs() < 1e-6);
        assert!((v[1] - 0.8).abs() < 1e-6);
        assert!((dot(v, v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_is_oov() {
        let mut e = Embeddings::new(2, 1);
        e.set(TokenId(0), &[0.0, 0.0]);
        assert!(!e.has(TokenId(0)));
        assert!(e.get(TokenId(0)).is_none());
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let mut e = Embeddings::new(3, 2);
        e.set(TokenId(0), &[1.0, 2.0, 3.0]);
        e.set(TokenId(1), &[1.0, 2.0, 3.0]);
        assert!((e.cosine(TokenId(0), TokenId(1)).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        let mut e = Embeddings::new(2, 2);
        e.set(TokenId(0), &[1.0, 0.0]);
        e.set(TokenId(1), &[0.0, 1.0]);
        assert!(e.cosine(TokenId(0), TokenId(1)).unwrap().abs() < 1e-6);
    }

    #[test]
    fn cosine_with_oov_is_none() {
        let mut e = Embeddings::new(2, 2);
        e.set(TokenId(0), &[1.0, 0.0]);
        assert!(e.cosine(TokenId(0), TokenId(1)).is_none());
    }

    #[test]
    fn coverage_counts_present() {
        let mut e = Embeddings::new(2, 4);
        e.set(TokenId(0), &[1.0, 0.0]);
        e.set(TokenId(2), &[0.0, 1.0]);
        assert!((e.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_raw_is_bit_identical() {
        let mut e = Embeddings::new(3, 2);
        e.set(TokenId(0), &[1.0, 2.0, 3.0]);
        let restored =
            Embeddings::from_raw(e.dim(), e.raw_data().to_vec(), e.present_mask().to_vec());
        assert_eq!(restored.raw_data(), e.raw_data());
        assert_eq!(restored.present_mask(), e.present_mask());
        assert_eq!(
            restored.cosine(TokenId(0), TokenId(0)),
            e.cosine(TokenId(0), TokenId(0))
        );
        assert!(!restored.has(TokenId(1)));
    }

    #[test]
    #[should_panic(expected = "dim * vocab")]
    fn from_raw_rejects_mismatched_lengths() {
        let _ = Embeddings::from_raw(2, vec![0.0; 3], vec![false; 2]);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn wrong_dim_rejected() {
        let mut e = Embeddings::new(3, 1);
        e.set(TokenId(0), &[1.0]);
    }

    #[test]
    fn grow_preserves_existing_rows_bit_exactly() {
        let mut e = Embeddings::new(2, 2);
        e.set(TokenId(0), &[3.0, 4.0]);
        let before = e.raw_data().to_vec();
        e.grow(5);
        assert_eq!(e.vocab(), 5);
        assert_eq!(&e.raw_data()[..4], &before[..]);
        assert!(!e.has(TokenId(3)));
        // Shrinking is a no-op.
        e.grow(1);
        assert_eq!(e.vocab(), 5);
    }

    #[test]
    fn set_raw_row_is_bit_exact_and_zero_means_oov() {
        let mut e = Embeddings::new(2, 3);
        let row = [0.6f32, 0.8f32];
        e.set_raw_row(TokenId(1), &row);
        assert_eq!(e.get(TokenId(1)).unwrap(), &row);
        e.set_raw_row(TokenId(2), &[0.0, 0.0]);
        assert!(!e.has(TokenId(2)));
        // A mutated table equals a from_raw rebuild over the same rows.
        let rebuilt =
            Embeddings::from_raw(e.dim(), e.raw_data().to_vec(), e.present_mask().to_vec());
        assert_eq!(rebuilt.raw_data(), e.raw_data());
        assert_eq!(rebuilt.present_mask(), e.present_mask());
    }
}
