//! Corpus mutation operations.
//!
//! A [`CorpusOp`] is the unit of change for a live corpus: one appended set
//! (with optional raw embedding rows for tokens the corpus has not seen
//! yet) or one tombstoned set id. Ops are **deterministic by replay**:
//! applying the same sequence to the same starting state — whether through
//! a mutable engine, a snapshot delta, or a cold rebuild — assigns
//! identical set ids, token ids and embedding bit patterns, which is what
//! makes mutate-vs-rebuild byte-identical and snapshot deltas safe to
//! chain.

use koios_common::SetId;

/// One corpus mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusOp {
    /// Append a new set. Unseen tokens are interned (append-only); the
    /// optional `vectors` supply raw, already-normalised `f32` embedding
    /// rows for tokens that gain a vector with this op. Rows for tokens
    /// that already exist in the vocabulary are ignored — existing vectors
    /// are immutable, so replays cannot retroactively change scores.
    Insert {
        /// The set's registered name.
        name: String,
        /// The set's string elements (deduplicated on apply).
        tokens: Vec<String>,
        /// Raw embedding rows, `(token string, row)`, applied only to
        /// tokens first interned by this op. Row length must match the
        /// embedding dimensionality.
        vectors: Vec<(String, Vec<f32>)>,
    },
    /// Tombstone an existing set by id.
    Remove {
        /// The set to remove.
        set: SetId,
    },
}

impl CorpusOp {
    /// Convenience constructor for an insert without new vectors (all
    /// tokens either already embedded or out-of-vocabulary).
    pub fn insert<S: Into<String>, I: IntoIterator<Item = S>>(name: &str, tokens: I) -> Self {
        CorpusOp::Insert {
            name: name.to_string(),
            tokens: tokens.into_iter().map(Into::into).collect(),
            vectors: Vec::new(),
        }
    }

    /// Convenience constructor for a removal.
    pub fn remove(set: SetId) -> Self {
        CorpusOp::Remove { set }
    }

    /// Whether this op appends a set.
    pub fn is_insert(&self) -> bool {
        matches!(self, CorpusOp::Insert { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_the_expected_shapes() {
        let ins = CorpusOp::insert("s", ["a", "b"]);
        assert!(ins.is_insert());
        match &ins {
            CorpusOp::Insert {
                name,
                tokens,
                vectors,
            } => {
                assert_eq!(name, "s");
                assert_eq!(tokens, &["a", "b"]);
                assert!(vectors.is_empty());
            }
            _ => unreachable!(),
        }
        let rem = CorpusOp::remove(SetId(3));
        assert!(!rem.is_insert());
        assert_eq!(rem, CorpusOp::Remove { set: SetId(3) });
    }
}
