//! The set repository `L`.
//!
//! A [`Repository`] owns the interned vocabulary `D` and the collection of
//! sets over it. Sets are stored sorted and deduplicated so vanilla overlap
//! and membership checks are merge-joins, and set ids index densely into the
//! set table (the layout the inverted index and the search engines rely on).

use koios_common::{HeapSize, Interner, SetId, TokenId};
use std::sync::Arc;

/// Summary statistics of a repository (the paper's Table I columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepoStats {
    /// Number of sets.
    pub num_sets: usize,
    /// Largest set cardinality.
    pub max_size: usize,
    /// Mean set cardinality.
    pub avg_size: f64,
    /// Number of distinct elements across all sets.
    pub unique_elems: usize,
}

/// A collection of sets plus the shared token interner.
///
/// Historically build-once; live corpora mutate it through
/// [`Repository::append_set`] / [`Repository::remove_set`]. Set ids are
/// **stable**: removal tombstones the slot (the id is never reused and the
/// tokens stay readable for index maintenance), and appends always claim
/// the next dense id, so ids recorded in indexes, caches and snapshots
/// stay valid across mutations. The interner is append-only.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    interner: Interner,
    sets: Vec<Box<[TokenId]>>,
    names: Vec<String>,
    /// Tombstone mask, indexed like `sets` (`true` = removed). Kept the
    /// same length as `sets` at all times.
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    dead_count: usize,
}

/// Incremental constructor for [`Repository`].
#[derive(Debug, Default)]
pub struct RepositoryBuilder {
    repo: Repository,
}

impl RepositoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a set of string elements under `name`; duplicates within the set
    /// are removed. Returns the assigned [`SetId`].
    pub fn add_set<I, S>(&mut self, name: &str, elements: I) -> SetId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut tokens: Vec<TokenId> = elements
            .into_iter()
            .map(|s| self.repo.interner.intern(s.as_ref()))
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        self.add_token_set(name, tokens)
    }

    /// Adds a set of pre-interned tokens (used by the data generators).
    /// Tokens are sorted and deduplicated.
    pub fn add_token_set(&mut self, name: &str, mut tokens: Vec<TokenId>) -> SetId {
        tokens.sort_unstable();
        tokens.dedup();
        let id = SetId(self.repo.sets.len() as u32);
        self.repo.sets.push(tokens.into_boxed_slice());
        self.repo.names.push(name.to_string());
        self.repo.dead.push(false);
        id
    }

    /// Interns a token without attaching it to a set (e.g. synonym strings
    /// that appear only in queries).
    pub fn intern(&mut self, s: &str) -> TokenId {
        self.repo.interner.intern(s)
    }

    /// Rebuilds a repository from decoded snapshot parts: the vocabulary in
    /// token-id order (ids are dense, so position *is* the id) and the sets
    /// in set-id order with their already-interned tokens. This is the
    /// warm-start restore path of `koios-store` — the interner is rebuilt
    /// with identical ids, so token ids recorded in snapshotted indexes
    /// stay valid without any remapping.
    ///
    /// Set token vectors are sorted and deduplicated defensively, exactly
    /// like [`Self::add_token_set`] (snapshots store them sorted, so this
    /// is a no-op pass on trusted input).
    pub fn from_snapshot<V, S, T>(vocab: V, sets: S) -> Repository
    where
        V: IntoIterator<Item = T>,
        S: IntoIterator<Item = (String, Vec<TokenId>)>,
        T: AsRef<str>,
    {
        let mut b = RepositoryBuilder::new();
        for s in vocab {
            b.intern(s.as_ref());
        }
        for (name, tokens) in sets {
            b.add_token_set(&name, tokens);
        }
        b.build()
    }

    /// Finalises the repository.
    pub fn build(self) -> Repository {
        self.repo
    }
}

impl Repository {
    /// Starts building a repository.
    pub fn builder() -> RepositoryBuilder {
        RepositoryBuilder::new()
    }

    /// Number of sets in the repository.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Size of the interned vocabulary (includes query-only tokens).
    pub fn vocab_size(&self) -> usize {
        self.interner.len()
    }

    /// The sorted, deduplicated elements of a set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&self, id: SetId) -> &[TokenId] {
        &self.sets[id.idx()]
    }

    /// The name a set was registered under.
    pub fn set_name(&self, id: SetId) -> &str {
        &self.names[id.idx()]
    }

    /// Cardinality of a set.
    pub fn set_len(&self, id: SetId) -> usize {
        self.sets[id.idx()].len()
    }

    /// Iterates `(id, elements)` over **all** set slots, including
    /// tombstoned ones (the id space is dense; snapshot encoders and other
    /// slot-faithful consumers rely on that). Use [`Self::live_sets`] to
    /// skip removed sets.
    pub fn iter_sets(&self) -> impl Iterator<Item = (SetId, &[TokenId])> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (SetId(i as u32), &**s))
    }

    /// Iterates `(id, elements)` over the live (non-tombstoned) sets only.
    pub fn live_sets(&self) -> impl Iterator<Item = (SetId, &[TokenId])> + '_ {
        self.iter_sets().filter(|(id, _)| self.is_live(*id))
    }

    /// Whether a set id names a live (present, not tombstoned) set. Out-of-
    /// range ids are reported dead rather than panicking, so filters can
    /// probe candidate ids freely.
    pub fn is_live(&self, id: SetId) -> bool {
        self.dead.get(id.idx()).is_some_and(|&d| !d)
    }

    /// Number of live sets (`num_sets` minus tombstones).
    pub fn num_live_sets(&self) -> usize {
        self.sets.len() - self.dead_count
    }

    /// The tombstoned set ids, ascending.
    pub fn tombstones(&self) -> impl Iterator<Item = SetId> + '_ {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| SetId(i as u32))
    }

    /// Appends a new set of string elements under `name`, interning unseen
    /// tokens (the interner is append-only, so existing token ids never
    /// move). Duplicates within the set are removed. Returns the assigned
    /// [`SetId`] — always the next dense id, so appends replayed in order
    /// assign identical ids on every replica.
    pub fn append_set<I, S>(&mut self, name: &str, elements: I) -> SetId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut tokens: Vec<TokenId> = elements
            .into_iter()
            .map(|s| self.interner.intern(s.as_ref()))
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        let id = SetId(self.sets.len() as u32);
        self.sets.push(tokens.into_boxed_slice());
        self.names.push(name.to_string());
        self.dead.push(false);
        id
    }

    /// Tombstones a set. The slot (tokens and name) stays readable — index
    /// maintenance needs the tokens to splice postings out — but the set no
    /// longer participates in searches, index builds or statistics. Returns
    /// `false` when the id is out of range or already tombstoned.
    pub fn remove_set(&mut self, id: SetId) -> bool {
        match self.dead.get_mut(id.idx()) {
            Some(d) if !*d => {
                *d = true;
                self.dead_count += 1;
                true
            }
            _ => false,
        }
    }

    /// The string of a token.
    pub fn token_str(&self, t: TokenId) -> &str {
        self.interner.resolve(t)
    }

    /// Looks up a token id by string.
    pub fn token_id(&self, s: &str) -> Option<TokenId> {
        self.interner.get(s)
    }

    /// Shared access to the interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (interning query tokens before
    /// constructing string-based similarity functions).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Converts query strings to a sorted, deduplicated token vector,
    /// **dropping strings absent from the vocabulary**. An absent string
    /// cannot match any set element (no set contains it, and similarity
    /// functions are defined over the vocabulary), so dropping it never
    /// changes any semantic overlap; it only tightens the `|Q|` cap of the
    /// UB-filter.
    pub fn intern_query<I, S>(&self, elements: I) -> Vec<TokenId>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut q: Vec<TokenId> = elements
            .into_iter()
            .filter_map(|s| self.interner.get(s.as_ref()))
            .collect();
        q.sort_unstable();
        q.dedup();
        q
    }

    /// Like [`Self::intern_query`] but interns unknown strings (needed when
    /// a string-based similarity such as q-gram Jaccard should compare query
    /// tokens that do not occur in the corpus). Must run **before**
    /// constructing similarity functions that snapshot the vocabulary.
    pub fn intern_query_mut<I, S>(&mut self, elements: I) -> Vec<TokenId>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut q: Vec<TokenId> = elements
            .into_iter()
            .map(|s| self.interner.intern(s.as_ref()))
            .collect();
        q.sort_unstable();
        q.dedup();
        q
    }

    /// Vanilla overlap `|Q ∩ C|` of a sorted token slice with a set.
    pub fn vanilla_overlap(&self, query: &[TokenId], id: SetId) -> usize {
        debug_assert!(
            query.windows(2).all(|w| w[0] < w[1]),
            "query must be sorted"
        );
        let set = self.set(id);
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < query.len() && j < set.len() {
            match query[i].cmp(&set[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Table-I-style summary statistics over the **live** sets (tombstoned
    /// slots describe data that is gone; counting them would misreport the
    /// corpus being served).
    pub fn stats(&self) -> RepoStats {
        let mut unique = std::collections::HashSet::new();
        let mut max_size = 0;
        let mut total = 0usize;
        let live = self.num_live_sets();
        for (_, s) in self.live_sets() {
            max_size = max_size.max(s.len());
            total += s.len();
            unique.extend(s.iter().copied());
        }
        RepoStats {
            num_sets: live,
            max_size,
            avg_size: if live == 0 {
                0.0
            } else {
                total as f64 / live as f64
            },
            unique_elems: unique.len(),
        }
    }
}

/// Borrowed or shared-ownership access to a [`Repository`].
///
/// Search engines historically borrowed their repository (`&'r Repository`),
/// which ties the engine's lifetime to a stack frame. Long-lived serving
/// layers (e.g. `koios-service`) instead hand the engine an
/// `Arc<Repository>` so the engine is `'static` and can move across
/// threads. `RepoRef` unifies both: engine constructors accept
/// `impl Into<RepoRef<'r>>`, so existing `&repo` call sites keep working
/// while `Arc<Repository>` (or `&Arc<Repository>`) enables owned engines.
///
/// Cloning is cheap: a pointer copy for the borrowed flavour, an `Arc`
/// bump for the owned one.
#[derive(Debug, Clone)]
pub enum RepoRef<'r> {
    /// A lifetime-bound borrow (the classic single-query embedding).
    Borrowed(&'r Repository),
    /// Shared ownership (`RepoRef<'static>`): the serving-layer embedding.
    Owned(Arc<Repository>),
}

impl RepoRef<'_> {
    /// The underlying repository.
    pub fn get(&self) -> &Repository {
        match self {
            RepoRef::Borrowed(r) => r,
            RepoRef::Owned(r) => r,
        }
    }

    /// Whether this reference owns (shares ownership of) the repository.
    pub fn is_owned(&self) -> bool {
        matches!(self, RepoRef::Owned(_))
    }

    /// Shared ownership of the repository: an `Arc` bump for the owned
    /// flavour, a deep clone into a fresh `Arc` for the borrowed one
    /// (serving layers only construct owned engines, so the clone is the
    /// cold path).
    pub fn to_arc(&self) -> Arc<Repository> {
        match self {
            RepoRef::Borrowed(r) => Arc::new((*r).clone()),
            RepoRef::Owned(r) => Arc::clone(r),
        }
    }
}

impl std::ops::Deref for RepoRef<'_> {
    type Target = Repository;

    fn deref(&self) -> &Repository {
        self.get()
    }
}

impl<'r> From<&'r Repository> for RepoRef<'r> {
    fn from(r: &'r Repository) -> Self {
        RepoRef::Borrowed(r)
    }
}

// `Owned` carries no lifetime, so it satisfies any `'r` — including
// `'static`, which is what owned engines are built with.
impl<'r> From<Arc<Repository>> for RepoRef<'r> {
    fn from(r: Arc<Repository>) -> Self {
        RepoRef::Owned(r)
    }
}

impl<'r> From<&Arc<Repository>> for RepoRef<'r> {
    fn from(r: &Arc<Repository>) -> Self {
        RepoRef::Owned(Arc::clone(r))
    }
}

impl HeapSize for Repository {
    fn heap_size(&self) -> usize {
        self.interner.heap_size()
            + self
                .sets
                .iter()
                .map(|s| s.len() * std::mem::size_of::<TokenId>())
                .sum::<usize>()
            + self.names.iter().map(|n| n.capacity()).sum::<usize>()
            + self.dead.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["LA", "Blain", "Appleton", "MtPleasant", "Lexington"]);
        b.add_set("c2", ["LA", "Sacramento", "Blain", "SC"]);
        b.add_set("dup", ["LA", "LA", "LA"]);
        b.build()
    }

    #[test]
    fn sets_are_sorted_and_deduped() {
        let r = sample_repo();
        assert_eq!(r.num_sets(), 3);
        let dup = r.set(SetId(2));
        assert_eq!(dup.len(), 1);
        for s in 0..r.num_sets() {
            let set = r.set(SetId(s as u32));
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn names_and_strings_roundtrip() {
        let r = sample_repo();
        assert_eq!(r.set_name(SetId(1)), "c2");
        let la = r.token_id("LA").unwrap();
        assert_eq!(r.token_str(la), "LA");
    }

    #[test]
    fn intern_query_drops_unknown() {
        let r = sample_repo();
        let q = r.intern_query(["LA", "Nowhere", "SC", "LA"]);
        assert_eq!(q.len(), 2);
        assert!(q.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn intern_query_mut_interns_unknown() {
        let mut r = sample_repo();
        let before = r.vocab_size();
        let q = r.intern_query_mut(["LA", "Nowhere"]);
        assert_eq!(q.len(), 2);
        assert_eq!(r.vocab_size(), before + 1);
    }

    #[test]
    fn vanilla_overlap_counts_exact_matches() {
        let r = sample_repo();
        let q = r.intern_query(["LA", "Blain", "Sacramento"]);
        assert_eq!(r.vanilla_overlap(&q, SetId(0)), 2); // LA, Blain
        assert_eq!(r.vanilla_overlap(&q, SetId(1)), 3);
        assert_eq!(r.vanilla_overlap(&q, SetId(2)), 1);
        assert_eq!(r.vanilla_overlap(&[], SetId(0)), 0);
    }

    #[test]
    fn stats_match_contents() {
        let r = sample_repo();
        let s = r.stats();
        assert_eq!(s.num_sets, 3);
        assert_eq!(s.max_size, 5);
        assert!((s.avg_size - (5 + 4 + 1) as f64 / 3.0).abs() < 1e-12);
        // c1 ∪ c2 ∪ dup = {LA, Blain, Appleton, MtPleasant, Lexington,
        //                  Sacramento, SC}
        assert_eq!(s.unique_elems, 7);
    }

    #[test]
    fn repo_ref_borrowed_and_owned_agree() {
        let r = sample_repo();
        let borrowed: RepoRef = (&r).into();
        assert!(!borrowed.is_owned());
        assert_eq!(borrowed.num_sets(), r.num_sets());

        let arc = Arc::new(sample_repo());
        let owned: RepoRef<'static> = Arc::clone(&arc).into();
        assert!(owned.is_owned());
        assert_eq!(owned.num_sets(), arc.num_sets());
        // &Arc converts too (bumps the refcount instead of borrowing).
        let from_ref: RepoRef<'static> = (&arc).into();
        assert!(from_ref.is_owned());
        assert_eq!(Arc::strong_count(&arc), 3);

        // Clones are cheap and deref to the same contents.
        let c = owned.clone();
        assert_eq!(c.set_name(SetId(1)), "c2");
    }

    #[test]
    fn from_snapshot_restores_ids_exactly() {
        let r = sample_repo();
        let vocab: Vec<String> = r.interner().iter().map(|(_, s)| s.to_string()).collect();
        let sets: Vec<(String, Vec<TokenId>)> = r
            .iter_sets()
            .map(|(id, set)| (r.set_name(id).to_string(), set.to_vec()))
            .collect();
        let restored = RepositoryBuilder::from_snapshot(vocab, sets);
        assert_eq!(restored.vocab_size(), r.vocab_size());
        assert_eq!(restored.num_sets(), r.num_sets());
        for (id, set) in r.iter_sets() {
            assert_eq!(restored.set(id), set);
            assert_eq!(restored.set_name(id), r.set_name(id));
        }
        // Token ids (not just strings) are preserved.
        for (id, s) in r.interner().iter() {
            assert_eq!(restored.token_id(s), Some(id));
        }
    }

    #[test]
    fn empty_repository_stats() {
        let r = Repository::default();
        let s = r.stats();
        assert_eq!(s.num_sets, 0);
        assert_eq!(s.avg_size, 0.0);
    }

    #[test]
    fn append_assigns_dense_ids_and_interns_incrementally() {
        let mut r = sample_repo();
        let vocab_before = r.vocab_size();
        let id = r.append_set("new", ["LA", "Fresh", "Fresh", "SC"]);
        assert_eq!(id, SetId(3));
        assert_eq!(r.num_sets(), 4);
        // One genuinely new token; existing ids untouched.
        assert_eq!(r.vocab_size(), vocab_before + 1);
        assert_eq!(r.set_name(id), "new");
        let set = r.set(id);
        assert_eq!(set.len(), 3, "duplicates removed");
        assert!(set.windows(2).all(|w| w[0] < w[1]));
        assert!(r.is_live(id));
    }

    #[test]
    fn remove_tombstones_but_keeps_the_slot_readable() {
        let mut r = sample_repo();
        assert!(r.remove_set(SetId(1)));
        assert!(!r.remove_set(SetId(1)), "double remove is rejected");
        assert!(!r.remove_set(SetId(99)), "out of range is rejected");
        assert!(!r.is_live(SetId(1)));
        assert!(!r.is_live(SetId(99)));
        assert!(r.is_live(SetId(0)));
        // The slot stays readable for index maintenance.
        assert_eq!(r.set_name(SetId(1)), "c2");
        assert!(!r.set(SetId(1)).is_empty());
        // Counts and iteration reflect liveness.
        assert_eq!(r.num_sets(), 3, "id space keeps the slot");
        assert_eq!(r.num_live_sets(), 2);
        assert_eq!(r.live_sets().count(), 2);
        assert_eq!(r.iter_sets().count(), 3);
        assert_eq!(r.tombstones().collect::<Vec<_>>(), vec![SetId(1)]);
        // Appends after a removal still claim the next dense id.
        assert_eq!(r.append_set("later", ["LA"]), SetId(3));
    }

    #[test]
    fn stats_skip_tombstones() {
        let mut r = sample_repo();
        r.remove_set(SetId(0));
        let s = r.stats();
        assert_eq!(s.num_sets, 2);
        assert_eq!(s.max_size, 4); // c2; c1's 5 elements are gone
        assert!((s.avg_size - (4 + 1) as f64 / 2.0).abs() < 1e-12);
    }
}
