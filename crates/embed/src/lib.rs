//! Embedding substrate and element similarities for Koios.
//!
//! The paper evaluates semantic overlap with the cosine similarity of
//! FastText word embeddings; pre-trained vectors are not available offline,
//! so this crate provides a **synthetic clustered embedding model**
//! ([`synthetic`]) that reproduces the property the Koios filters actually
//! consume: every token has a small semantic neighbourhood of high-cosine
//! tokens (synonyms/cluster members above `α`) and a long tail of sub-`α`
//! noise, plus optional out-of-vocabulary tokens with no vector at all
//! (DESIGN.md §3 documents this substitution).
//!
//! The crate also hosts the corpus container ([`repository`]) and the
//! pluggable element-similarity functions ([`sim`]): cosine of embeddings,
//! q-gram Jaccard, word Jaccard, edit similarity, and strict equality
//! (which degenerates semantic overlap to vanilla overlap).
//!
//! Entry points: build a corpus with [`RepositoryBuilder`], intern queries
//! via [`Repository::intern_query`], and hand an
//! `Arc<dyn ElementSimilarity>` (e.g. [`CosineSimilarity`] over
//! [`SyntheticEmbeddings`], or [`QGramJaccard`]) to the engine in
//! `koios-core`. Serving layers share the repository through
//! [`repository::RepoRef`].

pub mod ops;
pub mod rand_util;
pub mod repository;
pub mod sim;
pub mod synthetic;
pub mod vectors;

pub use ops::CorpusOp;
pub use repository::{Repository, RepositoryBuilder};
pub use sim::{
    CosineSimilarity, EditSimilarity, ElementSimilarity, EqualitySimilarity, QGramJaccard,
    WordJaccard,
};
pub use synthetic::SyntheticEmbeddings;
pub use vectors::Embeddings;
