//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member vendors the *minimal* API surface the Koios workspace actually
//! uses, under the same paths as `rand 0.8`:
//!
//! * [`Rng`] with `gen::<f64>()` and `gen_range(start..end)`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded through
//!   splitmix64 (not the ChaCha12 of the real crate; streams differ, but
//!   every consumer in this workspace only relies on determinism for a
//!   fixed seed, never on the exact byte stream),
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle`.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifests; no consumer code needs to change.

use std::ops::Range;

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // without rejection is far below what any consumer here can
                // observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The raw generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Splitmix64 step — the seeding PRNG recommended by the xoshiro authors.
/// Deliberately duplicates `koios_common::fingerprint::mix64`: this crate
/// is a drop-in stand-in for the real `rand` and must stay free of
/// workspace dependencies so swapping it out is a manifest-only change.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic, seedable generator (xoshiro256++).
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographically secure — the workspace only uses it for synthetic
    /// data generation and tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_not_constant() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            distinct.insert(x.to_bits());
        }
        assert!(distinct.len() > 990);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(5..6usize);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is never the identity here");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
