//! Exhaustive maximum-weight matching — the test oracle.
//!
//! Enumerates every optional one-to-one matching by recursing over rows
//! (assign the row to any free column, or skip it). Exponential; only for
//! verifying [`crate::hungarian`] and greedy bounds on tiny instances.

use crate::graph::WeightMatrix;

/// The exact maximum matching score by brute force.
///
/// Intended for matrices with at most ~8 rows/columns.
pub fn exhaustive_max_matching(m: &WeightMatrix) -> f64 {
    // Recurse over the smaller side for speed.
    let t;
    let m = if m.rows() > m.cols() {
        t = m.transposed();
        &t
    } else {
        m
    };
    let mut col_used = vec![false; m.cols()];
    recurse(m, 0, &mut col_used)
}

fn recurse(m: &WeightMatrix, row: usize, col_used: &mut [bool]) -> f64 {
    if row == m.rows() {
        return 0.0;
    }
    // Skip this row entirely.
    let mut best = recurse(m, row + 1, col_used);
    for col in 0..m.cols() {
        if col_used[col] {
            continue;
        }
        let w = m.get(row, col);
        if w <= 0.0 {
            continue;
        }
        col_used[col] = true;
        let v = w + recurse(m, row + 1, col_used);
        col_used[col] = false;
        if v > best {
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(exhaustive_max_matching(&WeightMatrix::zeros(0, 0)), 0.0);
        assert_eq!(exhaustive_max_matching(&WeightMatrix::zeros(3, 3)), 0.0);
    }

    #[test]
    fn single_edge() {
        let m = WeightMatrix::from_vec(1, 2, vec![0.0, 0.7]);
        assert!((exhaustive_max_matching(&m) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn prefers_rearrangement_over_greedy() {
        let m = WeightMatrix::from_vec(2, 2, vec![1.0, 0.99, 0.99, 0.0]);
        assert!((exhaustive_max_matching(&m) - 1.98).abs() < 1e-12);
    }

    #[test]
    fn skipping_rows_can_be_optimal() {
        // Matching both rows would force a zero edge; optimum skips row 1.
        let m = WeightMatrix::from_vec(2, 1, vec![0.9, 0.3]);
        assert!((exhaustive_max_matching(&m) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn rectangular_orientation_invariant() {
        let m = WeightMatrix::from_vec(2, 3, vec![0.5, 0.2, 0.9, 0.4, 0.8, 0.1]);
        let t = m.transposed();
        assert!((exhaustive_max_matching(&m) - exhaustive_max_matching(&t)).abs() < 1e-12);
        assert!((exhaustive_max_matching(&m) - 1.7).abs() < 1e-12);
    }
}
