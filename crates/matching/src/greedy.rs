//! Greedy bipartite matching (the LB-filter workhorse).
//!
//! The greedy algorithm repeatedly takes the heaviest edge between two
//! unmatched nodes. Its score is at least half the optimal matching score
//! (paper Lemma 3, citing Vazirani), and any *prefix* of its edge choices is
//! itself a valid matching, which is what makes the incremental `iLB` of
//! Lemma 5 sound: Koios feeds it edges in descending similarity order
//! straight from the token stream.

use crate::graph::WeightMatrix;
use crate::hungarian::Matching;

/// Runs greedy matching over all non-zero edges of `m`.
///
/// Ties are broken by ascending `(row, col)` so results are deterministic.
pub fn greedy_matching(m: &WeightMatrix) -> Matching {
    let mut edges = m.edges();
    edges.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("weights are never NaN")
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    greedy_matching_from_sorted(edges.iter().copied(), m.rows(), m.cols())
}

/// Runs greedy matching over an edge stream already sorted by descending
/// weight. Edges violating the order are rejected with a panic in debug
/// builds (the stream contract of the token index).
pub fn greedy_matching_from_sorted(
    edges: impl IntoIterator<Item = (u32, u32, f64)>,
    rows: usize,
    cols: usize,
) -> Matching {
    let mut row_used = vec![false; rows];
    let mut col_used = vec![false; cols];
    let mut score = 0.0;
    let mut pairs = Vec::new();
    let mut last = f64::INFINITY;
    for (r, c, w) in edges {
        debug_assert!(
            w <= last + 1e-12,
            "greedy edge stream must be sorted descending ({w} after {last})"
        );
        last = w;
        if w <= 0.0 {
            continue;
        }
        let (ri, ci) = (r as usize, c as usize);
        if !row_used[ri] && !col_used[ci] {
            row_used[ri] = true;
            col_used[ci] = true;
            score += w;
            pairs.push((r, c));
        }
    }
    Matching { score, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_max_matching;

    #[test]
    fn empty_matrix_scores_zero() {
        let m = WeightMatrix::zeros(3, 2);
        let g = greedy_matching(&m);
        assert_eq!(g.score, 0.0);
        assert!(g.pairs.is_empty());
    }

    #[test]
    fn greedy_picks_heaviest_first() {
        // Example 2 of the paper: greedy is suboptimal.
        // w(q1,t1)=1.0, w(q1,t2)=0.99, w(q2,t1)=0.99, w(q2,t2)=0
        let m = WeightMatrix::from_vec(2, 2, vec![1.0, 0.99, 0.99, 0.0]);
        let g = greedy_matching(&m);
        assert_eq!(g.pairs, vec![(0, 0)]);
        assert!((g.score - 1.0).abs() < 1e-12);
        let opt = exhaustive_max_matching(&m);
        assert!((opt - 1.98).abs() < 1e-12);
        // Half-approximation guarantee.
        assert!(g.score >= opt / 2.0 - 1e-12);
    }

    #[test]
    fn greedy_matches_disjoint_edges() {
        let m = WeightMatrix::from_vec(2, 2, vec![0.9, 0.0, 0.0, 0.8]);
        let g = greedy_matching(&m);
        assert!((g.score - 1.7).abs() < 1e-12);
        assert_eq!(g.pairs.len(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let m = WeightMatrix::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        let g = greedy_matching(&m);
        assert_eq!(g.pairs, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn sorted_stream_respects_one_to_one() {
        let edges = vec![(0u32, 0u32, 0.9), (0, 1, 0.8), (1, 0, 0.7), (1, 1, 0.6)];
        let g = greedy_matching_from_sorted(edges, 2, 2);
        assert_eq!(g.pairs, vec![(0, 0), (1, 1)]);
        assert!((g.score - 1.5).abs() < 1e-12);
    }
}
