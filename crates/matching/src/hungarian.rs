//! Kuhn–Munkres maximum-weight matching with label-sum early termination.
//!
//! Solves the assignment problem on a rectangular non-negative matrix in
//! `O(r²·c)` time (`r = min(rows, cols)`) using the classic slack-array
//! formulation. Because all weights are non-negative, the maximum-weight
//! *optional* matching (what semantic overlap needs) equals the
//! maximum-weight matching that saturates the smaller side, so no padding
//! to a square matrix is required.
//!
//! **Early termination (paper Lemma 8).** The algorithm maintains a feasible
//! labeling `l` with `l(q) + l(c) ≥ w(q, c)`. For any matching `M`,
//! `w(M) ≤ Σ_v max(l(v), 0)` (weak duality; column labels are non-negative
//! by construction, row labels almost always are). Dual updates strictly
//! decrease the label sum, so once it drops below the global pruning
//! threshold `θlb`, the candidate can never reach the top-k and the run
//! aborts — this is the EM-Early-Terminated filter.

use crate::graph::WeightMatrix;

/// A matching: total score plus the matched `(row, col)` pairs
/// (zero-weight assignments are omitted — the matching is optional).
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// Sum of matched edge weights.
    pub score: f64,
    /// Matched `(row, col)` pairs with strictly positive weight.
    pub pairs: Vec<(u32, u32)>,
}

/// The outcome of a (possibly early-terminated) Hungarian run.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// The exact maximum matching.
    Exact(Matching),
    /// The run was aborted because the label-sum upper bound fell below the
    /// termination threshold; `upper_bound` is the certified bound at abort
    /// time (`SO ≤ upper_bound < θ`).
    EarlyTerminated {
        /// Certified upper bound on the optimal score.
        upper_bound: f64,
    },
}

impl MatchOutcome {
    /// The exact matching, if the run completed.
    pub fn exact(self) -> Option<Matching> {
        match self {
            MatchOutcome::Exact(m) => Some(m),
            MatchOutcome::EarlyTerminated { .. } => None,
        }
    }

    /// The exact score.
    ///
    /// # Panics
    ///
    /// Panics if the run early-terminated.
    pub fn score(&self) -> f64 {
        match self {
            MatchOutcome::Exact(m) => m.score,
            MatchOutcome::EarlyTerminated { .. } => {
                panic!("early-terminated matching has no exact score")
            }
        }
    }
}

/// Statistics of a Hungarian run, used by the EM-Early-Terminated analysis.
#[derive(Debug, Default, Clone, Copy)]
pub struct HungarianStats {
    /// Number of augmenting phases completed.
    pub phases: usize,
    /// Number of dual (label) updates performed.
    pub dual_updates: usize,
}

/// Computes the maximum-weight matching of `m`.
///
/// If `terminate_below` is `Some(θ)`, the run aborts as soon as the
/// certified upper bound on the optimum drops below `θ` (Lemma 8).
pub fn solve_max_matching(m: &WeightMatrix, terminate_below: Option<f64>) -> MatchOutcome {
    solve_max_matching_with_stats(m, terminate_below).0
}

/// Like [`solve_max_matching`] but also reports run statistics.
pub fn solve_max_matching_with_stats(
    m: &WeightMatrix,
    terminate_below: Option<f64>,
) -> (MatchOutcome, HungarianStats) {
    // Orient so rows form the smaller side; remember to flip pairs back.
    if m.rows() > m.cols() {
        let t = m.transposed();
        let (out, stats) = km_solve(&t, terminate_below);
        let out = match out {
            MatchOutcome::Exact(mut mm) => {
                for p in &mut mm.pairs {
                    *p = (p.1, p.0);
                }
                mm.pairs.sort_unstable();
                MatchOutcome::Exact(mm)
            }
            e => e,
        };
        (out, stats)
    } else {
        km_solve(m, terminate_below)
    }
}

fn km_solve(m: &WeightMatrix, terminate_below: Option<f64>) -> (MatchOutcome, HungarianStats) {
    let r = m.rows();
    let c = m.cols();
    let mut stats = HungarianStats::default();
    if r == 0 || c == 0 {
        return (
            MatchOutcome::Exact(Matching {
                score: 0.0,
                pairs: Vec::new(),
            }),
            stats,
        );
    }
    debug_assert!(r <= c);

    // Feasible labeling: lx = row maxima, ly = 0.
    let mut lx: Vec<f64> = (0..r).map(|i| m.row_max(i)).collect();
    let mut ly: Vec<f64> = vec![0.0; c];
    // Upper bound on the optimum, updated incrementally on dual changes and
    // recomputed exactly before any termination decision.
    let mut label_sum: f64 = lx.iter().sum();

    if let Some(theta) = terminate_below {
        if label_sum < theta {
            return (
                MatchOutcome::EarlyTerminated {
                    upper_bound: label_sum,
                },
                stats,
            );
        }
    }

    let mut xy: Vec<Option<usize>> = vec![None; r]; // row -> col
    let mut yx: Vec<Option<usize>> = vec![None; c]; // col -> row

    // Scratch buffers reused across phases.
    let mut slack = vec![f64::INFINITY; c];
    let mut slack_row = vec![0usize; c];
    let mut in_s = vec![false; r];
    let mut in_t = vec![false; c];
    let mut t_cols: Vec<usize> = Vec::with_capacity(r);
    let mut s_rows: Vec<usize> = Vec::with_capacity(r);

    for root in 0..r {
        stats.phases += 1;
        slack.iter_mut().for_each(|s| *s = f64::INFINITY);
        in_s.iter_mut().for_each(|v| *v = false);
        in_t.iter_mut().for_each(|v| *v = false);
        t_cols.clear();
        s_rows.clear();

        in_s[root] = true;
        s_rows.push(root);
        let row = m.row(root);
        for j in 0..c {
            let s = lx[root] + ly[j] - row[j];
            if s < slack[j] {
                slack[j] = s;
                slack_row[j] = root;
            }
        }

        loop {
            // Find the minimum slack among columns outside T.
            let mut delta = f64::INFINITY;
            let mut j0 = usize::MAX;
            for j in 0..c {
                if !in_t[j] && slack[j] < delta {
                    delta = slack[j];
                    j0 = j;
                }
            }
            debug_assert!(j0 != usize::MAX, "bipartite graph ran out of columns");
            let delta = delta.max(0.0); // guard float drift

            if delta > 0.0 {
                stats.dual_updates += 1;
                for &i in &s_rows {
                    lx[i] -= delta;
                }
                for &j in &t_cols {
                    ly[j] += delta;
                }
                for j in 0..c {
                    if !in_t[j] {
                        slack[j] -= delta;
                    }
                }
                // |S| = |T| + 1, so the label sum decreases by delta.
                label_sum -= delta;
                if let Some(theta) = terminate_below {
                    if label_sum < theta {
                        // Recompute the bound exactly: Σ max(lx,0) + Σ ly.
                        // Column labels never go negative (start at 0, only
                        // increase); row labels can, in rare geometries.
                        let exact_bound: f64 =
                            lx.iter().map(|&v| v.max(0.0)).sum::<f64>() + ly.iter().sum::<f64>();
                        if exact_bound < theta {
                            return (
                                MatchOutcome::EarlyTerminated {
                                    upper_bound: exact_bound,
                                },
                                stats,
                            );
                        }
                        label_sum = exact_bound;
                    }
                }
            }

            // Column j0 is now tight from slack_row[j0].
            match yx[j0] {
                None => {
                    // Augment along the alternating path ending at j0.
                    let mut cur = j0;
                    loop {
                        let i = slack_row[cur];
                        let prev = xy[i];
                        xy[i] = Some(cur);
                        yx[cur] = Some(i);
                        match prev {
                            None => break,
                            Some(p) => cur = p,
                        }
                    }
                    break;
                }
                Some(i1) => {
                    in_t[j0] = true;
                    t_cols.push(j0);
                    in_s[i1] = true;
                    s_rows.push(i1);
                    let row1 = m.row(i1);
                    for j in 0..c {
                        if !in_t[j] {
                            let s = lx[i1] + ly[j] - row1[j];
                            if s < slack[j] {
                                slack[j] = s;
                                slack_row[j] = i1;
                            }
                        }
                    }
                }
            }
        }
    }

    let mut score = 0.0;
    let mut pairs = Vec::new();
    for (i, col) in xy.iter().enumerate() {
        if let Some(j) = *col {
            let w = m.get(i, j);
            if w > 0.0 {
                score += w;
                pairs.push((i as u32, j as u32));
            }
        }
    }
    (MatchOutcome::Exact(Matching { score, pairs }), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_max_matching;
    use crate::greedy::greedy_matching;

    fn exact_score(m: &WeightMatrix) -> f64 {
        solve_max_matching(m, None).score()
    }

    #[test]
    fn empty_and_zero_matrices() {
        assert_eq!(exact_score(&WeightMatrix::zeros(0, 5)), 0.0);
        assert_eq!(exact_score(&WeightMatrix::zeros(4, 0)), 0.0);
        assert_eq!(exact_score(&WeightMatrix::zeros(3, 3)), 0.0);
    }

    #[test]
    fn paper_example_rearrangement() {
        let m = WeightMatrix::from_vec(2, 2, vec![1.0, 0.99, 0.99, 0.0]);
        let out = solve_max_matching(&m, None).exact().unwrap();
        assert!((out.score - 1.98).abs() < 1e-9);
        assert_eq!(out.pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn rectangular_wide_and_tall() {
        let wide = WeightMatrix::from_vec(2, 4, vec![0.9, 0.1, 0.0, 0.8, 0.85, 0.2, 0.3, 0.0]);
        assert!((exact_score(&wide) - exhaustive_max_matching(&wide)).abs() < 1e-9);
        let tall = wide.transposed();
        assert!((exact_score(&tall) - exhaustive_max_matching(&tall)).abs() < 1e-9);
    }

    #[test]
    fn pairs_are_one_to_one_and_positive() {
        let m = WeightMatrix::from_vec(3, 3, vec![0.5, 0.5, 0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0]);
        let out = solve_max_matching(&m, None).exact().unwrap();
        assert!((out.score - 1.0).abs() < 1e-9);
        let mut rows: Vec<u32> = out.pairs.iter().map(|p| p.0).collect();
        let mut cols: Vec<u32> = out.pairs.iter().map(|p| p.1).collect();
        rows.dedup();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(rows.len(), out.pairs.len());
        assert_eq!(cols.len(), out.pairs.len());
    }

    #[test]
    fn early_termination_triggers_and_bound_is_valid() {
        let m = WeightMatrix::from_vec(2, 2, vec![0.3, 0.0, 0.0, 0.3]);
        // Optimal is 0.6; threshold 10 can never be reached.
        match solve_max_matching(&m, Some(10.0)) {
            MatchOutcome::EarlyTerminated { upper_bound } => {
                assert!(upper_bound >= 0.6 - 1e-9, "bound must stay above optimum");
                assert!(upper_bound < 10.0);
            }
            MatchOutcome::Exact(_) => panic!("should have terminated early"),
        }
    }

    #[test]
    fn no_early_termination_below_optimum() {
        let m = WeightMatrix::from_vec(2, 2, vec![0.9, 0.2, 0.1, 0.8]);
        // Threshold below the optimum (1.7): must complete exactly.
        match solve_max_matching(&m, Some(1.0)) {
            MatchOutcome::Exact(mm) => assert!((mm.score - 1.7).abs() < 1e-9),
            MatchOutcome::EarlyTerminated { .. } => {
                panic!("must not terminate when optimum exceeds threshold")
            }
        }
    }

    #[test]
    fn agrees_with_exhaustive_on_grid() {
        // Deterministic pseudo-random small matrices.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for rows in 1..5 {
            for cols in 1..5 {
                for _ in 0..20 {
                    let m = WeightMatrix::from_fn(rows, cols, |_, _| {
                        let v = next();
                        if v < 0.3 {
                            0.0
                        } else {
                            v
                        }
                    });
                    let exact = exact_score(&m);
                    let oracle = exhaustive_max_matching(&m);
                    assert!(
                        (exact - oracle).abs() < 1e-9,
                        "mismatch on {rows}x{cols}: km={exact} oracle={oracle} m={m:?}"
                    );
                    // Greedy half-approximation must hold.
                    let g = greedy_matching(&m);
                    assert!(g.score <= exact + 1e-9);
                    assert!(g.score >= exact / 2.0 - 1e-9);
                }
            }
        }
    }

    #[test]
    fn stats_count_phases() {
        let m = WeightMatrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let (out, stats) = solve_max_matching_with_stats(&m, None);
        assert!((out.score() - 3.0).abs() < 1e-9);
        assert_eq!(stats.phases, 3);
    }
}
