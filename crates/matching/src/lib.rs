//! Bipartite matching for semantic overlap.
//!
//! The semantic overlap of two sets is the score of a maximum weight
//! bipartite matching (the assignment problem) over the element-similarity
//! graph (paper §II). This crate provides:
//!
//! * [`graph::WeightMatrix`] — a dense rectangular weight matrix with
//!   non-negative weights (α-thresholded similarities).
//! * [`hungarian`] — an exact `O(r²·c)` Kuhn–Munkres solver with the
//!   **label-sum early-termination filter** of Lemma 8: the sum of feasible
//!   node labels upper-bounds the optimal score and only decreases, so the
//!   run can abort as soon as it drops below the pruning threshold `θlb`.
//! * [`greedy`] — the `O(E log E)` greedy matching whose score lower-bounds
//!   the optimum by at least ½ (Lemma 3), used by the LB-filter.
//! * [`exhaustive`] — a factorial-time oracle for property tests.
//!
//! Entry points: build a [`WeightMatrix`] from α-thresholded similarities,
//! then call [`solve_max_matching`] (exact, with optional `theta` early
//! abort) or [`greedy_matching`] (fast ½-approximation). The Koios engine
//! calls both through `koios-core`; direct use is for oracles and tests.

pub mod exhaustive;
pub mod graph;
pub mod greedy;
pub mod hungarian;

pub use graph::WeightMatrix;
pub use greedy::greedy_matching;
pub use hungarian::{solve_max_matching, MatchOutcome, Matching};
