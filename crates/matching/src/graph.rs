//! Dense rectangular weight matrices.
//!
//! A [`WeightMatrix`] holds the α-thresholded pairwise similarities between
//! a query set (rows) and a candidate set (columns). Weights are
//! non-negative; a weight of zero means "no edge" (similarity below α or
//! incomparable elements), matching Def. 1's `simα`.

/// A row-major dense matrix of non-negative edge weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMatrix {
    rows: usize,
    cols: usize,
    w: Vec<f64>,
}

impl WeightMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        WeightMatrix {
            rows,
            cols,
            w: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns NaN or a negative weight.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut w = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                let v = f(i, j);
                assert!(v >= 0.0, "edge weights must be non-negative, got {v}");
                w.push(v);
            }
        }
        WeightMatrix { rows, cols, w }
    }

    /// Builds a matrix from a row-major weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != rows * cols` or any weight is negative/NaN.
    pub fn from_vec(rows: usize, cols: usize, w: Vec<f64>) -> Self {
        assert_eq!(w.len(), rows * cols, "weight vector has wrong length");
        assert!(
            w.iter().all(|&v| v >= 0.0),
            "edge weights must be non-negative"
        );
        WeightMatrix { rows, cols, w }
    }

    /// Number of rows (query elements).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (candidate elements).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The weight at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.w[row * self.cols + col]
    }

    /// Sets the weight at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        assert!(v >= 0.0, "edge weights must be non-negative");
        self.w[row * self.cols + col] = v;
    }

    /// A view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.w[row * self.cols..(row + 1) * self.cols]
    }

    /// The maximum weight of a row (0 for edgeless rows).
    pub fn row_max(&self, row: usize) -> f64 {
        self.row(row).iter().copied().fold(0.0, f64::max)
    }

    /// The maximum weight in the matrix.
    pub fn max_weight(&self) -> f64 {
        self.w.iter().copied().fold(0.0, f64::max)
    }

    /// Number of non-zero edges.
    pub fn edge_count(&self) -> usize {
        self.w.iter().filter(|&&v| v > 0.0).count()
    }

    /// All non-zero edges as `(row, col, weight)` triples.
    pub fn edges(&self) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = self.get(i, j);
                if v > 0.0 {
                    out.push((i as u32, j as u32, v));
                }
            }
        }
        out
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> WeightMatrix {
        let mut t = WeightMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.w[j * self.rows + i] = self.get(i, j);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = WeightMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn row_max_and_max_weight() {
        let m = WeightMatrix::from_vec(2, 2, vec![0.1, 0.9, 0.3, 0.2]);
        assert_eq!(m.row_max(0), 0.9);
        assert_eq!(m.row_max(1), 0.3);
        assert_eq!(m.max_weight(), 0.9);
    }

    #[test]
    fn edges_skips_zeros() {
        let m = WeightMatrix::from_vec(2, 2, vec![0.0, 0.5, 0.0, 0.0]);
        assert_eq!(m.edges(), vec![(0, 1, 0.5)]);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = WeightMatrix::from_fn(2, 3, |i, j| (i + 2 * j) as f64);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
        assert_eq!(t.transposed(), m);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = WeightMatrix::from_vec(1, 1, vec![-0.1]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_length_rejected() {
        let _ = WeightMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
