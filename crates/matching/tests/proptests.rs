//! Property tests for the matching substrate.

use koios_matching::exhaustive::exhaustive_max_matching;
use koios_matching::greedy::greedy_matching;
use koios_matching::hungarian::{solve_max_matching, MatchOutcome};
use koios_matching::WeightMatrix;
use proptest::prelude::*;

/// Strategy: a small weight matrix with α-style sparsity (weights are either
/// 0 or in [0.5, 1.0], like thresholded similarities).
fn small_matrix() -> impl Strategy<Value = WeightMatrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0),
                7 => 0.5f64..1.0,
            ],
            r * c,
        )
        .prop_map(move |w| WeightMatrix::from_vec(r, c, w))
    })
}

proptest! {
    #[test]
    fn hungarian_matches_exhaustive(m in small_matrix()) {
        let km = solve_max_matching(&m, None).score();
        let oracle = exhaustive_max_matching(&m);
        prop_assert!((km - oracle).abs() < 1e-9, "km={km} oracle={oracle}");
    }

    #[test]
    fn greedy_is_half_approximation(m in small_matrix()) {
        let opt = solve_max_matching(&m, None).score();
        let g = greedy_matching(&m);
        prop_assert!(g.score <= opt + 1e-9);
        prop_assert!(g.score >= opt / 2.0 - 1e-9);
    }

    #[test]
    fn matching_is_one_to_one(m in small_matrix()) {
        let out = solve_max_matching(&m, None).exact().unwrap();
        let mut rows: Vec<_> = out.pairs.iter().map(|p| p.0).collect();
        let mut cols: Vec<_> = out.pairs.iter().map(|p| p.1).collect();
        rows.sort_unstable();
        cols.sort_unstable();
        let rn = rows.len();
        let cn = cols.len();
        rows.dedup();
        cols.dedup();
        prop_assert_eq!(rows.len(), rn);
        prop_assert_eq!(cols.len(), cn);
        // Score equals the sum of its pair weights.
        let sum: f64 = out.pairs.iter().map(|&(r, c)| m.get(r as usize, c as usize)).sum();
        prop_assert!((sum - out.score).abs() < 1e-9);
    }

    #[test]
    fn early_termination_is_sound(m in small_matrix(), theta in 0.0f64..4.0) {
        let opt = solve_max_matching(&m, None).score();
        match solve_max_matching(&m, Some(theta)) {
            MatchOutcome::Exact(mm) => {
                prop_assert!((mm.score - opt).abs() < 1e-9);
            }
            MatchOutcome::EarlyTerminated { upper_bound } => {
                // Termination certifies SO < theta; the bound must dominate
                // the true optimum.
                prop_assert!(upper_bound >= opt - 1e-9,
                    "bound {upper_bound} below optimum {opt}");
                prop_assert!(opt < theta + 1e-9,
                    "terminated although optimum {opt} >= theta {theta}");
            }
        }
    }

    #[test]
    fn symmetric_under_transpose(m in small_matrix()) {
        let a = solve_max_matching(&m, None).score();
        let b = solve_max_matching(&m.transposed(), None).score();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn max_edge_lower_bounds_and_row_sum_upper_bounds(m in small_matrix()) {
        // Lemma 3(a): the max edge weight lower-bounds SO.
        // Row-max relaxation upper-bounds SO (DESIGN §2).
        let opt = solve_max_matching(&m, None).score();
        prop_assert!(m.max_weight() <= opt + 1e-9);
        let mut rowmax: Vec<f64> = (0..m.rows()).map(|i| m.row_max(i)).collect();
        rowmax.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let cap = m.rows().min(m.cols());
        let ub: f64 = rowmax.iter().take(cap).sum();
        prop_assert!(opt <= ub + 1e-9);
    }
}
