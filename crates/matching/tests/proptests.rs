//! Randomized property tests for the matching substrate.
//!
//! Originally written with `proptest`; rewritten as seeded random-case
//! loops because the offline build environment cannot vendor the crate.
//! Coverage is the same: small α-sparse weight matrices, checked against
//! the factorial-time exhaustive oracle.

use koios_matching::exhaustive::exhaustive_max_matching;
use koios_matching::greedy::greedy_matching;
use koios_matching::hungarian::{solve_max_matching, MatchOutcome};
use koios_matching::WeightMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 300;

/// A small weight matrix with α-style sparsity (weights are either 0 or in
/// [0.5, 1.0], like thresholded similarities).
fn small_matrix(rng: &mut StdRng) -> WeightMatrix {
    let r = rng.gen_range(1..6usize);
    let c = rng.gen_range(1..6usize);
    let w: Vec<f64> = (0..r * c)
        .map(|_| {
            if rng.gen::<f64>() < 0.3 {
                0.0
            } else {
                rng.gen_range(0.5..1.0)
            }
        })
        .collect();
    WeightMatrix::from_vec(r, c, w)
}

#[test]
fn hungarian_matches_exhaustive() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let m = small_matrix(&mut rng);
        let km = solve_max_matching(&m, None).score();
        let oracle = exhaustive_max_matching(&m);
        assert!((km - oracle).abs() < 1e-9, "km={km} oracle={oracle}");
    }
}

#[test]
fn greedy_is_half_approximation() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let m = small_matrix(&mut rng);
        let opt = solve_max_matching(&m, None).score();
        let g = greedy_matching(&m);
        assert!(g.score <= opt + 1e-9);
        assert!(g.score >= opt / 2.0 - 1e-9);
    }
}

#[test]
fn matching_is_one_to_one() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let m = small_matrix(&mut rng);
        let out = solve_max_matching(&m, None).exact().unwrap();
        let mut rows: Vec<_> = out.pairs.iter().map(|p| p.0).collect();
        let mut cols: Vec<_> = out.pairs.iter().map(|p| p.1).collect();
        rows.sort_unstable();
        cols.sort_unstable();
        let rn = rows.len();
        let cn = cols.len();
        rows.dedup();
        cols.dedup();
        assert_eq!(rows.len(), rn);
        assert_eq!(cols.len(), cn);
        // Score equals the sum of its pair weights.
        let sum: f64 = out
            .pairs
            .iter()
            .map(|&(r, c)| m.get(r as usize, c as usize))
            .sum();
        assert!((sum - out.score).abs() < 1e-9);
    }
}

#[test]
fn early_termination_is_sound() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let m = small_matrix(&mut rng);
        let theta = rng.gen_range(0.0..4.0f64);
        let opt = solve_max_matching(&m, None).score();
        match solve_max_matching(&m, Some(theta)) {
            MatchOutcome::Exact(mm) => {
                assert!((mm.score - opt).abs() < 1e-9);
            }
            MatchOutcome::EarlyTerminated { upper_bound } => {
                // Termination certifies SO < theta; the bound must dominate
                // the true optimum.
                assert!(
                    upper_bound >= opt - 1e-9,
                    "bound {upper_bound} below optimum {opt}"
                );
                assert!(
                    opt < theta + 1e-9,
                    "terminated although optimum {opt} >= theta {theta}"
                );
            }
        }
    }
}

#[test]
fn symmetric_under_transpose() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let m = small_matrix(&mut rng);
        let a = solve_max_matching(&m, None).score();
        let b = solve_max_matching(&m.transposed(), None).score();
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn max_edge_lower_bounds_and_row_sum_upper_bounds() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let m = small_matrix(&mut rng);
        // Lemma 3(a): the max edge weight lower-bounds SO.
        // Row-max relaxation upper-bounds SO (DESIGN §2).
        let opt = solve_max_matching(&m, None).score();
        assert!(m.max_weight() <= opt + 1e-9);
        let mut rowmax: Vec<f64> = (0..m.rows()).map(|i| m.row_max(i)).collect();
        rowmax.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let cap = m.rows().min(m.cols());
        let ub: f64 = rowmax.iter().take(cap).sum();
        assert!(opt <= ub + 1e-9);
    }
}
