//! The exhaustive Baseline and Baseline+ (paper §VIII-A4).
//!
//! The Baseline shares Koios' candidate generation (the token stream and
//! inverted index are needed just to find sets with non-zero overlap) but
//! then runs the cubic exact matching on *every* candidate, parallelised by
//! a thread pool. Baseline+ additionally activates the iUB filter — the
//! paper needs it on WDC where exhaustive verification is infeasible
//! (190k+ candidates for a cardinality-53 query).
//!
//! Both are thin wrappers over [`koios_core::Koios`] with the corresponding
//! [`KoiosConfig`] toggles; keeping them behind named functions documents
//! the experiment setup and pins `verify_all` semantics in one place.

use koios_common::TokenId;
use koios_core::{Koios, KoiosConfig, SearchResult};
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;
use std::sync::Arc;
use std::time::Duration;

/// Runs the paper's Baseline: no iUB / No-EM / early-termination filters;
/// every candidate is verified (`em_threads`-way parallel).
pub fn baseline_search(
    repo: &Repository,
    sim: Arc<dyn ElementSimilarity>,
    query: &[TokenId],
    k: usize,
    alpha: f64,
    em_threads: usize,
    time_budget: Option<Duration>,
) -> SearchResult {
    let mut cfg = KoiosConfig::new(k, alpha)
        .baseline()
        .with_parallel_em(em_threads);
    cfg.time_budget = time_budget;
    Koios::new(repo, sim, cfg).search(query)
}

/// Runs Baseline+: exhaustive verification, but with the iUB filter
/// thinning the candidate set during refinement.
pub fn baseline_plus_search(
    repo: &Repository,
    sim: Arc<dyn ElementSimilarity>,
    query: &[TokenId],
    k: usize,
    alpha: f64,
    em_threads: usize,
    time_budget: Option<Duration>,
) -> SearchResult {
    let mut cfg = KoiosConfig::new(k, alpha)
        .baseline_plus()
        .with_parallel_em(em_threads);
    cfg.time_budget = time_budget;
    Koios::new(repo, sim, cfg).search(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_common::SetId;
    use koios_datagen::corpus::{Corpus, CorpusSpec};
    use koios_embed::sim::CosineSimilarity;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusSpec::small(31))
    }

    #[test]
    fn baseline_agrees_with_koios() {
        let c = corpus();
        let sim: Arc<dyn ElementSimilarity> =
            Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
        let query = c.repository.set(SetId(5)).to_vec();
        let base = baseline_search(&c.repository, sim.clone(), &query, 5, 0.8, 1, None);
        let engine = Koios::new(&c.repository, sim, KoiosConfig::new(5, 0.8));
        let koios = engine.search(&query);
        assert_eq!(base.hits.len(), koios.hits.len());
        // Koios orders hits by upper bound and No-EM certified hits carry
        // intervals, so compare exact scores order-independently: each hit's
        // true overlap must lie in its interval, and the sorted score lists
        // of the two engines must agree.
        let mut ktruths: Vec<f64> = koios
            .hits
            .iter()
            .map(|k| {
                let truth = engine.exact_overlap(&query, k.set);
                assert!(
                    truth >= k.score.lb() - 1e-9 && truth <= k.score.ub() + 1e-9,
                    "truth {truth} outside koios [{}, {}]",
                    k.score.lb(),
                    k.score.ub()
                );
                truth
            })
            .collect();
        ktruths.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (b, kt) in base.hits.iter().zip(&ktruths) {
            let bs = b.score.exact().expect("baseline scores are exact");
            assert!((bs - kt).abs() < 1e-9, "baseline {bs} vs koios truth {kt}");
        }
    }

    #[test]
    fn baseline_verifies_every_candidate() {
        let c = corpus();
        let sim: Arc<dyn ElementSimilarity> =
            Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
        let query = c.repository.set(SetId(9)).to_vec();
        let res = baseline_search(&c.repository, sim, &query, 3, 0.8, 2, None);
        assert_eq!(res.stats.em_full, res.stats.candidates);
        assert_eq!(res.stats.iub_pruned, 0);
    }

    #[test]
    fn baseline_plus_prunes_but_stays_exact() {
        let c = corpus();
        let sim: Arc<dyn ElementSimilarity> =
            Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
        let query = c.repository.set(SetId(9)).to_vec();
        let plus = baseline_plus_search(&c.repository, sim.clone(), &query, 3, 0.8, 1, None);
        let base = baseline_search(&c.repository, sim, &query, 3, 0.8, 1, None);
        // Same result scores.
        let ps: Vec<f64> = plus.hits.iter().map(|h| h.score.ub()).collect();
        let bs: Vec<f64> = base.hits.iter().map(|h| h.score.ub()).collect();
        for (a, b) in ps.iter().zip(&bs) {
            assert!((a - b).abs() < 1e-9);
        }
        // Fewer (or equal) verifications thanks to the iUB filter.
        assert!(plus.stats.em_full <= base.stats.em_full);
    }

    #[test]
    fn tiny_time_budget_flags_timeout() {
        let c = corpus();
        let sim: Arc<dyn ElementSimilarity> =
            Arc::new(CosineSimilarity::new(Arc::new(c.embeddings.clone())));
        let query = c.repository.set(SetId(1)).to_vec();
        let res = baseline_search(
            &c.repository,
            sim,
            &query,
            3,
            0.8,
            1,
            Some(Duration::from_nanos(1)),
        );
        assert!(res.stats.timed_out);
    }
}
