//! A SilkMoth-style fuzzy set search comparator (paper §VIII-B).
//!
//! SilkMoth (Deng et al., PVLDB'17) finds related sets under a
//! maximum-matching measure with a *threshold* `δ` via a three-stage
//! pipeline: per-element **signatures** → inverted-index **candidate
//! generation** → **check/verify**. The paper compares Koios against two
//! adaptations:
//!
//! * [`SilkMothVariant::Syntactic`] — full machinery, including the
//!   similarity-specific *prefix-filter* signatures (valid for Jaccard on
//!   q-gram sets: two elements with `J ≥ α` must collide inside their
//!   frequency-ordered prefixes of length `⌊(1−α)·|T|⌋ + 1`).
//! * [`SilkMothVariant::Semantic`] — the generic framework suggested by the
//!   SilkMoth authors: no similarity-specific filters, i.e. signatures
//!   degrade to *all* element tokens, inflating the candidate set.
//!
//! Threshold search cannot answer top-k directly (`θ*k` is unknown
//! upfront — one of the problems Koios solves); the paper feeds SilkMoth
//! the true `θ*k` and keeps a top-k priority queue, which
//! [`SilkMoth::search_topk`] reproduces.

use koios_common::{SetId, TokenId};
use koios_core::overlap::similarity_matrix;
use koios_embed::repository::Repository;
use koios_embed::sim::QGramJaccard;
use koios_index::inverted::InvertedIndex;
use koios_matching::solve_max_matching;
use std::collections::{HashMap, HashSet};

/// Which SilkMoth adaptation to run (§VIII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SilkMothVariant {
    /// Similarity-specific prefix-filter signatures.
    Syntactic,
    /// Generic framework: signatures are all element tokens.
    Semantic,
}

/// Counters of one SilkMoth search.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilkMothStats {
    /// Candidate sets produced by signature collisions.
    pub candidate_sets: usize,
    /// Candidates surviving the cheap check-phase upper bound.
    pub checked: usize,
    /// Exact matchings computed.
    pub verified: usize,
    /// Sets meeting the threshold.
    pub kept: usize,
}

/// A SilkMoth search engine over q-gram Jaccard element similarity.
pub struct SilkMoth<'r> {
    repo: &'r Repository,
    variant: SilkMothVariant,
    alpha: f64,
    sim: QGramJaccard,
    index: InvertedIndex,
    /// Per-token q-grams in canonical (ascending global frequency) order.
    ordered_grams: Vec<Box<[u32]>>,
    /// Signature gram → corpus elements whose signature contains it.
    signature_index: HashMap<u32, Vec<TokenId>>,
}

impl<'r> SilkMoth<'r> {
    /// Builds the signature machinery over the **current** vocabulary of
    /// `repo` (intern query strings first, as with [`QGramJaccard`]).
    pub fn new(repo: &'r Repository, variant: SilkMothVariant, q: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        let sim = QGramJaccard::new(repo, q);
        let index = InvertedIndex::build(repo);

        // Dense gram universe + document frequency over vocabulary elements.
        let mut gram_ids: HashMap<u64, u32> = HashMap::new();
        let mut raw: Vec<Vec<u32>> = Vec::with_capacity(repo.vocab_size());
        for t in 0..repo.vocab_size() {
            let gs = gram_hashes(repo.token_str(TokenId(t as u32)), q);
            let mut ids: Vec<u32> = gs
                .into_iter()
                .map(|h| {
                    let next = gram_ids.len() as u32;
                    *gram_ids.entry(h).or_insert(next)
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            raw.push(ids);
        }
        let mut freq = vec![0u32; gram_ids.len()];
        for ids in &raw {
            for &g in ids {
                freq[g as usize] += 1;
            }
        }
        // Canonical order: rare grams first (standard prefix filtering).
        let mut rank = vec![0u32; freq.len()];
        let mut order: Vec<u32> = (0..freq.len() as u32).collect();
        order.sort_by_key(|&g| (freq[g as usize], g));
        for (r, &g) in order.iter().enumerate() {
            rank[g as usize] = r as u32;
        }
        let ordered_grams: Vec<Box<[u32]>> = raw
            .into_iter()
            .map(|mut ids| {
                ids.sort_by_key(|&g| rank[g as usize]);
                ids.into_boxed_slice()
            })
            .collect();

        // Signature index over corpus elements (tokens occurring in sets).
        let mut signature_index: HashMap<u32, Vec<TokenId>> = HashMap::new();
        for t in 0..repo.vocab_size() as u32 {
            let t = TokenId(t);
            if index.postings(t).is_empty() {
                continue;
            }
            let grams = &ordered_grams[t.idx()];
            let sig_len = signature_len(grams.len(), alpha, variant);
            for &g in grams.iter().take(sig_len) {
                signature_index.entry(g).or_default().push(t);
            }
        }

        SilkMoth {
            repo,
            variant,
            alpha,
            sim,
            index,
            ordered_grams,
            signature_index,
        }
    }

    /// The variant this engine runs.
    pub fn variant(&self) -> SilkMothVariant {
        self.variant
    }

    /// All sets with semantic (q-gram fuzzy) overlap ≥ `delta`, with their
    /// exact scores (threshold search — SilkMoth's native mode).
    pub fn search_threshold(
        &self,
        query: &[TokenId],
        delta: f64,
    ) -> (Vec<(SetId, f64)>, SilkMothStats) {
        let mut q = query.to_vec();
        q.sort_unstable();
        q.dedup();
        let mut stats = SilkMothStats::default();

        // Stage 1+2: signature collisions → candidate sets.
        let mut cand_sets: HashSet<SetId> = HashSet::new();
        for &qe in &q {
            let grams = self
                .ordered_grams
                .get(qe.idx())
                .map(|g| &**g)
                .unwrap_or(&[]);
            let sig_len = signature_len(grams.len(), self.alpha, self.variant);
            for &g in grams.iter().take(sig_len) {
                if let Some(elems) = self.signature_index.get(&g) {
                    for &e in elems {
                        cand_sets.extend(self.index.postings(e).iter().copied());
                    }
                }
            }
            // Identical elements match at similarity 1 even without grams
            // (empty strings): cover them through the inverted index.
            cand_sets.extend(self.index.postings(qe).iter().copied());
        }
        stats.candidate_sets = cand_sets.len();

        // Stage 3: check (row-max upper bound), then verify (Hungarian).
        let mut results = Vec::new();
        let mut cands: Vec<SetId> = cand_sets.into_iter().collect();
        cands.sort_unstable();
        for set in cands {
            let m = similarity_matrix(&self.sim, self.alpha, &q, self.repo.set(set));
            let cap = m.rows().min(m.cols());
            let mut rowmax: Vec<f64> = (0..m.rows()).map(|i| m.row_max(i)).collect();
            rowmax.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
            let ub: f64 = rowmax.iter().take(cap).sum();
            if ub < delta - 1e-9 {
                continue;
            }
            stats.checked += 1;
            let so = solve_max_matching(&m, None).score();
            stats.verified += 1;
            if so >= delta - 1e-9 && so > 0.0 {
                results.push((set, so));
            }
        }
        stats.kept = results.len();
        results.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("no NaN")
                .then_with(|| a.0.cmp(&b.0))
        });
        (results, stats)
    }

    /// The paper's top-k adaptation: threshold search at `theta` (the true
    /// `θ*k`, which the paper feeds SilkMoth as an advantage) followed by a
    /// top-k selection. Falls back to `delta = 0` if `theta` over-prunes.
    pub fn search_topk(
        &self,
        query: &[TokenId],
        k: usize,
        theta: f64,
    ) -> (Vec<(SetId, f64)>, SilkMothStats) {
        let (mut results, stats) = self.search_threshold(query, theta);
        if results.len() < k {
            let (all, stats) = self.search_threshold(query, 0.0);
            let mut all = all;
            all.truncate(k);
            return (all, stats);
        }
        results.truncate(k);
        (results, stats)
    }
}

/// Signature length: prefix filtering for Jaccard in the syntactic variant,
/// everything in the similarity-agnostic one.
fn signature_len(n_grams: usize, alpha: f64, variant: SilkMothVariant) -> usize {
    match variant {
        SilkMothVariant::Syntactic => {
            if n_grams == 0 {
                0
            } else {
                // J(A, B) ≥ α ⇒ |A∩B| ≥ ⌈α·|A|⌉, so a prefix of length
                // |A| − ⌈α·|A|⌉ + 1 must collide (computed in exact-ceil
                // arithmetic — float `(1−α)·n` is one short at α = 0.8).
                let t = (alpha * n_grams as f64 - 1e-9).ceil() as usize;
                (n_grams - t.min(n_grams) + 1).min(n_grams)
            }
        }
        SilkMothVariant::Semantic => n_grams,
    }
}

/// Lowercase q-gram hash multiset of a string (matching
/// [`QGramJaccard`]'s tokenisation).
fn gram_hashes(s: &str, q: usize) -> Vec<u64> {
    let chars: Vec<char> = s.to_lowercase().chars().collect();
    let hash = |cs: &[char]| {
        let mut h = 0xcbf29ce484222325u64;
        for &c in cs {
            h ^= c as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    };
    if chars.is_empty() {
        Vec::new()
    } else if chars.len() < q {
        vec![hash(&chars)]
    } else {
        chars.windows(q).map(hash).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_core::overlap::semantic_overlap;
    use koios_embed::repository::RepositoryBuilder;

    fn repo() -> Repository {
        let mut b = RepositoryBuilder::new();
        b.add_set("clean", ["Blaine", "Charleston", "Columbia"]);
        b.add_set("dirty", ["Blain", "Charlestown", "Columbias"]);
        b.add_set("partial", ["Blaine", "Zebra", "Xylophone"]);
        b.add_set("far", ["Quokka", "Wombat"]);
        b.build()
    }

    #[test]
    fn threshold_search_is_exact_vs_oracle() {
        let r = repo();
        let q = r.intern_query(["Blaine", "Charleston", "Columbia"]);
        let sim = QGramJaccard::new(&r, 3);
        for variant in [SilkMothVariant::Syntactic, SilkMothVariant::Semantic] {
            for delta in [0.5, 1.0, 2.0] {
                let sm = SilkMoth::new(&r, variant, 3, 0.5);
                let (res, _) = sm.search_threshold(&q, delta);
                // Oracle: all sets with SO >= delta.
                let mut expected: Vec<(SetId, f64)> = r
                    .iter_sets()
                    .map(|(id, _)| (id, semantic_overlap(&r, &sim, 0.5, &q, id)))
                    .filter(|(_, s)| *s >= delta - 1e-9 && *s > 0.0)
                    .collect();
                expected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
                assert_eq!(
                    res.len(),
                    expected.len(),
                    "{variant:?} delta={delta}: {res:?} vs {expected:?}"
                );
                for ((s1, v1), (s2, v2)) in res.iter().zip(&expected) {
                    assert_eq!(s1, s2);
                    assert!((v1 - v2).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn syntactic_generates_fewer_or_equal_candidates() {
        let r = repo();
        let q = r.intern_query(["Blaine", "Charleston", "Columbia"]);
        let syn = SilkMoth::new(&r, SilkMothVariant::Syntactic, 3, 0.5);
        let sem = SilkMoth::new(&r, SilkMothVariant::Semantic, 3, 0.5);
        let (_, s1) = syn.search_threshold(&q, 1.0);
        let (_, s2) = sem.search_threshold(&q, 1.0);
        assert!(s1.candidate_sets <= s2.candidate_sets);
    }

    #[test]
    fn topk_with_true_theta_matches_plain_topk() {
        let r = repo();
        let q = r.intern_query(["Blaine", "Charleston", "Columbia"]);
        let sim = QGramJaccard::new(&r, 3);
        let k = 2;
        // Oracle top-k and θ*k.
        let mut oracle: Vec<(SetId, f64)> = r
            .iter_sets()
            .map(|(id, _)| (id, semantic_overlap(&r, &sim, 0.5, &q, id)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        oracle.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let theta_k = oracle[k - 1].1;
        let sm = SilkMoth::new(&r, SilkMothVariant::Syntactic, 3, 0.5);
        let (res, _) = sm.search_topk(&q, k, theta_k);
        assert_eq!(res.len(), k);
        for (got, want) in res.iter().zip(&oracle) {
            assert!((got.1 - want.1).abs() < 1e-9);
        }
    }

    #[test]
    fn topk_falls_back_when_theta_too_high() {
        let r = repo();
        let q = r.intern_query(["Blaine"]);
        let sm = SilkMoth::new(&r, SilkMothVariant::Syntactic, 3, 0.5);
        let (res, _) = sm.search_topk(&q, 2, 100.0);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn signature_len_boundaries() {
        assert_eq!(signature_len(0, 0.8, SilkMothVariant::Syntactic), 0);
        // n=10, α=0.8: required overlap ⌈8⌉ = 8 → prefix 10−8+1 = 3.
        assert_eq!(signature_len(10, 0.8, SilkMothVariant::Syntactic), 3);
        assert_eq!(signature_len(10, 1.0, SilkMothVariant::Syntactic), 1);
        assert_eq!(signature_len(7, 0.5, SilkMothVariant::Syntactic), 4);
        assert_eq!(signature_len(10, 0.8, SilkMothVariant::Semantic), 10);
    }
}
