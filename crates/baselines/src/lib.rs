//! Comparators for the Koios evaluation (paper §VIII).
//!
//! * [`exhaustive`] — the paper's **Baseline** (token stream → verify every
//!   candidate with the Hungarian algorithm, thread-pooled) and
//!   **Baseline+** (adds the iUB filter), §VIII-A4.
//! * [`vanilla`] — exact top-k search under vanilla overlap `|Q ∩ C|`
//!   (the syntactic comparator of the quality experiment, Fig. 8).
//! * [`greedy_search`] — top-k by greedy matching score, the non-exact
//!   comparator of Example 2 (it mis-ranks rearrangement cases).
//! * [`silkmoth`] — a SilkMoth-style fuzzy set search (signature →
//!   candidate → verify) in the two variants of §VIII-B: `Syntactic`
//!   (prefix-filter signatures, similarity-specific) and `Semantic` (the
//!   generic framework with full-token signatures), plus the θ-fed top-k
//!   adaptation the paper uses for the comparison.
//!
//! Entry points: [`baseline_search`] / [`baseline_plus_search`],
//! [`vanilla_topk`], [`greedy_topk`], and [`SilkMoth::search_topk`] — all
//! take the same repository/similarity/query inputs as the Koios engine,
//! so `koios-bench` swaps them in per experiment.

pub mod exhaustive;
pub mod greedy_search;
pub mod silkmoth;
pub mod vanilla;

pub use exhaustive::{baseline_plus_search, baseline_search};
pub use greedy_search::greedy_topk;
pub use silkmoth::{SilkMoth, SilkMothStats, SilkMothVariant};
pub use vanilla::vanilla_topk;
