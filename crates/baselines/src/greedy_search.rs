//! Top-k search under *greedy* matching — the inexact comparator of the
//! paper's Example 2.
//!
//! Greedy matching pairs elements in descending weight order; its score is
//! only a ½-approximation of the true semantic overlap, and Example 2 shows
//! it mis-ranks sets whose optimal matching rearranges a heavy edge. This
//! module exists to demonstrate that gap (see `examples/document_search.rs`
//! and the `greedy_vs_exact` integration test).

use koios_common::{SetId, TokenId};
use koios_core::overlap::greedy_overlap;
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;
use koios_index::inverted::InvertedIndex;
use std::collections::HashSet;

/// Returns up to `k` sets ranked by greedy matching score. Candidates are
/// generated exactly like Koios (any set sharing a `≥ α` element pair),
/// then scored greedily.
pub fn greedy_topk(
    repo: &Repository,
    index: &InvertedIndex,
    sim: &dyn ElementSimilarity,
    query: &[TokenId],
    k: usize,
    alpha: f64,
) -> Vec<(SetId, f64)> {
    let mut q = query.to_vec();
    q.sort_unstable();
    q.dedup();
    // Candidate generation: vocabulary scan per query element (the greedy
    // baseline gets the same exact candidate set Koios sees).
    let mut candidates: HashSet<SetId> = HashSet::new();
    for t in 0..repo.vocab_size() as u32 {
        let t = TokenId(t);
        if index.postings(t).is_empty() {
            continue;
        }
        let matches = q.iter().any(|&qt| sim.sim_alpha(qt, t, alpha) > 0.0);
        if matches {
            candidates.extend(index.postings(t).iter().copied());
        }
    }
    let mut scored: Vec<(SetId, f64)> = candidates
        .into_iter()
        .map(|set| (set, greedy_overlap(repo, sim, alpha, &q, set)))
        .filter(|(_, s)| *s > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are never NaN")
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_core::overlap::semantic_overlap;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::QGramJaccard;

    #[test]
    fn greedy_can_mis_rank_but_never_over_scores() {
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["Blaine", "Charleston", "Columbia"]);
        b.add_set("c2", ["Blain", "Charlestown", "Columbias"]);
        let mut repo = b.build();
        let q = repo.intern_query_mut(["Blaine", "Charleston", "Columbia"]);
        let sim = QGramJaccard::new(&repo, 3);
        let idx = InvertedIndex::build(&repo);
        let top = greedy_topk(&repo, &idx, &sim, &q, 2, 0.3);
        assert_eq!(top.len(), 2);
        for &(set, g) in &top {
            let so = semantic_overlap(&repo, &sim, 0.3, &q, set);
            assert!(g <= so + 1e-9);
            assert!(g >= so / 2.0 - 1e-9);
        }
    }

    #[test]
    fn exact_match_set_ranks_first() {
        let mut b = RepositoryBuilder::new();
        b.add_set("exact", ["alpha", "beta", "gamma"]);
        b.add_set("far", ["delta", "epsilon"]);
        let repo = b.build();
        let q = repo.intern_query(["alpha", "beta", "gamma"]);
        let sim = QGramJaccard::new(&repo, 3);
        let idx = InvertedIndex::build(&repo);
        let top = greedy_topk(&repo, &idx, &sim, &q, 1, 0.5);
        assert_eq!(top[0].0, SetId(0));
        assert!((top[0].1 - 3.0).abs() < 1e-9);
    }
}
