//! Exact top-k vanilla overlap search (`|Q ∩ C|`).
//!
//! The syntactic comparator of the quality experiment (Fig. 8) and the
//! degenerate case of semantic overlap under [`EqualitySimilarity`]
//! (Def. 1). Implemented JOSIE-style as posting-list counting: one pass
//! over the query tokens' posting lists accumulates per-set intersection
//! counts, then a linear top-k selection.
//!
//! [`EqualitySimilarity`]: koios_embed::sim::EqualitySimilarity

use koios_common::{SetId, TokenId};
use koios_embed::repository::Repository;
use koios_index::inverted::InvertedIndex;
use std::collections::HashMap;

/// Returns up to `k` sets with the largest vanilla overlap with `query`
/// (descending count, ties by ascending set id). Sets with zero overlap are
/// never returned.
pub fn vanilla_topk(
    repo: &Repository,
    index: &InvertedIndex,
    query: &[TokenId],
    k: usize,
) -> Vec<(SetId, usize)> {
    let mut q = query.to_vec();
    q.sort_unstable();
    q.dedup();
    let mut counts: HashMap<SetId, usize> = HashMap::new();
    for &t in &q {
        for &set in index.postings(t) {
            *counts.entry(set).or_insert(0) += 1;
        }
    }
    let mut scored: Vec<(SetId, usize)> = counts.into_iter().collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    let _ = repo; // signature kept symmetric with the other baselines
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;

    fn setup() -> (Repository, InvertedIndex) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c", "d"]);
        b.add_set("s1", ["a", "b", "c"]);
        b.add_set("s2", ["a", "x"]);
        b.add_set("s3", ["y", "z"]);
        let repo = b.build();
        let idx = InvertedIndex::build(&repo);
        (repo, idx)
    }

    #[test]
    fn counts_and_ranks_correctly() {
        let (repo, idx) = setup();
        let q = repo.intern_query(["a", "b", "c", "d"]);
        let top = vanilla_topk(&repo, &idx, &q, 10);
        assert_eq!(top, vec![(SetId(0), 4), (SetId(1), 3), (SetId(2), 1)]);
    }

    #[test]
    fn zero_overlap_sets_excluded() {
        let (repo, idx) = setup();
        let q = repo.intern_query(["y"]);
        let top = vanilla_topk(&repo, &idx, &q, 10);
        assert_eq!(top, vec![(SetId(3), 1)]);
    }

    #[test]
    fn k_truncates() {
        let (repo, idx) = setup();
        let q = repo.intern_query(["a"]);
        let top = vanilla_topk(&repo, &idx, &q, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, SetId(0)); // tie on count=1 → lowest id first
    }

    #[test]
    fn duplicate_query_tokens_count_once() {
        let (repo, idx) = setup();
        let mut q = repo.intern_query(["a", "b"]);
        let a = q[0];
        q.push(a); // duplicate
        let top = vanilla_topk(&repo, &idx, &q, 1);
        assert_eq!(top[0].1, 2);
    }

    #[test]
    fn matches_repository_vanilla_overlap() {
        let (repo, idx) = setup();
        let q = repo.intern_query(["a", "b", "c"]);
        for (set, count) in vanilla_topk(&repo, &idx, &q, 10) {
            assert_eq!(count, repo.vanilla_overlap(&q, set));
        }
    }
}
