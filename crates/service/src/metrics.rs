//! The service's metric surface: one [`Registry`] plus pre-resolved
//! handles for every hot-path instrument.
//!
//! Instrument handles are resolved once at service construction so the
//! request path never touches the registry lock — recording is a couple of
//! relaxed atomic adds ([`Histogram::record`]). The registry itself is only
//! walked at scrape time ([`crate::SearchService::render_metrics`]).
//!
//! Naming follows Prometheus conventions (`_seconds`, `_total`), with the
//! paper's pipeline vocabulary in the `stage` label: `refine` (§V
//! streaming refinement), `verify` (exact-matching verification, Lemmas
//! 7/8), `postprocess` (the whole post-filter phase containing `verify`)
//! and `merge` (the partitioned merge loop, §VI).

use koios_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::{Arc, Mutex};

/// Pre-resolved instrument handles shared by the workers, the pool, and
/// the caches. Cheap to record into from any thread.
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    /// `koios_stage_seconds{stage="refine"}` — streaming refinement wall
    /// time per executed search.
    pub stage_refine: Arc<Histogram>,
    /// `koios_stage_seconds{stage="postprocess"}` — post-processing wall
    /// time per executed search (contains `verify`).
    pub stage_postprocess: Arc<Histogram>,
    /// `koios_stage_seconds{stage="verify"}` — exact-matching verification
    /// wall time per executed search.
    pub stage_verify: Arc<Histogram>,
    /// `koios_stage_seconds{stage="merge"}` — partitioned merge-loop wall
    /// time; only recorded for partitioned searches.
    pub stage_merge: Arc<Histogram>,
    /// `koios_request_seconds{phase="queue"}` — submission to worker
    /// pickup, per request.
    pub request_queue: Arc<Histogram>,
    /// `koios_request_seconds{phase="search"}` — worker pickup to search
    /// completion, per executed search.
    pub request_search: Arc<Histogram>,
    /// `koios_request_seconds{phase="serialize"}` — response serialization
    /// (recorded by the HTTP front-end; empty under direct in-process use).
    pub request_serialize: Arc<Histogram>,
    /// `koios_request_seconds{phase="ingest"}` — wall time of one applied
    /// [`crate::SearchService::ingest`] batch (lock wait + apply + swap).
    pub request_ingest: Arc<Histogram>,
    /// `koios_request_seconds{phase="snapshot"}` — wall time of one
    /// [`crate::SearchService::snapshot_to`] (base write or delta append).
    pub request_snapshot: Arc<Histogram>,
    /// `koios_request_seconds{phase="reload"}` — wall time of one
    /// [`crate::SearchService::reload`] hot swap.
    pub request_reload: Arc<Histogram>,
    /// `koios_mutations_total{op="ingest"}` — successfully applied ingest
    /// batches.
    pub mutations_ingest: Arc<Counter>,
    /// `koios_mutations_total{op="snapshot"}` — successful snapshot writes.
    pub mutations_snapshot: Arc<Counter>,
    /// `koios_mutations_total{op="reload"}` — successful hot reloads.
    pub mutations_reload: Arc<Counter>,
    /// `koios_lock_wait_seconds{cache="result"}` — blocked time acquiring
    /// the result-cache mutex on the request path.
    pub lock_wait_result: Arc<Histogram>,
    /// `koios_lock_wait_seconds{cache="token"}` — blocked time acquiring
    /// the shared token-kNN-cache mutex (installed into the cache via
    /// [`koios_index::knn_cache::TokenKnnCache::install_lock_wait`]).
    pub lock_wait_token: Arc<Histogram>,
    /// `koios_queue_depth` — requests submitted but not yet picked up.
    pub queue_depth: Arc<Gauge>,
    /// `koios_queue_wait_seconds` — submit→dequeue wait per pool job.
    pub queue_wait: Arc<Histogram>,
    /// `koios_uptime_seconds` — refreshed at scrape time.
    pub uptime: Arc<Gauge>,
    /// `koios_shard_seconds{shard="i"}` handles, grown lazily on first
    /// sight of shard `i` (partition counts are per-backend, not static).
    shards: Mutex<Vec<Arc<Histogram>>>,
}

impl ServiceMetrics {
    /// A fresh registry with every request-path instrument pre-registered.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let stage = |s: &str| {
            registry.histogram(
                "koios_stage_seconds",
                "Wall time of one pipeline stage per executed search",
                &[("stage", s)],
            )
        };
        let phase = |p: &str| {
            registry.histogram(
                "koios_request_seconds",
                "End-to-end request latency split by phase",
                &[("phase", p)],
            )
        };
        let lock = |c: &str| {
            registry.histogram(
                "koios_lock_wait_seconds",
                "Blocked time acquiring a shared cache mutex",
                &[("cache", c)],
            )
        };
        let mutation = |op: &str| {
            registry.counter(
                "koios_mutations_total",
                "Successful corpus mutations by operation",
                &[("op", op)],
            )
        };
        ServiceMetrics {
            stage_refine: stage("refine"),
            stage_postprocess: stage("postprocess"),
            stage_verify: stage("verify"),
            stage_merge: stage("merge"),
            request_queue: phase("queue"),
            request_search: phase("search"),
            request_serialize: phase("serialize"),
            request_ingest: phase("ingest"),
            request_snapshot: phase("snapshot"),
            request_reload: phase("reload"),
            mutations_ingest: mutation("ingest"),
            mutations_snapshot: mutation("snapshot"),
            mutations_reload: mutation("reload"),
            lock_wait_result: lock("result"),
            lock_wait_token: lock("token"),
            queue_depth: registry.gauge(
                "koios_queue_depth",
                "Requests submitted but not yet picked up by a worker",
                &[],
            ),
            queue_wait: registry.histogram(
                "koios_queue_wait_seconds",
                "Pool queue wait (submit to dequeue) per job",
                &[],
            ),
            uptime: registry.gauge(
                "koios_uptime_seconds",
                "Seconds since the service was constructed",
                &[],
            ),
            shards: Mutex::new(Vec::new()),
            registry,
        }
    }

    /// The registry behind the handles (for scrape rendering and for
    /// instruments registered outside the hot path).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The `koios_shard_seconds{shard="index"}` histogram, registering it
    /// on first use. Only called after partitioned searches, so a
    /// single-engine service never emits shard series.
    pub fn shard(&self, index: usize) -> Arc<Histogram> {
        let mut shards = self.shards.lock().expect("shard metrics lock");
        while shards.len() <= index {
            let label = shards.len().to_string();
            shards.push(self.registry.histogram(
                "koios_shard_seconds",
                "Per-shard search wall time of partitioned searches",
                &[("shard", &label)],
            ));
        }
        Arc::clone(&shards[index])
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServiceMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceMetrics").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_land_in_one_registry() {
        let m = ServiceMetrics::new();
        m.stage_refine.record(1_000);
        m.queue_depth.set(3);
        m.shard(1).record(2_000); // registers shards 0 and 1
        let text = m.registry().render_prometheus();
        assert!(text.contains("koios_stage_seconds_bucket{stage=\"refine\""));
        assert!(text.contains("koios_queue_depth 3"));
        assert!(text.contains("koios_shard_seconds_bucket{shard=\"1\""));
        assert!(text.contains("koios_shard_seconds_count{shard=\"0\"} 0"));
    }

    #[test]
    fn shard_handles_are_stable() {
        let m = ServiceMetrics::new();
        let a = m.shard(2);
        let b = m.shard(2);
        a.record(5);
        assert_eq!(b.snapshot().count(), 1, "same underlying histogram");
    }
}
