//! The concurrent query-serving layer.

use crate::cache::StripedLruCache;
use crate::metrics::ServiceMetrics;
use crate::pool::{PoolInstruments, Ticket, WorkerPool};
use crate::request::{CacheKey, CacheOutcome, SearchRequest, ServiceResponse};
use crate::slowlog::{SlowQueryLog, SlowQueryRecord};
use crate::stats::{ServiceStats, SnapshotInfo};
use crate::tracer::{record_search_spans, Tracer};
use koios_common::{profile, Json, SetId, TokenId};
use koios_core::mutable::{BatchRejected, MutableEngine};
use koios_core::{
    EngineBackend, Hit, KoiosConfig, OwnedKoios, OwnedPartitionedKoios, SearchResult, SearchStats,
};
use koios_embed::ops::CorpusOp;
use koios_embed::repository::Repository;
use koios_embed::sim::ElementSimilarity;
use koios_embed::vectors::Embeddings;
use koios_index::knn_cache::TokenKnnCache;
use koios_index::live::Applied;
use koios_store::snapshot::{SnapshotMeta, StoreError};
use koios_telemetry::trace::{Trace, TraceBuilder, TraceConfig, TraceSinkStats};
use koios_telemetry::{Profiler, Registry};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant, SystemTime};

/// Tunables of a [`SearchService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Fixed worker-pool width for batch execution. `0` resolves to the
    /// machine's available parallelism at construction.
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Byte budget of the shared token-level kNN cache
    /// ([`TokenKnnCache`]); `0` disables it. Unlike the result cache —
    /// which only answers *exact* query repeats — the token cache reuses
    /// per-element similarity lists across *overlapping* queries, cutting
    /// the kNN/refinement work that dominates search time. The two caches
    /// compose: a result hit skips the search entirely, a token hit makes
    /// the search it cannot skip cheaper.
    pub token_cache_bytes: usize,
    /// Deadline budget applied to requests that carry none. Covers queue
    /// time and search time; `None` means no deadline.
    pub default_time_budget: Option<Duration>,
    /// Time-to-live of result-cache entries; a probe that finds an older
    /// entry evicts it and misses. `None` (the default) keeps entries until
    /// displaced or invalidated.
    pub result_ttl: Option<Duration>,
    /// Time-to-live of token-cache entries (the per-element kNN lists):
    /// a probe that finds an older list evicts it, counts an expiration
    /// and recomputes. `None` (the default) keeps lists until displaced or
    /// invalidated. Only applies to the cache the service creates itself —
    /// a backend-supplied [`TokenKnnCache`] keeps whatever TTL it was
    /// built with.
    pub token_cache_ttl: Option<Duration>,
    /// Structured slow-query logging: requests whose end-to-end latency
    /// (queue + search) crosses the configured threshold emit one JSON
    /// line through the configured sink (see [`SlowQueryLog`]). `None`
    /// (the default) disables the log.
    pub slow_query_log: Option<SlowQueryLog>,
    /// Request-scoped tracing: span trees retained under tail-based
    /// sampling, served as `GET /traces` by `koios-net`. Enabled by
    /// default (a 256-trace ring, 5% probability floor — see
    /// [`TraceConfig`]); set to `None` to strip every per-request tracing
    /// cost. The slow-query-log threshold, when configured, doubles as a
    /// retention rule so every slow-log line resolves to a trace.
    pub tracing: Option<TraceConfig>,
    /// Sampling period of the cooperative wall-clock profiler
    /// ([`koios_telemetry::Profiler`]): one background thread reads every
    /// worker's published `(stage, shard)` slot at this rate and feeds the
    /// counter matrix behind `GET /debug/profile`. Enabled by default at
    /// 1 ms (≈1k samples/s — the `harness profile_overhead` gate proves
    /// the cost is within noise); `None` disables the sampler *and* the
    /// per-request slot stores (workers publish only while a profiler is
    /// attached).
    pub profiler_sample_period: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 1024,
            token_cache_bytes: 16 << 20,
            default_time_budget: None,
            result_ttl: None,
            token_cache_ttl: None,
            slow_query_log: None,
            tracing: Some(TraceConfig::default()),
            profiler_sample_period: Some(Duration::from_millis(1)),
        }
    }
}

impl ServiceConfig {
    /// Starts from the defaults (auto-sized pool, 1024-entry result cache,
    /// 16 MiB token cache, no deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-pool width.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the result-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the token-level kNN cache byte budget (`0` disables it).
    pub fn with_token_cache_bytes(mut self, bytes: usize) -> Self {
        self.token_cache_bytes = bytes;
        self
    }

    /// Sets the default per-request deadline budget.
    pub fn with_default_time_budget(mut self, budget: Duration) -> Self {
        self.default_time_budget = Some(budget);
        self
    }

    /// Sets the result-cache entry time-to-live.
    pub fn with_result_ttl(mut self, ttl: Duration) -> Self {
        self.result_ttl = Some(ttl);
        self
    }

    /// Sets the token-cache entry time-to-live (per-element kNN lists).
    pub fn with_token_cache_ttl(mut self, ttl: Duration) -> Self {
        self.token_cache_ttl = Some(ttl);
        self
    }

    /// Installs a slow-query log (threshold + sink; see [`SlowQueryLog`]).
    pub fn with_slow_query_log(mut self, log: SlowQueryLog) -> Self {
        self.slow_query_log = Some(log);
        self
    }

    /// Replaces the tracing configuration (ring capacity + sampling
    /// policy).
    pub fn with_tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = Some(tracing);
        self
    }

    /// Disables request tracing entirely (the A/B baseline of the
    /// `harness trace_overhead` gate).
    pub fn without_tracing(mut self) -> Self {
        self.tracing = None;
        self
    }

    /// Sets the wall-clock profiler's sampling period.
    pub fn with_profiler_period(mut self, period: Duration) -> Self {
        self.profiler_sample_period = Some(period);
        self
    }

    /// Disables the wall-clock profiler entirely (the A/B baseline of the
    /// `harness profile_overhead` gate).
    pub fn without_profiler(mut self) -> Self {
        self.profiler_sample_period = None;
        self
    }
}

/// Mutable service state behind one lock (counters only — the cache has
/// its own lock so slow searches never serialize behind bookkeeping).
///
/// Counter semantics (mirrored on [`ServiceStats`]): `rejected` counts
/// requests refused without running a search — expired deadline at
/// admission or invalid parameter overrides. `timed_out` counts every
/// request that observed a deadline expiry, whether at admission (also
/// counted in `rejected`) or mid-search, so it always agrees with the
/// number of responses carrying `stats.timed_out = true`.
#[derive(Default)]
struct StatsInner {
    queries: u64,
    batches: u64,
    cache_hits: u64,
    searched: u64,
    rejected: u64,
    timed_out: u64,
    engine: SearchStats,
}

/// The writer side of the service, behind its own mutex so mutation never
/// blocks the read path (readers only take the backend `RwLock` for the
/// nanoseconds of one `Arc` clone).
#[derive(Default)]
struct WriterState {
    /// The mutable engine that mints new backends; `None` when the service
    /// was constructed over an opaque backend (immutable serving).
    engine: Option<MutableEngine>,
    /// Sets appended by live ingestion since construction.
    sets_added: u64,
    /// Sets tombstoned by live ingestion since construction.
    sets_removed: u64,
    /// Ops applied since the last [`SearchService::snapshot_to`] — exactly
    /// what the next snapshot call appends as one delta section.
    pending_ops: Vec<CorpusOp>,
    /// The file the pending ops chain onto (the last snapshot written or
    /// reloaded).
    snapshot_path: Option<PathBuf>,
}

/// What one applied [`SearchService::ingest`] batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Sets appended by the batch.
    pub inserted: u64,
    /// Sets tombstoned by the batch.
    pub removed: u64,
    /// The engine epoch after the batch (unchanged for an empty batch).
    pub epoch: u64,
}

/// Errors from the live-mutation surface ([`SearchService::ingest`],
/// [`SearchService::snapshot_to`], [`SearchService::reload`]).
#[derive(Debug)]
pub enum LiveServiceError {
    /// The service was built over an opaque backend
    /// ([`SearchService::from_backend`] and friends), so there is no
    /// writer to mutate. Construct via [`SearchService::from_mutable`] or
    /// [`SearchService::from_snapshot`] for a mutable service.
    Immutable,
    /// The op batch failed validation; nothing was applied.
    Rejected(BatchRejected),
    /// Snapshot I/O, decode, or chain verification failed.
    Store(StoreError),
}

impl std::fmt::Display for LiveServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveServiceError::Immutable => {
                write!(f, "service was built without a mutable engine")
            }
            LiveServiceError::Rejected(e) => write!(f, "{e}"),
            LiveServiceError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LiveServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveServiceError::Immutable => None,
            LiveServiceError::Rejected(e) => Some(e),
            LiveServiceError::Store(e) => Some(e),
        }
    }
}

impl From<StoreError> for LiveServiceError {
    fn from(e: StoreError) -> Self {
        LiveServiceError::Store(e)
    }
}

impl From<BatchRejected> for LiveServiceError {
    fn from(e: BatchRejected) -> Self {
        LiveServiceError::Rejected(e)
    }
}

/// A long-lived, thread-safe serving layer over one owned engine backend.
///
/// The service amortizes index and similarity setup across queries: the
/// backend — a single [`OwnedKoios`] or a sharded
/// [`OwnedPartitionedKoios`], see [`EngineBackend`] — is built once over an
/// `Arc<Repository>` (see [`koios_embed::repository::RepoRef`]) and shared
/// — immutably — by a **persistent pool** of long-lived worker threads
/// draining one MPMC submission queue ([`crate::pool::WorkerPool`]).
/// Callers either fire-and-await single requests ([`SearchService::submit`]
/// returns a [`ResponseHandle`] to wait on later) or push whole batches
/// ([`SearchService::search_batch`], a thin submit-all/await-all wrapper
/// whose responses come back in submission order — each response lands in
/// its own ticket slot, so no re-sorting happens). Results are identical on
/// either backend. Two caches compose: repeated queries are answered from
/// an LRU result cache keyed by a stable fingerprint of the normalized
/// query and every result-affecting parameter (backend-transparent — a
/// result cached under one backend is a hit under the other), and
/// *overlapping* queries share per-element kNN lists through one
/// [`TokenKnnCache`] installed into the engine configuration and therefore
/// into every shard engine (see [`ServiceConfig::token_cache_bytes`]; the
/// `(token, α, generation)` key is shard-agnostic). Per-request deadlines
/// are enforced end to end: admission control refuses dead requests, and
/// the remaining budget is passed to the backend as an absolute deadline
/// that bounds the search — on the partitioned backend, every shard *and*
/// the merge-time verification loop.
///
/// ```
/// use koios_core::KoiosConfig;
/// use koios_embed::repository::RepositoryBuilder;
/// use koios_embed::sim::EqualitySimilarity;
/// use koios_service::{SearchRequest, SearchService, ServiceConfig};
/// use std::sync::Arc;
///
/// let mut b = RepositoryBuilder::new();
/// b.add_set("s0", ["a", "b"]);
/// b.add_set("s1", ["a", "c"]);
/// let repo = Arc::new(b.build());
///
/// let service = SearchService::new(
///     Arc::clone(&repo),
///     Arc::new(EqualitySimilarity),
///     KoiosConfig::new(1, 0.9),
///     ServiceConfig::new().with_workers(2),
/// );
/// let q = repo.intern_query(["a", "b"]);
/// let responses = service.search_batch(&[SearchRequest::new(q)]);
/// assert_eq!(responses[0].result.hits.len(), 1);
/// ```
pub struct SearchService {
    inner: Arc<ServiceInner>,
    pool: WorkerPool,
}

/// A handle to one submitted request's eventual [`ServiceResponse`]
/// (see [`SearchService::submit`]).
pub type ResponseHandle = Ticket<ServiceResponse>;

/// Everything the workers need, behind one `Arc` so jobs on the persistent
/// pool (which outlive any one call frame) can share it `'static`-ly.
struct ServiceInner {
    // The serving backend, swapped atomically (read-copy-update) on live
    // mutation or reload: readers clone the `Arc` under a momentary read
    // lock and run the whole request against that frozen backend, so a
    // swap never interrupts — or waits for — an in-flight search, and no
    // request is ever dropped by a mutation.
    backend: RwLock<Arc<EngineBackend>>,
    // The writer: a mutable engine (when the service owns one) plus
    // mutation bookkeeping. Its mutex serializes writers only.
    writer: Mutex<WriterState>,
    default_budget: Option<Duration>,
    // Values are `Arc`ed so a hit only bumps a refcount while the stripe
    // lock is held; the O(k) hit-vector copy happens outside the critical
    // section. Striped: concurrent workers probing different fingerprints
    // never serialize on one mutex.
    cache: StripedLruCache<CacheKey, Arc<Vec<Hit>>>,
    // Shared token-level kNN cache (also reachable through the engine
    // config; this handle serves stats and invalidation).
    token_cache: Option<Arc<TokenKnnCache>>,
    // Where the backend came from, when it was warm-started from a
    // snapshot ([`SearchService::from_snapshot`]) or hot-reloaded
    // ([`SearchService::reload`]); surfaced in [`ServiceStats::snapshot`].
    snapshot: Mutex<Option<SnapshotInfo>>,
    stats: Mutex<StatsInner>,
    // Registry + pre-resolved instrument handles; recording on the request
    // path is a handful of relaxed atomic adds.
    metrics: ServiceMetrics,
    // Slow-query threshold + sink; `None` keeps the request path free of
    // any per-query rendering.
    slowlog: Option<SlowQueryLog>,
    // Request tracing: id minting + the tail-sampled retention ring.
    // `None` strips every per-request tracing branch.
    tracer: Option<Tracer>,
    // The cooperative wall-clock profiler: one sampler thread reading the
    // workers' published `(stage, shard)` slots. `None` leaves the global
    // profiling flag off, so the slot stores on the request path reduce to
    // one relaxed load.
    profiler: Option<Profiler>,
    // `GET /debug/engine` builds a MinHash index over the vocabulary on
    // demand (serving backends carry none); memoized per engine epoch so
    // repeated scrapes pay the build once per corpus version.
    minhash_memo: Mutex<Option<(u64, Json)>>,
    // Construction instants for `uptime_secs` (monotone) and `start_time`
    // (wall clock, for operators correlating restarts across machines).
    started: Instant,
    start_time: SystemTime,
}

impl SearchService {
    /// Builds a single engine (inverted index included) over a shared
    /// repository and wires up the service.
    pub fn new(
        repo: Arc<Repository>,
        sim: Arc<dyn ElementSimilarity>,
        engine_cfg: KoiosConfig,
        cfg: ServiceConfig,
    ) -> Self {
        Self::from_backend(OwnedKoios::new(repo, sim, engine_cfg), cfg)
    }

    /// Builds a sharded engine — `partitions` per-shard inverted indexes
    /// searched in parallel under a shared `θlb` (paper §VI) — and wires up
    /// the service. `shard_seed` drives the deterministic pseudo-random
    /// partition assignment. Results, and therefore result-cache keys, are
    /// identical to the single-engine service.
    pub fn new_partitioned(
        repo: Arc<Repository>,
        sim: Arc<dyn ElementSimilarity>,
        engine_cfg: KoiosConfig,
        partitions: usize,
        shard_seed: u64,
        cfg: ServiceConfig,
    ) -> Self {
        Self::from_backend(
            OwnedPartitionedKoios::new(repo, sim, engine_cfg, partitions, shard_seed),
            cfg,
        )
    }

    /// Wraps an already-built owned engine (compatibility alias for
    /// [`Self::from_backend`], which accepts either backend variant).
    pub fn from_engine(engine: OwnedKoios, cfg: ServiceConfig) -> Self {
        Self::from_backend(engine, cfg)
    }

    /// Wraps an already-built owned backend (single or partitioned). When
    /// `cfg.token_cache_bytes` is non-zero and the backend does not already
    /// carry a token cache, one shared [`TokenKnnCache`] is created and
    /// installed into the engine configuration, so every worker, every
    /// per-request config override — and, on a partitioned backend, every
    /// shard engine — reuses the same per-element kNN lists (sound: the
    /// `(token, α, generation)` cache key is query- and shard-agnostic). A
    /// backend-supplied cache is kept (its own byte budget wins); setting
    /// `token_cache_bytes` to `0` disables token caching even then, by
    /// stripping the cache from the engine configuration.
    pub fn from_backend(backend: impl Into<EngineBackend>, cfg: ServiceConfig) -> Self {
        Self::build(backend.into(), cfg, None, None)
    }

    /// Wraps a [`MutableEngine`]: the service serves a backend minted from
    /// it and keeps the engine as its writer, enabling the live-mutation
    /// surface — [`SearchService::ingest`], [`SearchService::snapshot_to`]
    /// and [`SearchService::reload`]. The service's shared token-kNN cache
    /// (per `cfg.token_cache_bytes`) is installed into the engine so every
    /// backend minted across mutations reuses — and correctly
    /// generation-invalidates — the same cache.
    pub fn from_mutable(engine: MutableEngine, cfg: ServiceConfig) -> Self {
        let backend = engine.backend();
        Self::build(backend, cfg, None, Some(engine))
    }

    /// Warm-starts a **mutable** service from a `koios-store` snapshot: the
    /// backend — single or sharded, whichever layout the snapshot holds —
    /// is restored without any index rebuild, searching under a cosine
    /// similarity over the snapshotted token vectors; any delta sections
    /// are replayed and the service resumes from the chain's latest epoch.
    /// `engine_cfg` supplies the serving `k`/`α` and filter settings (they
    /// are not part of the snapshot — the same state serves any
    /// configuration). The snapshot's provenance (path, sizes, delta-chain
    /// length, load time) is reported in [`ServiceStats::snapshot`], and
    /// later [`SearchService::snapshot_to`] calls to the same path append
    /// deltas instead of rewriting the base.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        engine_cfg: KoiosConfig,
        cfg: ServiceConfig,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let t0 = Instant::now();
        let (engine, meta) = MutableEngine::from_snapshot(path, engine_cfg)?;
        let backend = engine.backend();
        let info = SnapshotInfo {
            path: path.display().to_string(),
            format_version: meta.format_version,
            bytes: meta.total_bytes,
            partitions: backend.num_partitions(),
            num_sets: meta.num_sets,
            vocab_size: meta.vocab_size,
            deltas: meta.deltas.len(),
            latest_epoch: meta.latest_epoch(),
            load_time: t0.elapsed(),
        };
        let svc = Self::build(backend, cfg, Some(info), Some(engine));
        svc.inner.writer.lock().expect("writer lock").snapshot_path = Some(path.to_path_buf());
        Ok(svc)
    }

    /// [`Self::from_snapshot`] with a caller-chosen similarity factory (for
    /// snapshots written without embeddings, or engines over non-cosine
    /// similarities). The factory sees the restored repository and token
    /// vectors and returns the similarity the service will search under.
    ///
    /// The factory is consumed once, so the resulting service is
    /// **immutable** (no writer — [`SearchService::ingest`] returns
    /// [`LiveServiceError::Immutable`]). For a mutable non-cosine service,
    /// build a [`MutableEngine`] with a reusable
    /// [`koios_core::mutable::SimFactory`] and use
    /// [`SearchService::from_mutable`].
    pub fn from_snapshot_with<F>(
        path: impl AsRef<Path>,
        engine_cfg: KoiosConfig,
        cfg: ServiceConfig,
        make_sim: F,
    ) -> Result<Self, StoreError>
    where
        F: FnOnce(
            &Repository,
            Option<Arc<Embeddings>>,
        ) -> Result<Arc<dyn ElementSimilarity>, StoreError>,
    {
        let path = path.as_ref();
        let t0 = Instant::now();
        let state = koios_store::snapshot::read_snapshot(path)?;
        let (backend, meta) = EngineBackend::from_state(state, engine_cfg, make_sim)?;
        let info = SnapshotInfo {
            path: path.display().to_string(),
            format_version: meta.format_version,
            bytes: meta.total_bytes,
            partitions: backend.num_partitions(),
            num_sets: meta.num_sets,
            vocab_size: meta.vocab_size,
            deltas: meta.deltas.len(),
            latest_epoch: meta.latest_epoch(),
            load_time: t0.elapsed(),
        };
        Ok(Self::build(backend, cfg, Some(info), None))
    }

    fn build(
        backend: EngineBackend,
        cfg: ServiceConfig,
        snapshot: Option<SnapshotInfo>,
        writer: Option<MutableEngine>,
    ) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let (backend, token_cache) = match backend.config().token_cache.clone() {
            Some(_) if cfg.token_cache_bytes == 0 => {
                let mut engine_cfg = backend.config().clone();
                engine_cfg.token_cache = None;
                (backend.with_config(engine_cfg), None)
            }
            Some(existing) => (backend, Some(existing)),
            None if cfg.token_cache_bytes > 0 => {
                let cache = Arc::new(
                    TokenKnnCache::new(cfg.token_cache_bytes).with_ttl(cfg.token_cache_ttl),
                );
                let engine_cfg = backend
                    .config()
                    .clone()
                    .with_token_cache(Arc::clone(&cache));
                (backend.with_config(engine_cfg), Some(cache))
            }
            None => (backend, None),
        };
        let metrics = ServiceMetrics::new();
        // The slow-query threshold doubles as a trace-retention rule, so
        // every slow-log line's `trace_id` resolves via `GET /traces`.
        let tracer = cfg
            .tracing
            .map(|tc| Tracer::new(tc, cfg.slow_query_log.as_ref().map(|log| log.threshold())));
        // Lock-wait observability on both shared caches: installing the
        // histograms turns each stripe acquisition into a timed one —
        // `koios_lock_wait_seconds{cache="token"|"result"}` is the direct
        // measurement for the ROADMAP's serving-scalability suspects.
        // Without a service the caches stay uninstrumented (a single
        // atomic load per acquisition).
        if let Some(tc) = &token_cache {
            tc.install_lock_wait(Arc::clone(&metrics.lock_wait_token));
        }
        let cache = StripedLruCache::new(cfg.cache_capacity).with_ttl(cfg.result_ttl);
        cache.install_lock_wait(Arc::clone(&metrics.lock_wait_result));
        let pool_instruments = PoolInstruments {
            depth: Arc::clone(&metrics.queue_depth),
            wait: Arc::clone(&metrics.queue_wait),
        };
        // The writer engine must mint future backends with the *resolved*
        // token cache (the one the served backend carries), so mutation
        // invalidation and cache sharing stay coherent across swaps.
        let writer = writer.map(|mut engine| {
            engine.set_token_cache(token_cache.clone());
            engine
        });
        SearchService {
            inner: Arc::new(ServiceInner {
                backend: RwLock::new(Arc::new(backend)),
                writer: Mutex::new(WriterState {
                    engine: writer,
                    ..WriterState::default()
                }),
                default_budget: cfg.default_time_budget,
                cache,
                token_cache,
                snapshot: Mutex::new(snapshot),
                stats: Mutex::new(StatsInner::default()),
                metrics,
                slowlog: cfg.slow_query_log,
                tracer,
                profiler: cfg.profiler_sample_period.map(Profiler::start),
                minhash_memo: Mutex::new(None),
                started: Instant::now(),
                start_time: SystemTime::now(),
            }),
            pool: WorkerPool::new_instrumented(workers, pool_instruments),
        }
    }

    /// Provenance of a snapshot-restored backend (`None` when the service
    /// was built from live structures). Updated by
    /// [`SearchService::reload`].
    pub fn snapshot_info(&self) -> Option<SnapshotInfo> {
        self.inner.snapshot.lock().expect("snapshot lock").clone()
    }

    /// The currently served engine backend. The returned `Arc` is a frozen
    /// view: it stays valid (and keeps serving its corpus version) however
    /// many [`SearchService::ingest`] batches or reloads happen after.
    pub fn backend(&self) -> Arc<EngineBackend> {
        Arc::clone(&self.inner.backend.read().expect("backend lock"))
    }

    /// The epoch of the currently served backend (see
    /// [`ServiceStats::engine_epoch`]).
    pub fn engine_epoch(&self) -> u64 {
        self.backend().config().epoch
    }

    /// Whether the service owns a writer (constructed via
    /// [`SearchService::from_mutable`] or [`SearchService::from_snapshot`])
    /// and therefore accepts [`SearchService::ingest`].
    pub fn is_mutable(&self) -> bool {
        self.inner
            .writer
            .lock()
            .expect("writer lock")
            .engine
            .is_some()
    }

    /// Applies a batch of corpus ops — atomically: either every op applies
    /// and the freshly minted backend is swapped in, or nothing changes —
    /// and returns what the batch did. In-flight and queued searches are
    /// never dropped: each runs to completion against the backend `Arc` it
    /// cloned at pickup (its response reports the older `stats.epoch`).
    /// The result LRU needs no flush — cache keys carry the epoch, so
    /// entries from older epochs simply stop matching — but it is flushed
    /// anyway to reclaim their space, and the token-kNN cache is
    /// invalidated by the engine's generation bump.
    pub fn ingest(&self, ops: &[CorpusOp]) -> Result<IngestOutcome, LiveServiceError> {
        let _profile_stage = profile::enter(profile::Stage::Ingest);
        let t0 = Instant::now();
        let mut w = self.inner.writer.lock().expect("writer lock");
        let engine = w.engine.as_mut().ok_or(LiveServiceError::Immutable)?;
        let applied = engine.apply(ops)?;
        let epoch = engine.epoch();
        let swap = (!applied.is_empty()).then(|| Arc::new(engine.backend()));
        let (mut inserted, mut removed) = (0u64, 0u64);
        for a in &applied {
            match a {
                Applied::Inserted(_) => inserted += 1,
                Applied::Removed(_) => removed += 1,
            }
        }
        w.sets_added += inserted;
        w.sets_removed += removed;
        w.pending_ops.extend_from_slice(ops);
        if let Some(backend) = swap {
            *self.inner.backend.write().expect("backend lock") = backend;
            self.inner.cache.invalidate_all();
        }
        self.record_mutation("ingest", &self.inner.metrics.request_ingest, epoch, t0);
        self.inner.metrics.mutations_ingest.inc();
        Ok(IngestOutcome {
            inserted,
            removed,
            epoch,
        })
    }

    /// Persists the current corpus state to `path`. When `path` is the
    /// file this service last snapshotted to (or was loaded/reloaded
    /// from), only the ops applied since then are **appended as one delta
    /// section** — checksum-chained onto the existing file, without
    /// rewriting the base payloads. Any other path gets a fresh full base.
    /// Writers are serialized against [`SearchService::ingest`], so the
    /// snapshot is a consistent cut: it contains exactly the batches whose
    /// `ingest` returned before this call.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<SnapshotMeta, LiveServiceError> {
        let t0 = Instant::now();
        let path = path.as_ref();
        let mut w = self.inner.writer.lock().expect("writer lock");
        let engine = w.engine.as_ref().ok_or(LiveServiceError::Immutable)?;
        let epoch = engine.epoch();
        let chains = w.snapshot_path.as_deref() == Some(path) && path.exists();
        let meta = if chains {
            if w.pending_ops.is_empty() {
                SnapshotMeta::read(path)?
            } else {
                koios_store::append_delta(path, &w.pending_ops, engine.epoch())?
            }
        } else {
            engine.write_snapshot(path)?
        };
        w.pending_ops.clear();
        w.snapshot_path = Some(path.to_path_buf());
        drop(w);
        self.record_mutation("snapshot", &self.inner.metrics.request_snapshot, epoch, t0);
        self.inner.metrics.mutations_snapshot.inc();
        Ok(meta)
    }

    /// Hot-swaps the serving state for the snapshot at `path` (deltas
    /// replayed), with **zero downtime**: requests keep being admitted and
    /// answered throughout — each against whichever backend it picked up.
    /// The reloaded engine searches under the writer's existing similarity
    /// factory and keeps the service's shared token cache; its epoch is
    /// raised strictly above the replaced engine's, so no cached result
    /// from before the reload can be served after it. Returns the new
    /// provenance (also visible in [`ServiceStats::snapshot`]).
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<SnapshotInfo, LiveServiceError> {
        let _profile_stage = profile::enter(profile::Stage::Ingest);
        let path = path.as_ref();
        let t0 = Instant::now();
        let mut w = self.inner.writer.lock().expect("writer lock");
        let old = w.engine.as_ref().ok_or(LiveServiceError::Immutable)?;
        let (factory, old_epoch, engine_cfg) =
            (old.sim_factory(), old.epoch(), old.config().clone());
        let state = koios_store::snapshot::read_snapshot(path)?;
        let meta = state.meta.clone();
        let mut engine = MutableEngine::from_state(state, engine_cfg, factory)?;
        engine.advance_epoch_to(old_epoch + 1);
        let backend = Arc::new(engine.backend());
        let info = SnapshotInfo {
            path: path.display().to_string(),
            format_version: meta.format_version,
            bytes: meta.total_bytes,
            partitions: backend.num_partitions(),
            num_sets: meta.num_sets,
            vocab_size: meta.vocab_size,
            deltas: meta.deltas.len(),
            latest_epoch: meta.latest_epoch(),
            load_time: t0.elapsed(),
        };
        w.engine = Some(engine);
        w.pending_ops.clear();
        w.snapshot_path = Some(path.to_path_buf());
        drop(w);
        *self.inner.backend.write().expect("backend lock") = backend;
        self.inner.cache.invalidate_all();
        if let Some(tc) = &self.inner.token_cache {
            tc.bump_generation();
        }
        *self.inner.snapshot.lock().expect("snapshot lock") = Some(info.clone());
        self.record_mutation(
            "reload",
            &self.inner.metrics.request_reload,
            old_epoch + 1,
            t0,
        );
        self.inner.metrics.mutations_reload.inc();
        Ok(info)
    }

    /// Admin-route observability (the PR 8 mutation surface): one
    /// `koios_request_seconds{phase}` sample per successful mutation, plus
    /// a forced (always-retained) single-span trace stamped with the epoch
    /// the mutation published.
    fn record_mutation(
        &self,
        op: &'static str,
        phase: &koios_telemetry::Histogram,
        epoch: u64,
        started: Instant,
    ) {
        let duration = started.elapsed();
        phase.record_duration(duration);
        if let Some(tracer) = &self.inner.tracer {
            tracer.record_mutation(op, epoch, started, duration);
        }
    }

    /// The worker-pool width (long-lived threads draining the submission
    /// queue).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Requests submitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.pool.queued()
    }

    /// Worker threads still alive (equal to [`SearchService::workers`]
    /// unless a worker died — the `/healthz?full` liveness signal).
    pub fn live_workers(&self) -> usize {
        self.pool.live_workers()
    }

    /// Number of index partitions the backend searches (1 for a single
    /// engine).
    pub fn partitions(&self) -> usize {
        self.backend().num_partitions()
    }

    /// The repository behind the currently served backend (shared
    /// ownership — live mutation swaps the service onto a new repository,
    /// but the one returned here stays valid).
    pub fn repository(&self) -> Arc<Repository> {
        self.backend().repository_arc()
    }

    /// Runs one request (a batch of one).
    pub fn search(&self, request: SearchRequest) -> ServiceResponse {
        self.search_batch(std::slice::from_ref(&request))
            .pop()
            .expect("batch of one yields one response")
    }

    /// Enqueues one request on the persistent pool and returns immediately;
    /// redeem the handle with [`Ticket::wait`] whenever the answer is
    /// needed (submit-then-await).
    ///
    /// The request's deadline budget starts *now*: time spent queued behind
    /// other requests counts against it, and a request whose deadline
    /// expires before a worker picks it up is rejected without running
    /// (admission control).
    pub fn submit(&self, request: SearchRequest) -> ResponseHandle {
        self.inner.stats.lock().expect("stats lock").queries += 1;
        self.submit_at(request, Instant::now())
    }

    fn submit_at(&self, request: SearchRequest, submitted: Instant) -> ResponseHandle {
        let inner = Arc::clone(&self.inner);
        match self
            .pool
            .submit(move || inner.process_one(&request, submitted))
        {
            Ok(ticket) => ticket,
            // Pool shut down ([`SearchService::shutdown`]): run inline so
            // the handle still resolves.
            Err(job) => Ticket::ready(job()),
        }
    }

    /// Executes a batch of requests concurrently on the worker pool and
    /// returns responses in submission order — a thin submit-all/await-all
    /// wrapper over [`SearchService::submit`]. Each response is written
    /// into its own pre-allocated ticket slot, so ordering costs nothing.
    ///
    /// Each request's deadline budget starts at submission, so time spent
    /// queued behind other requests counts against it; a request whose
    /// deadline expires before a worker picks it up is rejected without
    /// running (admission control).
    pub fn search_batch(&self, requests: &[SearchRequest]) -> Vec<ServiceResponse> {
        let submitted = Instant::now();
        {
            let mut st = self.inner.stats.lock().expect("stats lock");
            st.batches += 1;
            st.queries += requests.len() as u64;
        }
        let handles: Vec<ResponseHandle> = requests
            .iter()
            .map(|r| self.submit_at(r.clone(), submitted))
            .collect();
        handles.into_iter().map(Ticket::wait).collect()
    }

    /// Closes the submission queue, lets the workers drain every already
    /// submitted request (their handles all resolve), and joins them. Later
    /// `submit`/`search` calls still answer — inline on the caller's
    /// thread. Also runs on drop; calling it explicitly just makes the
    /// drain point deterministic.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }

    /// Drops every cached result **and** every cached token kNN list (call
    /// after swapping embeddings or any out-of-band change that
    /// invalidates previous answers). The token cache is invalidated by a
    /// generation bump, so searches already in flight can neither serve
    /// nor publish stale lists.
    pub fn invalidate_cache(&self) {
        self.inner.cache.invalidate_all();
        if let Some(tc) = &self.inner.token_cache {
            tc.bump_generation();
        }
    }

    /// The shared token-level kNN cache, if enabled.
    pub fn token_cache(&self) -> Option<&Arc<TokenKnnCache>> {
        self.inner.token_cache.as_ref()
    }

    /// Number of currently cached results.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let backend = self.backend();
        let (sets_added, sets_removed) = {
            let w = self.inner.writer.lock().expect("writer lock");
            (w.sets_added, w.sets_removed)
        };
        let st = self.inner.stats.lock().expect("stats lock");
        let cache = self.inner.cache.counters();
        ServiceStats {
            queries: st.queries,
            batches: st.batches,
            cache_hits: st.cache_hits,
            searched: st.searched,
            rejected: st.rejected,
            timed_out: st.timed_out,
            partitions: backend.num_partitions(),
            cache,
            token_cache: self.inner.token_cache.as_ref().map(|tc| tc.snapshot()),
            snapshot: self.snapshot_info(),
            engine_epoch: backend.config().epoch,
            sets_added,
            sets_removed,
            engine: st.engine.clone(),
            uptime_secs: self.inner.started.elapsed().as_secs_f64(),
            start_time: self.inner.start_time,
        }
    }

    /// The service's metric surface: stage/shard/queue/lock-wait
    /// histograms, queue-depth gauge, and the registry behind them. Bench
    /// harnesses read the histogram snapshots directly; the HTTP front-end
    /// records its serialization phase here.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// The metric registry (for scraping; see
    /// [`SearchService::render_metrics`]).
    pub fn telemetry(&self) -> &Arc<Registry> {
        self.inner.metrics.registry()
    }

    /// Whether request tracing is enabled (see [`ServiceConfig::tracing`]).
    pub fn tracing_enabled(&self) -> bool {
        self.inner.tracer.is_some()
    }

    /// Looks up a retained trace by id (`GET /traces?id=…`).
    pub fn trace(&self, trace_id: u64) -> Option<Trace> {
        self.inner.tracer.as_ref()?.sink().get(trace_id)
    }

    /// Every currently retained trace, newest first (`GET /traces`).
    pub fn traces(&self) -> Vec<Trace> {
        self.inner
            .tracer
            .as_ref()
            .map(|t| t.sink().list())
            .unwrap_or_default()
    }

    /// Trace-sink lifetime counters (`None` when tracing is disabled).
    pub fn trace_stats(&self) -> Option<TraceSinkStats> {
        self.inner.tracer.as_ref().map(|t| t.stats())
    }

    /// The slowest currently retained trace (exemplar source).
    pub fn slowest_trace(&self) -> Option<Trace> {
        self.inner.tracer.as_ref()?.sink().slowest()
    }

    /// Appends a late span to a retained trace — the HTTP front-end
    /// records its serialization phase here, after the worker sealed the
    /// tree. No-op when tracing is disabled or the trace was not retained.
    pub fn record_trace_span(
        &self,
        trace_id: u64,
        name: &'static str,
        start: Instant,
        duration: Duration,
    ) {
        if let Some(tracer) = &self.inner.tracer {
            tracer.sink().append_span(trace_id, name, start, duration);
        }
    }

    /// Renders the full metric surface in Prometheus text exposition
    /// format (version 0.0.4) — the body of `GET /metrics`. Scrape-derived
    /// series (uptime, cache operation totals, token-cache occupancy) are
    /// synchronized from their sources first, so the rendering is always
    /// current.
    pub fn render_metrics(&self) -> String {
        let m = &self.inner.metrics;
        let reg = m.registry();
        m.uptime
            .set(self.inner.started.elapsed().as_secs().min(i64::MAX as u64) as i64);
        let ops = |cache: &str, op: &str, total: u64| {
            reg.counter(
                "koios_cache_ops_total",
                "Cache operations since service construction",
                &[("cache", cache), ("op", op)],
            )
            .store(total);
        };
        let rc = self.inner.cache.counters();
        ops("result", "hit", rc.hits);
        ops("result", "miss", rc.misses);
        ops("result", "eviction", rc.evictions);
        ops("result", "insertion", rc.insertions);
        ops("result", "expiration", rc.expirations);
        ops("result", "invalidation", rc.invalidations);
        if let Some(tc) = &self.inner.token_cache {
            let snap = tc.snapshot();
            ops("token", "hit", snap.counters.hits);
            ops("token", "miss", snap.counters.misses);
            ops("token", "eviction", snap.counters.evictions);
            ops("token", "insertion", snap.counters.insertions);
            ops("token", "expiration", snap.counters.expirations);
            ops("token", "invalidation", snap.counters.invalidations);
            ops("token", "rejected_insert", snap.counters.rejected_inserts);
            reg.gauge(
                "koios_token_cache_bytes",
                "Bytes held by the shared token kNN cache",
                &[],
            )
            .set(snap.bytes.min(i64::MAX as usize) as i64);
            reg.gauge(
                "koios_token_cache_entries",
                "Entries held by the shared token kNN cache",
                &[],
            )
            .set(snap.entries.min(i64::MAX as usize) as i64);
        }
        let stripes = |cache: &str, n: usize| {
            reg.gauge(
                "koios_cache_stripes",
                "Lock stripes of the striped caches",
                &[("cache", cache)],
            )
            .set(n.min(i64::MAX as usize) as i64);
        };
        stripes("result", self.inner.cache.stripes());
        if let Some(tc) = &self.inner.token_cache {
            stripes("token", tc.stripes());
        }
        let mut text = reg.render_prometheus();
        // Exemplar linkage: the slowest retained trace, rendered as its own
        // family (hand-appended so trace-id label churn never grows the
        // registry). `series` names the histogram the exemplar explains —
        // a `koios_request_seconds`/`koios_stage_seconds` p99 resolves to
        // this concrete trace via `GET /traces?id=<trace_id>`.
        if let Some(slowest) = self.slowest_trace() {
            let id = koios_common::fingerprint::hex(slowest.trace_id);
            text.push_str(
                "# HELP koios_trace_exemplar_ns Slowest retained trace; join \
                 GET /traces by trace_id\n# TYPE koios_trace_exemplar_ns gauge\n",
            );
            let _ = writeln!(
                text,
                "koios_trace_exemplar_ns{{series=\"koios_request_seconds\",trace_id=\"{id}\"}} {}",
                slowest.duration_ns
            );
            for span in &slowest.spans {
                if matches!(span.name, "refine" | "postprocess" | "verify" | "merge") {
                    let _ = writeln!(
                        text,
                        "koios_trace_exemplar_ns{{series=\"koios_stage_seconds\",\
                         stage=\"{}\",trace_id=\"{id}\"}} {}",
                        span.name, span.duration_ns
                    );
                }
            }
        }
        text
    }

    /// Zeroes every service counter (including both caches') without
    /// touching cached entries — metric windowing for operators.
    pub fn reset_stats(&self) {
        *self.inner.stats.lock().expect("stats lock") = StatsInner::default();
        self.inner.cache.reset_counters();
        if let Some(tc) = &self.inner.token_cache {
            tc.reset_counters();
        }
    }

    /// Exact overlap oracle passthrough (auditing cached answers).
    pub fn exact_overlap(&self, query: &[TokenId], set: SetId) -> f64 {
        self.backend().exact_overlap(query, set)
    }

    /// The wall-clock profiler, when enabled (see
    /// [`ServiceConfig::profiler_sample_period`]).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.inner.profiler.as_ref()
    }

    /// The body of `GET /debug/profile`: whether the sampler is attached,
    /// and when it is, tick counts, the collapsed-stack text (flamegraph
    /// input) and the self-time table (see [`Profiler::to_json`]).
    pub fn debug_profile(&self) -> Json {
        match &self.inner.profiler {
            Some(p) => {
                let mut fields = vec![("enabled".to_string(), Json::Bool(true))];
                if let Json::Obj(rest) = p.to_json() {
                    fields.extend(rest);
                }
                Json::Obj(fields)
            }
            None => Json::obj([("enabled", Json::Bool(false))]),
        }
    }

    /// The body of `GET /debug/cache`: per-stripe occupancy, byte load and
    /// oldest-entry age for both striped caches, plus their lifetime
    /// counters. Aggregate occupancy is mirrored onto
    /// `koios_debug_cache_entries` gauges so scrapes and debug reads agree.
    pub fn debug_cache(&self) -> Json {
        let reg = self.inner.metrics.registry();
        let mirror = |cache: &str, entries: usize| {
            reg.gauge(
                "koios_debug_cache_entries",
                "Entries held, as reported by GET /debug/cache",
                &[("cache", cache)],
            )
            .set(entries.min(i64::MAX as usize) as i64);
        };
        let age_secs = |age: Option<Duration>| match age {
            Some(a) => Json::num(a.as_secs_f64()),
            None => Json::Null,
        };
        let rc = self.inner.cache.counters();
        mirror("result", self.inner.cache.len());
        let result = Json::obj([
            ("capacity", Json::num(self.inner.cache.capacity() as f64)),
            ("entries", Json::num(self.inner.cache.len() as f64)),
            (
                "stripes",
                Json::arr(self.inner.cache.stripe_debug().into_iter().enumerate().map(
                    |(i, (entries, oldest))| {
                        Json::obj([
                            ("stripe", Json::num(i as f64)),
                            ("entries", Json::num(entries as f64)),
                            ("oldest_age_secs", age_secs(oldest)),
                        ])
                    },
                )),
            ),
            (
                "counters",
                Json::obj([
                    ("hits", Json::num(rc.hits as f64)),
                    ("misses", Json::num(rc.misses as f64)),
                    ("evictions", Json::num(rc.evictions as f64)),
                    ("insertions", Json::num(rc.insertions as f64)),
                    ("expirations", Json::num(rc.expirations as f64)),
                    ("invalidations", Json::num(rc.invalidations as f64)),
                ]),
            ),
        ]);
        let token = match &self.inner.token_cache {
            Some(tc) => {
                let snap = tc.snapshot();
                mirror("token", snap.entries);
                Json::obj([
                    ("budget_bytes", Json::num(snap.budget_bytes as f64)),
                    ("bytes", Json::num(snap.bytes as f64)),
                    ("entries", Json::num(snap.entries as f64)),
                    ("generation", Json::num(snap.generation as f64)),
                    (
                        "stripes",
                        Json::arr(tc.stripe_debug().into_iter().enumerate().map(
                            |(i, (entries, bytes, oldest))| {
                                Json::obj([
                                    ("stripe", Json::num(i as f64)),
                                    ("entries", Json::num(entries as f64)),
                                    ("bytes", Json::num(bytes as f64)),
                                    ("oldest_age_secs", age_secs(oldest)),
                                ])
                            },
                        )),
                    ),
                    (
                        "counters",
                        Json::obj([
                            ("hits", Json::num(snap.counters.hits as f64)),
                            ("misses", Json::num(snap.counters.misses as f64)),
                            ("evictions", Json::num(snap.counters.evictions as f64)),
                            ("insertions", Json::num(snap.counters.insertions as f64)),
                            ("expirations", Json::num(snap.counters.expirations as f64)),
                            (
                                "invalidations",
                                Json::num(snap.counters.invalidations as f64),
                            ),
                            (
                                "rejected_inserts",
                                Json::num(snap.counters.rejected_inserts as f64),
                            ),
                        ]),
                    ),
                ])
            }
            None => Json::Null,
        };
        Json::obj([("result", result), ("token", token)])
    }

    /// The body of `GET /debug/engine`: live/tombstoned set counts, the
    /// serving epoch and delta-chain length, per-partition posting-length
    /// histograms (log2 buckets — the skew behind slow refinement),
    /// MinHash band occupancy over the vocabulary's 3-gram sets (serving
    /// backends carry no MinHash index, so one is built on demand and
    /// memoized per epoch), and resident memory. Key figures are mirrored
    /// onto `koios_debug_engine_*` gauges.
    pub fn debug_engine(&self) -> Json {
        use koios_common::HeapSize;
        use koios_index::minhash::{vocabulary_grams, MinHashIndex, MinHashParams};

        let backend = self.backend();
        let repo = backend.repository();
        let epoch = backend.config().epoch;
        let live = repo.num_live_sets();
        let total = repo.num_sets();
        let rs = repo.stats();
        let deltas = self.snapshot_info().map(|s| s.deltas).unwrap_or(0);

        let reg = self.inner.metrics.registry();
        let sets_gauge = |state: &str, n: usize| {
            reg.gauge(
                "koios_debug_engine_sets",
                "Set slots by liveness, as reported by GET /debug/engine",
                &[("state", state)],
            )
            .set(n.min(i64::MAX as usize) as i64);
        };
        sets_gauge("live", live);
        sets_gauge("tombstoned", total - live);
        reg.gauge(
            "koios_debug_engine_delta_chain",
            "Snapshot delta-chain length, as reported by GET /debug/engine",
            &[],
        )
        .set(deltas.min(i64::MAX as usize) as i64);

        let indexes = match (backend.as_single(), backend.as_partitioned()) {
            (Some(e), _) => vec![e.index()],
            (_, Some(p)) => p.indexes().iter().collect(),
            _ => Vec::new(),
        };
        let index_bytes: usize = indexes.iter().map(|i| i.heap_size()).sum();
        let partitions = Json::arr(indexes.iter().enumerate().map(|(i, idx)| {
            Json::obj([
                ("partition", Json::num(i as f64)),
                ("active_tokens", Json::num(idx.active_tokens() as f64)),
                ("total_postings", Json::num(idx.total_postings() as f64)),
                ("max_posting_len", Json::num(idx.max_posting_len() as f64)),
                (
                    "posting_len_histogram",
                    Json::arr(
                        idx.posting_len_histogram()
                            .into_iter()
                            .map(|c| Json::num(c as f64)),
                    ),
                ),
            ])
        }));

        let minhash = {
            let mut memo = self.inner.minhash_memo.lock().expect("minhash memo");
            match &*memo {
                Some((e, json)) if *e == epoch => json.clone(),
                _ => {
                    let params = MinHashParams::default();
                    let grams = vocabulary_grams(repo, 3);
                    let mh = MinHashIndex::build(&grams, params);
                    let json = Json::obj([
                        ("q", Json::num(3.0)),
                        ("bands", Json::num(params.bands as f64)),
                        ("rows_per_band", Json::num(params.rows_per_band as f64)),
                        (
                            "band_occupancy",
                            Json::arr(mh.band_occupancy().into_iter().map(|b| {
                                Json::obj([
                                    ("band", Json::num(b.band as f64)),
                                    ("buckets", Json::num(b.buckets as f64)),
                                    ("largest_bucket", Json::num(b.largest_bucket as f64)),
                                    ("mean_bucket", Json::num(b.mean_bucket)),
                                ])
                            })),
                        ),
                    ]);
                    *memo = Some((epoch, json.clone()));
                    json
                }
            }
        };

        Json::obj([
            ("epoch", Json::num(epoch as f64)),
            ("partitions", Json::num(backend.num_partitions() as f64)),
            (
                "sets",
                Json::obj([
                    ("live", Json::num(live as f64)),
                    ("tombstoned", Json::num((total - live) as f64)),
                    ("total", Json::num(total as f64)),
                    ("max_size", Json::num(rs.max_size as f64)),
                    ("avg_size", Json::num(rs.avg_size)),
                    ("unique_elems", Json::num(rs.unique_elems as f64)),
                ]),
            ),
            ("vocab_size", Json::num(repo.vocab_size() as f64)),
            ("delta_chain_len", Json::num(deltas as f64)),
            ("indexes", partitions),
            ("minhash", minhash),
            (
                "memory",
                Json::obj([
                    ("repository_bytes", Json::num(repo.heap_size() as f64)),
                    ("index_bytes", Json::num(index_bytes as f64)),
                ]),
            ),
        ])
    }
}

impl ServiceInner {
    /// Feeds one executed search's stage timings into the stage/shard
    /// histograms. `merge`/shard series only move for partitioned
    /// searches, so a single-engine scrape carries no misleading zeros.
    fn record_stages(&self, stats: &SearchStats) {
        self.metrics.stage_refine.record_duration(stats.refine_time);
        self.metrics
            .stage_postprocess
            .record_duration(stats.postprocess_time);
        self.metrics.stage_verify.record_duration(stats.verify_time);
        if !stats.merge_time.is_zero() {
            self.metrics.stage_merge.record_duration(stats.merge_time);
        }
        for (i, &t) in stats.shard_times.iter().enumerate() {
            self.metrics.shard(i).record_duration(t);
        }
    }

    /// Seals a request's span tree and offers it to the tail sampler;
    /// returns the trace id for the response.
    fn finish_trace(
        &self,
        builder: Option<TraceBuilder>,
        submitted: Instant,
        timed_out: bool,
        rejected: bool,
    ) -> Option<u64> {
        let tracer = self.tracer.as_ref()?;
        Some(tracer.finish(builder?, submitted.elapsed(), timed_out, rejected))
    }

    /// The full request lifecycle: normalize → cache probe → admission →
    /// search → cache fill → bookkeeping.
    fn process_one(&self, req: &SearchRequest, submitted: Instant) -> ServiceResponse {
        // The worker publishes `Search` for the whole request lifecycle;
        // the engine narrows it to Refine/Postprocess/Verify (and, on the
        // partitioned backend, per-shard `Shard` slots) as stages begin.
        let _profile_stage = profile::enter(profile::Stage::Search);
        let queue_time = submitted.elapsed();
        self.metrics.request_queue.record_duration(queue_time);

        // Trace assembly starts at submission, so the queue span begins at
        // offset zero. The builder lives on this worker's stack — span
        // recording takes no locks; only completion touches the sink.
        let mut tb = self.tracer.as_ref().map(|t| t.begin(req.trace, submitted));
        if let Some(tb) = tb.as_mut() {
            let root = tb.root();
            tb.add("queue", root, 0, queue_time.as_nanos() as u64);
        }

        // Pin the serving backend once: the whole request — cache key
        // (whose fingerprint covers the backend's epoch), admission,
        // search — runs against this frozen corpus version, however many
        // live mutations swap the service's backend meanwhile.
        let backend = Arc::clone(&self.backend.read().expect("backend lock"));

        // Effective per-request configuration (cheap: no index rebuild on
        // either backend).
        let mut cfg = backend.config().clone();
        if let Some(k) = req.k {
            cfg.k = k;
        }
        if let Some(alpha) = req.alpha {
            cfg.alpha = alpha;
        }
        // EXPLAIN is additive: a request can turn funnel accounting on, a
        // service configured with `explain: true` keeps it for every
        // request. It is *not* part of the cache key (hits are
        // byte-identical either way), so the flag is folded in after the
        // overrides but never invalidates cached answers.
        cfg.explain = cfg.explain || req.explain;
        if cfg.k == 0 || !(cfg.alpha > 0.0 && cfg.alpha <= 1.0) {
            self.stats.lock().expect("stats lock").rejected += 1;
            let trace_id = self.finish_trace(tb, submitted, false, true);
            return ServiceResponse {
                result: SearchResult::default(),
                cache: CacheOutcome::Rejected,
                rejected: true,
                queue_time,
                trace_id,
            };
        }

        let mut tokens = req.tokens.clone();
        tokens.sort_unstable();
        tokens.dedup();
        let key = CacheKey::new(tokens, &cfg);
        let fp = key.fingerprint();

        // Cache probe first: a hit is effectively free, so it is served
        // even when the deadline has already expired.
        if !req.bypass_cache {
            let probe_start = Instant::now();
            let cached = self.cache.get(fp, &key);
            if let Some(tb) = tb.as_mut() {
                let root = tb.root();
                let off = tb.offset(probe_start);
                let outcome = if cached.is_some() { "hit" } else { "miss" };
                tb.add_detail(
                    "cache.result",
                    root,
                    off,
                    probe_start.elapsed().as_nanos() as u64,
                    None,
                    Some(outcome),
                    cfg.epoch,
                );
            }
            if let Some(hits) = cached {
                self.stats.lock().expect("stats lock").cache_hits += 1;
                if let Some(tb) = tb.as_mut() {
                    tb.set_epoch(cfg.epoch);
                }
                if let Some(log) = &self.slowlog {
                    log.observe(&SlowQueryRecord {
                        fingerprint: fp,
                        k: cfg.k,
                        alpha: cfg.alpha,
                        epoch: cfg.epoch,
                        queue: queue_time,
                        search: Duration::ZERO,
                        cache: CacheOutcome::Hit,
                        trace_id: tb.as_ref().map(|b| b.trace_id()),
                        trace_depth: tb.as_ref().map(|b| b.depth()).unwrap_or(0),
                        stats: None,
                    });
                }
                let trace_id = self.finish_trace(tb, submitted, false, false);
                return ServiceResponse {
                    result: SearchResult {
                        hits: (*hits).clone(), // copy outside the cache lock
                        stats: SearchStats::default(),
                    },
                    cache: CacheOutcome::Hit,
                    rejected: false,
                    queue_time,
                    trace_id,
                };
            }
        }

        // Admission control: refuse to start work for a dead request. The
        // deadline is passed to the backend as an *absolute* instant, so it
        // bounds the whole remaining search — on a partitioned backend,
        // every shard and the merge-time verification loop.
        let deadline = req
            .time_budget
            .or(self.default_budget)
            .map(|b| submitted + b);
        if let Some(d) = deadline {
            if Instant::now() >= d {
                let mut st = self.stats.lock().expect("stats lock");
                // A deadline expiry at admission is both a rejection and a
                // timeout: callers observe `stats.timed_out = true`, so the
                // service-level counter must agree (it counts every request
                // that observed an expiry, admitted or not).
                st.rejected += 1;
                st.timed_out += 1;
                let stats = SearchStats {
                    timed_out: true,
                    ..SearchStats::default()
                };
                let trace_id = self.finish_trace(tb, submitted, true, true);
                return ServiceResponse {
                    result: SearchResult {
                        hits: Vec::new(),
                        stats,
                    },
                    cache: if req.bypass_cache {
                        CacheOutcome::Bypassed
                    } else {
                        CacheOutcome::Miss
                    },
                    rejected: true,
                    queue_time,
                    trace_id,
                };
            }
        }

        let (eff_k, eff_alpha, eff_epoch) = (cfg.k, cfg.alpha, cfg.epoch);
        let search_start = Instant::now();
        // Fast path: without per-request overrides the effective config is
        // the backend's own, so the shared backend (and its pre-built
        // shard engines) is searched directly — no config-sibling rebuild
        // per request.
        let result =
            if req.k.is_none() && req.alpha.is_none() && cfg.explain == backend.config().explain {
                backend.search_with_deadline(&key.tokens, deadline)
            } else {
                backend
                    .with_config(cfg)
                    .search_with_deadline(&key.tokens, deadline)
            };
        let search_time = search_start.elapsed();
        self.metrics.request_search.record_duration(search_time);
        self.record_stages(&result.stats);
        if let Some(tb) = tb.as_mut() {
            let off = tb.offset(search_start);
            record_search_spans(tb, &result.stats, off, search_time.as_nanos() as u64);
            tb.set_epoch(eff_epoch);
            if let Some(f) = &result.stats.funnel {
                tb.set_funnel(f.summary());
            }
        }

        // Only complete answers are worth caching: a timed-out search holds
        // partial hits that a later, luckier run could improve on.
        let complete = !result.stats.timed_out;
        if !req.bypass_cache && complete {
            let hits = Arc::new(result.hits.clone());
            self.cache.insert(fp, key, hits);
        }

        if let Some(log) = &self.slowlog {
            log.observe(&SlowQueryRecord {
                fingerprint: fp,
                k: eff_k,
                alpha: eff_alpha,
                epoch: eff_epoch,
                queue: queue_time,
                search: search_time,
                cache: if req.bypass_cache {
                    CacheOutcome::Bypassed
                } else {
                    CacheOutcome::Miss
                },
                trace_id: tb.as_ref().map(|b| b.trace_id()),
                trace_depth: tb.as_ref().map(|b| b.depth()).unwrap_or(0),
                stats: Some(&result.stats),
            });
        }

        {
            let mut st = self.stats.lock().expect("stats lock");
            st.searched += 1;
            if result.stats.timed_out {
                st.timed_out += 1;
            }
            st.engine.merge_sequential(&result.stats);
        }

        let trace_id = self.finish_trace(tb, submitted, result.stats.timed_out, false);
        ServiceResponse {
            result,
            cache: if req.bypass_cache {
                CacheOutcome::Bypassed
            } else {
                CacheOutcome::Miss
            },
            rejected: false,
            queue_time,
            trace_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_embed::repository::RepositoryBuilder;
    use koios_embed::sim::EqualitySimilarity;

    fn service(workers: usize, cache: usize) -> (Arc<Repository>, SearchService) {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c", "d"]);
        b.add_set("s1", ["a", "b", "c", "x"]);
        b.add_set("s2", ["a", "b", "y", "z"]);
        b.add_set("s3", ["a", "m", "n", "o"]);
        let repo = Arc::new(b.build());
        let svc = SearchService::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
            ServiceConfig::new()
                .with_workers(workers)
                .with_cache_capacity(cache),
        );
        (repo, svc)
    }

    #[test]
    fn single_request_matches_engine() {
        let (repo, svc) = service(2, 8);
        let q = repo.intern_query(["a", "b", "c"]);
        let direct = svc.backend().search(&q);
        let resp = svc.search(SearchRequest::new(q));
        assert!(!resp.rejected);
        assert_eq!(resp.cache, CacheOutcome::Miss);
        assert_eq!(resp.result.hits, direct.hits);
    }

    #[test]
    fn second_identical_query_hits_cache() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b", "c"]);
        let first = svc.search(SearchRequest::new(q.clone()));
        // Different order + duplicates normalize to the same fingerprint.
        let mut shuffled = q.clone();
        shuffled.reverse();
        shuffled.push(q[0]);
        let second = svc.search(SearchRequest::new(shuffled));
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(second.result.hits, first.result.hits);
        let st = svc.stats();
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.searched, 1);
        assert!(st.cache_hit_rate() > 0.0);
    }

    #[test]
    fn parameter_overrides_separate_cache_entries() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b", "c"]);
        let top2 = svc.search(SearchRequest::new(q.clone()));
        let top1 = svc.search(SearchRequest::new(q.clone()).with_k(1));
        assert_eq!(top1.cache, CacheOutcome::Miss);
        assert_eq!(top1.result.hits.len(), 1);
        assert_eq!(top2.result.hits.len(), 2);
        // Both entries live side by side.
        assert_eq!(svc.cache_len(), 2);
    }

    #[test]
    fn invalidation_forces_fresh_search() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b"]);
        svc.search(SearchRequest::new(q.clone()));
        svc.invalidate_cache();
        let after = svc.search(SearchRequest::new(q));
        assert_eq!(after.cache, CacheOutcome::Miss);
        assert_eq!(svc.stats().cache.invalidations, 1);
    }

    #[test]
    fn bypass_cache_never_touches_it() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b"]);
        let r = svc.search(SearchRequest::new(q.clone()).bypassing_cache());
        assert_eq!(r.cache, CacheOutcome::Bypassed);
        assert_eq!(svc.cache_len(), 0);
        let again = svc.search(SearchRequest::new(q).bypassing_cache());
        assert_eq!(again.cache, CacheOutcome::Bypassed);
        assert_eq!(svc.stats().cache.hits, 0);
    }

    #[test]
    fn invalid_overrides_are_rejected_with_truthful_outcome() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a"]);
        let r = svc.search(SearchRequest::new(q.clone()).with_k(0));
        assert!(r.rejected);
        // The request never asked to bypass the cache, so the outcome must
        // not claim it did; the cache was skipped because of the rejection.
        assert_eq!(r.cache, CacheOutcome::Rejected);
        let r = svc.search(SearchRequest::new(q.clone()).with_alpha(1.5));
        assert!(r.rejected);
        assert_eq!(r.cache, CacheOutcome::Rejected);
        // A bypassing invalid request also reports the rejection.
        let r = svc.search(SearchRequest::new(q).with_k(0).bypassing_cache());
        assert_eq!(r.cache, CacheOutcome::Rejected);
        let st = svc.stats();
        assert_eq!(st.rejected, 3);
        // Parameter rejections are not deadline expiries.
        assert_eq!(st.timed_out, 0);
    }

    #[test]
    fn expired_deadline_is_rejected_without_searching() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b"]);
        let r = svc.search(SearchRequest::new(q).with_time_budget(Duration::ZERO));
        assert!(r.rejected);
        assert!(r.result.stats.timed_out);
        assert!(r.result.hits.is_empty());
        let st = svc.stats();
        assert_eq!(st.rejected, 1);
        assert_eq!(st.searched, 0);
        // The response reported `timed_out`, so the service counter agrees
        // (admission expiries used to be invisible in `timed_out`).
        assert_eq!(st.timed_out, 1);
    }

    #[test]
    fn partitioned_backend_serves_identical_results() {
        let (repo, svc) = service(2, 8);
        let q = repo.intern_query(["a", "b", "c"]);
        let single = svc.search(SearchRequest::new(q.clone()));
        for parts in [1usize, 2, 8] {
            let parted = SearchService::new_partitioned(
                Arc::clone(&repo),
                Arc::new(EqualitySimilarity),
                KoiosConfig::new(2, 0.9),
                parts,
                7,
                ServiceConfig::new().with_workers(2).with_cache_capacity(8),
            );
            assert_eq!(parted.partitions(), parts);
            assert_eq!(parted.stats().partitions, parts);
            let r = parted.search(SearchRequest::new(q.clone()));
            assert_eq!(r.result.hits.len(), single.result.hits.len());
            for (a, b) in r.result.hits.iter().zip(&single.result.hits) {
                assert_eq!(a.set, b.set, "parts={parts}");
                assert!((a.score.ub() - b.score.ub()).abs() < 1e-9, "parts={parts}");
            }
        }
    }

    #[test]
    fn partitioned_shards_share_one_token_cache() {
        let (repo, _) = service(1, 8);
        let svc = SearchService::new_partitioned(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
            4,
            7,
            ServiceConfig::new().with_workers(1).with_cache_capacity(0),
        );
        let q = repo.intern_query(["a", "b", "c"]);
        let cold = svc.search(SearchRequest::new(q.clone()));
        // 4 shards × 3 elements probe the one shared cache; every probe
        // resolves (hit or miss), and at least the non-first shards of each
        // element can hit.
        let cold_knn = &cold.result.stats.knn_cache;
        assert_eq!(cold_knn.hits + cold_knn.misses, 4 * 3);
        assert!(cold_knn.misses >= 3, "first resolver per element misses");
        // A repeat search hits for every element in every shard.
        let warm = svc.search(SearchRequest::new(q));
        let warm_knn = &warm.result.stats.knn_cache;
        assert_eq!(warm_knn.hits, 4 * 3, "warm shards all hit: {warm_knn:?}");
        assert_eq!(warm_knn.misses, 0);
        assert_eq!(warm.result.hits, cold.result.hits);
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_entries() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b"]);
        svc.search(SearchRequest::new(q.clone()));
        svc.search(SearchRequest::new(q.clone()));
        assert_eq!(svc.stats().cache_hits, 1);
        svc.reset_stats();
        let st = svc.stats();
        assert_eq!((st.queries, st.cache_hits, st.searched), (0, 0, 0));
        assert_eq!(st.cache.hits, 0);
        // Entries survive: the next identical query still hits.
        assert_eq!(svc.cache_len(), 1);
        let again = svc.search(SearchRequest::new(q));
        assert_eq!(again.cache, CacheOutcome::Hit);
    }

    #[test]
    fn token_cache_is_shared_and_reported() {
        let (repo, svc) = service(1, 8);
        assert!(svc.token_cache().is_some(), "enabled by default");
        let q1 = repo.intern_query(["a", "b", "c"]);
        let q2 = repo.intern_query(["a", "b", "x"]); // overlaps q1 on a, b
        let r1 = svc.search(SearchRequest::new(q1));
        assert!(r1.result.stats.knn_cache.misses > 0);
        assert_eq!(r1.result.stats.knn_cache.hits, 0);
        let r2 = svc.search(SearchRequest::new(q2));
        assert!(
            r2.result.stats.knn_cache.hits >= 2,
            "overlapping elements served from the token cache: {:?}",
            r2.result.stats.knn_cache
        );
        let st = svc.stats();
        let tc = st.token_cache.expect("token cache enabled");
        assert!(tc.entries > 0 && tc.bytes > 0);
        assert_eq!(
            tc.counters.hits as usize, r2.result.stats.knn_cache.hits,
            "global and per-search views agree"
        );
        assert!(st.token_cache_hit_rate() > 0.0);
        // The folded engine stats carry the summed per-search counters.
        assert_eq!(
            st.engine.knn_cache.hits + st.engine.knn_cache.misses,
            6,
            "3 elements per query, 2 searched queries"
        );
    }

    #[test]
    fn invalidation_bumps_token_cache_generation() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b"]);
        svc.search(SearchRequest::new(q.clone()));
        let before = svc.token_cache().unwrap().snapshot();
        assert!(before.entries > 0);
        svc.invalidate_cache();
        let after = svc.token_cache().unwrap().snapshot();
        assert_eq!(after.entries, 0);
        assert_eq!(after.generation, before.generation + 1);
        // A rerun repopulates under the new generation, results unchanged.
        let rerun = svc.search(SearchRequest::new(q.clone()).bypassing_cache());
        assert_eq!(rerun.result.hits, svc.backend().search(&q).hits);
        assert!(svc.token_cache().unwrap().snapshot().entries > 0);
    }

    #[test]
    fn zero_budget_disables_token_cache() {
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b"]);
        let repo = Arc::new(b.build());
        let svc = SearchService::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(1, 0.9),
            ServiceConfig::new()
                .with_workers(1)
                .with_token_cache_bytes(0),
        );
        assert!(svc.token_cache().is_none());
        let q = repo.intern_query(["a", "b"]);
        let r = svc.search(SearchRequest::new(q));
        assert_eq!(r.result.stats.knn_cache, Default::default());
        assert!(svc.stats().token_cache.is_none());
    }

    #[test]
    fn zero_budget_strips_engine_supplied_cache() {
        use koios_index::knn_cache::TokenKnnCache;
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b"]);
        let repo = Arc::new(b.build());
        let engine = koios_core::OwnedKoios::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(1, 0.9).with_token_cache(Arc::new(TokenKnnCache::new(1 << 20))),
        );
        let svc = SearchService::from_engine(
            engine,
            ServiceConfig::new()
                .with_workers(1)
                .with_token_cache_bytes(0),
        );
        assert!(
            svc.token_cache().is_none(),
            "0 disables even a preinstalled cache"
        );
        assert!(svc.backend().config().token_cache.is_none());
        let q = repo.intern_query(["a", "b"]);
        let r = svc.search(SearchRequest::new(q));
        assert_eq!(r.result.stats.knn_cache, Default::default());
    }

    #[test]
    fn batch_workers_share_one_token_cache() {
        let (repo, svc) = service(4, 0);
        let q = repo.intern_query(["a", "b", "c", "d"]);
        // 8 identical requests race across 4 workers; with the result cache
        // disabled every one searches, but the token cache still bounds the
        // total element scans: every (element, α) list is computed at most
        // once per concurrent non-overlapping window — and exactly 4 misses
        // minimum is guaranteed only for the first finisher, so just assert
        // correctness plus a shared-cache effect.
        let reqs: Vec<SearchRequest> = (0..8).map(|_| SearchRequest::new(q.clone())).collect();
        let responses = svc.search_batch(&reqs);
        let direct = svc.backend().search(&q);
        for r in &responses {
            assert_eq!(r.result.hits, direct.hits);
        }
        let tc = svc.stats().token_cache.expect("enabled");
        assert!(
            tc.counters.hits > 0,
            "later requests reuse earlier lists: {tc:?}"
        );
    }

    #[test]
    fn token_cache_ttl_expires_lists() {
        let (repo, _) = service(1, 8);
        let svc = SearchService::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
            ServiceConfig::new()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_token_cache_ttl(Duration::ZERO),
        );
        assert_eq!(svc.token_cache().unwrap().ttl(), Some(Duration::ZERO));
        let q = repo.intern_query(["a", "b"]);
        let first = svc.search(SearchRequest::new(q.clone()));
        // Every repeat probe finds only expired lists: recompute, identical
        // results, expirations counted.
        let second = svc.search(SearchRequest::new(q));
        assert_eq!(second.result.hits, first.result.hits);
        assert_eq!(second.result.stats.knn_cache.hits, 0);
        let tc = svc.stats().token_cache.expect("enabled");
        assert!(tc.counters.expirations >= 2, "{:?}", tc.counters);
    }

    #[test]
    fn service_warm_starts_from_snapshot() {
        use koios_embed::synthetic::SyntheticEmbeddings;
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["LA", "Blain", "Appleton", "MtPleasant"]);
        b.add_set("c2", ["LA", "Sacramento", "Blain", "SC"]);
        b.add_set("c3", ["Zebra", "Yak", "Gnu"]);
        let repo = Arc::new(b.build());
        let emb = Arc::new(
            SyntheticEmbeddings::builder()
                .dimensions(16)
                .seed(3)
                .build(&repo),
        );
        let sim = Arc::new(koios_embed::sim::CosineSimilarity::new(Arc::clone(&emb)));
        let cold = SearchService::new_partitioned(
            Arc::clone(&repo),
            sim,
            KoiosConfig::new(2, 0.5),
            2,
            7,
            ServiceConfig::new().with_workers(1),
        );
        let dir = std::env::temp_dir().join("koios-service-snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("service.ksnap");
        cold.backend().write_snapshot(&path, Some(&emb)).unwrap();
        assert!(cold.snapshot_info().is_none());
        assert!(cold.stats().snapshot.is_none());

        let warm = SearchService::from_snapshot(
            &path,
            KoiosConfig::new(2, 0.5),
            ServiceConfig::new().with_workers(1),
        )
        .unwrap();
        assert_eq!(warm.partitions(), 2);
        let info = warm.snapshot_info().expect("provenance recorded");
        assert_eq!(info.partitions, 2);
        assert_eq!(info.num_sets, repo.num_sets());
        assert!(info.bytes > 0);
        assert_eq!(info.deltas, 0, "plain base: no delta chain");
        assert_eq!(info.latest_epoch, 0);
        assert_eq!(warm.stats().snapshot, Some(info));
        assert!(warm.is_mutable(), "snapshot services own a writer");

        let q = repo.intern_query(["LA", "Blain", "SC"]);
        let a = cold.search(SearchRequest::new(q.clone()));
        let b = warm.search(SearchRequest::new(q));
        assert_eq!(a.result.hits, b.result.hits, "warm ≡ cold over the service");
    }

    #[test]
    fn metrics_cover_stages_queue_and_lock_wait() {
        let (repo, svc) = service(2, 8);
        let q = repo.intern_query(["a", "b", "c"]);
        svc.search(SearchRequest::new(q.clone()));
        svc.search(SearchRequest::new(q)); // result-cache hit
        let m = svc.metrics();
        assert_eq!(m.stage_refine.snapshot().count(), 1, "one executed search");
        assert_eq!(m.stage_verify.snapshot().count(), 1);
        assert_eq!(m.request_search.snapshot().count(), 1);
        assert_eq!(m.request_queue.snapshot().count(), 2, "hits queue too");
        assert_eq!(m.queue_wait.snapshot().count(), 2);
        assert_eq!(m.queue_depth.get(), 0, "both requests drained");
        assert!(
            m.lock_wait_result.snapshot().count() >= 3,
            "probe + fill + probe each timed the cache mutex"
        );
        assert!(
            m.lock_wait_token.snapshot().count() > 0,
            "shared token cache acquisitions are timed"
        );
        let text = svc.render_metrics();
        for series in [
            "koios_stage_seconds",
            "koios_queue_depth",
            "koios_queue_wait_seconds",
            "koios_lock_wait_seconds",
            "koios_request_seconds",
            "koios_uptime_seconds",
            "koios_cache_ops_total",
            "koios_token_cache_bytes",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        assert!(text.contains("koios_cache_ops_total{cache=\"result\",op=\"hit\"} 1"));
        assert!(text.contains("koios_stage_seconds_count{stage=\"refine\"} 1"));
    }

    #[test]
    fn partitioned_service_emits_shard_and_merge_series() {
        let (repo, _) = service(1, 8);
        let svc = SearchService::new_partitioned(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(2, 0.9),
            3,
            7,
            ServiceConfig::new().with_workers(1).with_cache_capacity(0),
        );
        let q = repo.intern_query(["a", "b", "c"]);
        svc.search(SearchRequest::new(q));
        let m = svc.metrics();
        for shard in 0..3 {
            assert_eq!(m.shard(shard).snapshot().count(), 1, "shard {shard}");
        }
        assert_eq!(m.stage_merge.snapshot().count(), 1);
        let text = svc.render_metrics();
        assert!(text.contains("koios_shard_seconds_count{shard=\"2\"} 1"));
        assert!(text.contains("koios_stage_seconds_count{stage=\"merge\"} 1"));
    }

    #[test]
    fn single_engine_service_emits_no_shard_or_merge_series() {
        let (repo, svc) = service(1, 8);
        let q = repo.intern_query(["a", "b"]);
        svc.search(SearchRequest::new(q));
        let text = svc.render_metrics();
        assert!(!text.contains("koios_shard_seconds_bucket"));
        assert!(text.contains("koios_stage_seconds_count{stage=\"merge\"} 0"));
    }

    #[test]
    fn slow_query_log_captures_offenders() {
        use std::sync::Mutex as StdMutex;
        let lines = Arc::new(StdMutex::new(Vec::<String>::new()));
        let sink = {
            let lines = Arc::clone(&lines);
            Arc::new(move |line: &str| lines.lock().unwrap().push(line.to_string())) as _
        };
        let mut b = RepositoryBuilder::new();
        b.add_set("s0", ["a", "b", "c", "d"]);
        b.add_set("s1", ["a", "b", "x", "y"]);
        let repo = Arc::new(b.build());
        let svc = SearchService::new(
            Arc::clone(&repo),
            Arc::new(EqualitySimilarity),
            KoiosConfig::new(1, 0.9),
            ServiceConfig::new()
                .with_workers(1)
                .with_slow_query_log(SlowQueryLog::new(Duration::ZERO, sink)),
        );
        let q = repo.intern_query(["a", "b"]);
        svc.search(SearchRequest::new(q.clone()));
        svc.search(SearchRequest::new(q)); // hit — also over the 0ns threshold
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2, "both requests crossed the zero threshold");
        assert!(lines[0].contains("\"cache\":\"miss\""));
        assert!(lines[0].contains("\"refine_ns\":"));
        assert!(lines[0].contains("\"k\":1"));
        assert!(lines[0].contains("\"fingerprint\":\"0x"));
        assert!(lines[1].contains("\"cache\":\"hit\""));
        assert!(!lines[1].contains("refine_ns"), "hits did no engine work");
    }

    #[test]
    fn stats_report_uptime_and_start_time() {
        let (repo, svc) = service(1, 8);
        let before = svc.stats();
        assert!(before.start_time > std::time::SystemTime::UNIX_EPOCH);
        svc.search(SearchRequest::new(repo.intern_query(["a"])));
        let after = svc.stats();
        assert!(after.uptime_secs >= before.uptime_secs);
        assert_eq!(after.start_time, before.start_time, "start time is fixed");
        // reset_stats zeroes counters but the service did not restart.
        svc.reset_stats();
        assert!(svc.stats().uptime_secs >= after.uptime_secs);
    }

    fn equality_factory() -> koios_core::mutable::SimFactory {
        Arc::new(|_, _| Ok(Arc::new(EqualitySimilarity) as Arc<dyn ElementSimilarity>))
    }

    #[test]
    fn live_ingest_mutates_the_served_corpus() {
        let (repo, _) = service(1, 8);
        let engine = MutableEngine::single(
            Arc::clone(&repo),
            None,
            KoiosConfig::new(2, 0.9),
            equality_factory(),
        )
        .unwrap();
        let svc = SearchService::from_mutable(
            engine,
            ServiceConfig::new().with_workers(2).with_cache_capacity(8),
        );
        assert!(svc.is_mutable());
        assert_eq!(svc.engine_epoch(), 0);

        let q = repo.intern_query(["m", "n", "o"]);
        let before = svc.search(SearchRequest::new(q.clone()));
        assert_eq!(before.result.stats.epoch, 0);
        // Pin the pre-mutation backend: it must keep serving its frozen
        // corpus after the swap.
        let frozen = svc.backend();

        let out = svc
            .ingest(&[CorpusOp::insert("s4", ["m", "n", "o"])])
            .unwrap();
        assert_eq!((out.inserted, out.removed, out.epoch), (1, 0, 1));
        let st = svc.stats();
        assert_eq!(st.engine_epoch, 1);
        assert_eq!((st.sets_added, st.sets_removed), (1, 0));

        let after = svc.search(SearchRequest::new(q.clone()));
        assert_eq!(after.cache, CacheOutcome::Miss, "epoch keys the cache");
        assert_eq!(after.result.stats.epoch, 1);
        let repo_now = svc.repository();
        assert!(
            after
                .result
                .hits
                .iter()
                .any(|h| repo_now.set_name(h.set) == "s4"),
            "the ingested set ranks for its own tokens"
        );
        assert_eq!(frozen.repository().num_sets(), 4, "old backend frozen");
        assert_eq!(frozen.search(&q).hits, before.result.hits);

        // Tombstoning takes it back out.
        let s4 = SetId(4);
        let out = svc.ingest(&[CorpusOp::remove(s4)]).unwrap();
        assert_eq!((out.inserted, out.removed, out.epoch), (0, 1, 2));
        let gone = svc.search(SearchRequest::new(q));
        assert!(gone.result.hits.iter().all(|h| h.set != s4));
        assert_eq!(svc.stats().sets_removed, 1);

        // A rejected batch mutates nothing and keeps the epoch.
        let err = svc.ingest(&[CorpusOp::remove(SetId(99))]).unwrap_err();
        assert!(matches!(err, LiveServiceError::Rejected(_)), "{err}");
        assert_eq!(svc.engine_epoch(), 2);
    }

    #[test]
    fn immutable_services_refuse_the_mutation_surface() {
        let (_repo, svc) = service(1, 8);
        assert!(!svc.is_mutable());
        for err in [
            svc.ingest(&[]).unwrap_err(),
            svc.snapshot_to("/tmp/never-written.ksnap").unwrap_err(),
            svc.reload("/tmp/never-read.ksnap").unwrap_err(),
        ] {
            assert!(matches!(err, LiveServiceError::Immutable), "{err}");
            assert!(err.to_string().contains("mutable"));
        }
        assert_eq!(svc.stats().engine_epoch, 0);
    }

    #[test]
    fn snapshot_to_appends_deltas_and_reload_hot_swaps() {
        use koios_embed::synthetic::SyntheticEmbeddings;
        let mut b = RepositoryBuilder::new();
        b.add_set("c1", ["LA", "Blain", "Appleton"]);
        b.add_set("c2", ["LA", "Sacramento", "SC"]);
        let repo = Arc::new(b.build());
        let emb = Arc::new(
            SyntheticEmbeddings::builder()
                .dimensions(8)
                .seed(5)
                .build(&repo),
        );
        let engine = koios_core::mutable::MutableEngine::single(
            Arc::clone(&repo),
            Some(emb),
            KoiosConfig::new(2, 0.5),
            koios_core::mutable::cosine_factory(),
        )
        .unwrap();
        let svc = SearchService::from_mutable(engine, ServiceConfig::new().with_workers(1));

        let dir = std::env::temp_dir().join("koios-service-live");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.ksnap");
        let _ = std::fs::remove_file(&path);

        let meta = svc.snapshot_to(&path).unwrap();
        assert!(meta.deltas.is_empty(), "first write is a fresh base");

        svc.ingest(&[CorpusOp::insert("n1", ["LA", "SC", "Fresno"])])
            .unwrap();
        let meta = svc.snapshot_to(&path).unwrap();
        assert_eq!(meta.deltas.len(), 1, "second write appends one delta");
        assert_eq!(meta.latest_epoch(), 1);
        let again = svc.snapshot_to(&path).unwrap();
        assert_eq!(again.deltas.len(), 1, "nothing pending: chain unchanged");

        // A fresh service restores base + delta and resumes the epoch.
        let warm = SearchService::from_snapshot(
            &path,
            KoiosConfig::new(2, 0.5),
            ServiceConfig::new().with_workers(1),
        )
        .unwrap();
        assert_eq!(warm.engine_epoch(), 1);
        assert_eq!(warm.repository().num_sets(), repo.num_sets() + 1);
        let info = warm.snapshot_info().unwrap();
        assert_eq!((info.deltas, info.latest_epoch), (1, 1));
        let q = warm.repository().intern_query(["LA", "SC"]);
        assert_eq!(
            warm.search(SearchRequest::new(q.clone())).result.hits,
            svc.search(SearchRequest::new(q.clone())).result.hits,
            "restored service answers identically"
        );

        // Hot reload rolls the original service back to the file's state,
        // with a strictly higher epoch than the replaced engine.
        svc.ingest(&[CorpusOp::insert("n2", ["Blain"])]).unwrap(); // epoch 2, unsnapshotted
        let info = svc.reload(&path).unwrap();
        assert_eq!((info.deltas, info.latest_epoch), (1, 1));
        assert_eq!(svc.engine_epoch(), 3, "max(old + 1, chain latest)");
        assert_eq!(svc.repository().num_sets(), repo.num_sets() + 1, "n2 gone");
        assert_eq!(svc.stats().snapshot, Some(info));
        assert_eq!(
            svc.search(SearchRequest::new(q.clone())).result.hits,
            warm.search(SearchRequest::new(q)).result.hits
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_repo, svc) = service(4, 8);
        assert!(svc.search_batch(&[]).is_empty());
    }

    #[test]
    fn batch_preserves_submission_order() {
        let (repo, svc) = service(4, 0);
        let queries: Vec<Vec<TokenId>> = vec![
            repo.intern_query(["a", "b", "c", "d"]),
            repo.intern_query(["a", "m"]),
            repo.intern_query(["y", "z"]),
            repo.intern_query(["a", "b", "c", "d"]),
        ];
        let requests: Vec<SearchRequest> =
            queries.iter().cloned().map(SearchRequest::new).collect();
        let responses = svc.search_batch(&requests);
        assert_eq!(responses.len(), queries.len());
        for (q, r) in queries.iter().zip(&responses) {
            let direct = svc.backend().search(q);
            assert_eq!(r.result.hits, direct.hits, "order mismatch for {q:?}");
        }
    }
}
