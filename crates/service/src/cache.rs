//! A dependency-free LRU cache with observability counters.
//!
//! The service keys entries by a 64-bit request [fingerprint]
//! (`koios_common::fingerprint`) but stores the *full* key alongside each
//! entry and verifies equality on lookup — a fingerprint collision is
//! reported as a miss (and the colliding insert replaces the entry), never
//! as a wrong result.
//!
//! Recency is tracked with a monotone tick and a `BTreeMap<tick, fp>`
//! index, giving `O(log n)` touch/insert/evict without unsafe pointer
//! juggling.
//!
//! Entries can carry a **TTL** ([`LruCache::with_ttl`]): each entry
//! remembers its insertion instant, and a probe that finds an entry older
//! than the TTL evicts it and reports a miss — the first half of the
//! ROADMAP "cache admission/TTL policies" item, bounding how stale a served
//! answer can be when the corpus changes out of band.
//!
//! Two variants share these semantics: [`LruCache`] is the single-owner
//! (`&mut self`) map, and [`StripedLruCache`] wraps the same behaviour in
//! N fingerprint-striped segments with interior locking, a global capacity
//! and a global recency order — the concurrent result cache the service
//! front-end probes without serializing its worker pool (the ROADMAP
//! scaling item's third serializer).
//!
//! [fingerprint]: koios_common::fingerprint::Fingerprinter

use koios_common::fingerprint::mix64;
use koios_telemetry::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Monotone counters describing cache behaviour since construction (or the
/// last [`LruCache::reset_counters`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint collision).
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries found past their TTL on probe (evicted, also counted as
    /// misses).
    pub expirations: u64,
}

impl CacheCounters {
    /// Accumulates another counter set — used to sum per-stripe counters
    /// into the cache-global view.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.insertions += other.insertions;
        self.expirations += other.expirations;
    }

    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<K, V> {
    key: K,
    value: V,
    stamp: u64,
    created: Instant,
}

/// A least-recently-used map from `(fingerprint, full key)` to values,
/// optionally with a per-entry time-to-live.
pub struct LruCache<K, V> {
    map: HashMap<u64, Entry<K, V>>,
    recency: BTreeMap<u64, u64>, // stamp -> fingerprint, oldest first
    tick: u64,
    capacity: usize,
    ttl: Option<Duration>,
    counters: CacheCounters,
}

impl<K: Eq, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries; `capacity == 0` disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            recency: BTreeMap::new(),
            tick: 0,
            capacity,
            ttl: None,
            counters: CacheCounters::default(),
        }
    }

    /// Sets a time-to-live: probes evict (and miss on) entries inserted
    /// more than `ttl` ago. `None` restores the default — entries live
    /// until displaced or invalidated.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// The configured time-to-live, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters since construction or the last reset.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Zeroes the counters (entries are kept).
    pub fn reset_counters(&mut self) {
        self.counters = CacheCounters::default();
    }

    /// Looks up `key` under `fp`, refreshing its recency on a hit. An entry
    /// past the configured TTL is evicted and reported as a miss — the
    /// probe is the eviction point, so an idle cache holds expired entries
    /// only until someone asks for them (or capacity displaces them).
    pub fn get(&mut self, fp: u64, key: &K) -> Option<V> {
        let expired = matches!(
            (self.map.get(&fp), self.ttl),
            (Some(entry), Some(ttl)) if entry.key == *key && entry.created.elapsed() >= ttl
        );
        if expired {
            let old = self.map.remove(&fp).expect("checked above");
            self.recency.remove(&old.stamp);
            self.counters.expirations += 1;
            self.counters.misses += 1;
            return None;
        }
        let tick = &mut self.tick;
        match self.map.get_mut(&fp) {
            Some(entry) if entry.key == *key => {
                self.recency.remove(&entry.stamp);
                *tick += 1;
                entry.stamp = *tick;
                self.recency.insert(entry.stamp, fp);
                self.counters.hits += 1;
                Some(entry.value.clone())
            }
            _ => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `(fp, key)`, evicting the least-recently-used
    /// entry when full. An insert with the same fingerprint (same key or a
    /// collision) replaces the existing entry in place.
    pub fn insert(&mut self, fp: u64, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let stamp = self.tick;
        let created = Instant::now();
        let entry = Entry {
            key,
            value,
            stamp,
            created,
        };
        if let Some(old) = self.map.insert(fp, entry) {
            self.recency.remove(&old.stamp);
        } else if self.map.len() > self.capacity {
            if let Some((&oldest, &victim)) = self.recency.iter().next() {
                self.recency.remove(&oldest);
                self.map.remove(&victim);
                self.counters.evictions += 1;
            }
        }
        self.recency.insert(stamp, fp);
        self.counters.insertions += 1;
    }

    /// Drops every entry (e.g. after the underlying repository or
    /// similarity model changed).
    pub fn invalidate_all(&mut self) {
        self.counters.invalidations += self.map.len() as u64;
        self.map.clear();
        self.recency.clear();
    }
}

/// One fingerprint-hash-selected segment of a [`StripedLruCache`]: its own
/// map, recency index and counters behind its own mutex. Recency stamps
/// come from the cache-global clock, so "oldest stamp across stripes" is
/// the globally least-recently-used entry.
struct LruStripe<K, V> {
    map: HashMap<u64, Entry<K, V>>,
    recency: BTreeMap<u64, u64>, // stamp -> fingerprint, oldest first
    counters: CacheCounters,
}

impl<K, V> Default for LruStripe<K, V> {
    fn default() -> Self {
        LruStripe {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            counters: CacheCounters::default(),
        }
    }
}

/// Stripe count when [`StripedLruCache::with_stripes`] is not used.
const DEFAULT_STRIPES: usize = 8;

/// A concurrent [`LruCache`]: entries live in N fingerprint-striped
/// segments behind independent mutexes, while capacity, recency order and
/// TTL semantics stay **global** — `capacity` bounds the total entry count
/// exactly, and eviction removes the globally least-recently-used entry
/// wherever it lives. All methods take `&self`; share it freely.
///
/// The striping is semantically invisible: collision handling, probe-time
/// TTL expiry and every [`CacheCounters`] meaning are those of the
/// single-owner cache.
pub struct StripedLruCache<K, V> {
    stripes: Vec<Mutex<LruStripe<K, V>>>,
    stripe_mask: usize,
    // Cache-global recency clock: stamps are unique and totally ordered
    // across stripes.
    tick: AtomicU64,
    // Total entries across stripes; the capacity check reads this without
    // taking any stripe lock.
    count: AtomicUsize,
    capacity: usize,
    ttl: Option<Duration>,
    // Observability hook mirroring `TokenKnnCache::install_lock_wait`:
    // time blocked acquiring a stripe mutex on the probe/insert paths.
    lock_wait: OnceLock<Arc<Histogram>>,
}

impl<K: Eq, V: Clone> StripedLruCache<K, V> {
    /// A cache holding at most `capacity` entries in total; `capacity == 0`
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        StripedLruCache {
            stripes: (0..DEFAULT_STRIPES).map(|_| Mutex::default()).collect(),
            stripe_mask: DEFAULT_STRIPES - 1,
            tick: AtomicU64::new(0),
            count: AtomicUsize::new(0),
            capacity,
            ttl: None,
            lock_wait: OnceLock::new(),
        }
    }

    /// Sets the stripe count (builder style, before the cache is shared):
    /// `n` is rounded up to a power of two and clamped to `[1, 256]`.
    pub fn with_stripes(mut self, n: usize) -> Self {
        let n = n.clamp(1, 256).next_power_of_two();
        self.stripes = (0..n).map(|_| Mutex::default()).collect();
        self.stripe_mask = n - 1;
        self
    }

    /// Sets a time-to-live: probes evict (and miss on) entries inserted
    /// more than `ttl` ago. `None` restores the default.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// The configured time-to-live, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// The number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Installs a histogram recording, in nanoseconds, the time each
    /// probe/insert spends blocked acquiring its stripe mutex. Idempotent;
    /// first installation wins. Without one, acquisition does no timing.
    pub fn install_lock_wait(&self, histogram: Arc<Histogram>) {
        let _ = self.lock_wait.set(histogram);
    }

    /// Total entries across stripes.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-stripe entry counts, in stripe order (invariant tests and
    /// telemetry gauges read this).
    pub fn stripe_usage(&self) -> Vec<usize> {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("lru stripe").map.len())
            .collect()
    }

    /// Per-stripe `(entries, oldest entry age)` — the deep introspection
    /// view `GET /debug/cache` renders. Age is measured from insertion
    /// (not last hit), so a hot-but-old entry shows its true residency;
    /// `None` marks an empty stripe.
    pub fn stripe_debug(&self) -> Vec<(usize, Option<Duration>)> {
        self.stripes
            .iter()
            .map(|stripe| {
                let s = stripe.lock().expect("lru stripe");
                let oldest = s.map.values().map(|e| e.created.elapsed()).max();
                (s.map.len(), oldest)
            })
            .collect()
    }

    /// Counters summed across stripes. Each monotone counter is exact once
    /// concurrent operations have completed.
    pub fn counters(&self) -> CacheCounters {
        let mut total = CacheCounters::default();
        for stripe in &self.stripes {
            total.merge(&stripe.lock().expect("lru stripe").counters);
        }
        total
    }

    /// Zeroes the counters (entries are kept).
    pub fn reset_counters(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("lru stripe").counters = CacheCounters::default();
        }
    }

    /// The stripe index owning `fp` (mixed so structured fingerprints
    /// spread evenly).
    fn stripe_of(&self, fp: u64) -> usize {
        mix64(fp) as usize & self.stripe_mask
    }

    /// Acquires stripe `idx`, recording blocked time when a lock-wait
    /// histogram is installed.
    fn lock_stripe(&self, idx: usize) -> MutexGuard<'_, LruStripe<K, V>> {
        match self.lock_wait.get() {
            None => self.stripes[idx].lock().expect("lru stripe"),
            Some(h) => {
                let start = Instant::now();
                let guard = self.stripes[idx].lock().expect("lru stripe");
                h.record_duration(start.elapsed());
                guard
            }
        }
    }

    /// Looks up `key` under `fp`, refreshing its recency on a hit;
    /// probe-time TTL expiry and collision-as-miss exactly as
    /// [`LruCache::get`].
    pub fn get(&self, fp: u64, key: &K) -> Option<V> {
        let mut stripe = self.lock_stripe(self.stripe_of(fp));
        let stripe = &mut *stripe;
        let expired = matches!(
            (stripe.map.get(&fp), self.ttl),
            (Some(entry), Some(ttl)) if entry.key == *key && entry.created.elapsed() >= ttl
        );
        if expired {
            let old = stripe.map.remove(&fp).expect("checked above");
            stripe.recency.remove(&old.stamp);
            self.count.fetch_sub(1, Ordering::AcqRel);
            stripe.counters.expirations += 1;
            stripe.counters.misses += 1;
            return None;
        }
        match stripe.map.get_mut(&fp) {
            Some(entry) if entry.key == *key => {
                let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                stripe.recency.remove(&entry.stamp);
                entry.stamp = stamp;
                stripe.recency.insert(stamp, fp);
                stripe.counters.hits += 1;
                Some(entry.value.clone())
            }
            _ => {
                stripe.counters.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `(fp, key)`, evicting the globally
    /// least-recently-used entry when the total exceeds capacity. An
    /// insert with the same fingerprint replaces the entry in place.
    pub fn insert(&self, fp: u64, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut stripe = self.lock_stripe(self.stripe_of(fp));
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Entry {
            key,
            value,
            stamp,
            created: Instant::now(),
        };
        if let Some(old) = stripe.map.insert(fp, entry) {
            stripe.recency.remove(&old.stamp);
        } else {
            self.count.fetch_add(1, Ordering::AcqRel);
        }
        stripe.recency.insert(stamp, fp);
        stripe.counters.insertions += 1;
        drop(stripe);
        self.rebalance();
    }

    /// Evicts globally least-recently-used entries until the total fits
    /// capacity — same one-lock-at-a-time scan as the token cache's
    /// rebalance: peek every stripe's oldest stamp, re-lock the winner,
    /// evict whatever is oldest there now. A just-inserted entry carries
    /// the newest stamp, so it is only chosen once it is the last one —
    /// at which point the total (1) fits any non-zero capacity.
    fn rebalance(&self) {
        while self.count.load(Ordering::Acquire) > self.capacity {
            let mut oldest: Option<(u64, usize)> = None;
            for (i, stripe) in self.stripes.iter().enumerate() {
                let s = stripe.lock().expect("lru stripe");
                if let Some((&stamp, _)) = s.recency.iter().next() {
                    if oldest.is_none_or(|(best, _)| stamp < best) {
                        oldest = Some((stamp, i));
                    }
                }
            }
            let Some((_, i)) = oldest else { return };
            let mut s = self.stripes[i].lock().expect("lru stripe");
            let s = &mut *s;
            if let Some((&stamp, &victim)) = s.recency.iter().next() {
                s.recency.remove(&stamp);
                s.map.remove(&victim);
                self.count.fetch_sub(1, Ordering::AcqRel);
                s.counters.evictions += 1;
            }
        }
    }

    /// Drops every entry (e.g. after the underlying repository or
    /// similarity model changed).
    pub fn invalidate_all(&self) {
        for stripe in &self.stripes {
            let mut s = stripe.lock().expect("lru stripe");
            s.counters.invalidations += s.map.len() as u64;
            self.count.fetch_sub(s.map.len(), Ordering::AcqRel);
            s.map.clear();
            s.recency.clear();
        }
    }
}

impl<K, V> std::fmt::Debug for StripedLruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedLruCache")
            .field("entries", &self.count.load(Ordering::Acquire))
            .field("capacity", &self.capacity)
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        assert_eq!(c.get(1, &10), None);
        c.insert(1, 10, "a".into());
        assert_eq!(c.get(1, &10), Some("a".into()));
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.insertions), (1, 1, 1));
    }

    #[test]
    fn fingerprint_collision_is_a_miss_not_a_wrong_value() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        c.insert(7, 100, "for-100".into());
        // Same fingerprint, different full key.
        assert_eq!(c.get(7, &200), None);
        assert_eq!(c.counters().misses, 1);
        // The colliding insert replaces the entry.
        c.insert(7, 200, "for-200".into());
        assert_eq!(c.get(7, &200), Some("for-200".into()));
        assert_eq!(c.get(7, &100), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1, 11);
        c.insert(2, 2, 22);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(c.get(1, &1), Some(11));
        c.insert(3, 3, 33);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2, &2), None, "LRU entry evicted");
        assert_eq!(c.get(1, &1), Some(11));
        assert_eq!(c.get(3, &3), Some(33));
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn invalidate_all_clears_and_counts() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 1, 1);
        c.insert(2, 2, 2);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.counters().invalidations, 2);
        assert_eq!(c.get(1, &1), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 1, 1);
        assert!(c.is_empty());
        assert_eq!(c.get(1, &1), None);
    }

    #[test]
    fn reinsert_same_key_updates_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1, 10);
        c.insert(1, 1, 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(1, &1), Some(20));
    }

    #[test]
    fn zero_ttl_expires_on_first_probe() {
        let mut c: LruCache<u32, u32> = LruCache::new(4).with_ttl(Some(Duration::ZERO));
        c.insert(1, 1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, &1), None, "already past its TTL");
        assert!(c.is_empty(), "expired entry evicted on probe");
        let n = c.counters();
        assert_eq!((n.misses, n.expirations, n.hits), (1, 1, 0));
        // Reinsertion works; the entry expires again on the next probe.
        c.insert(1, 1, 12);
        assert_eq!(c.get(1, &1), None);
        assert_eq!(c.counters().expirations, 2);
    }

    #[test]
    fn entries_survive_within_ttl_and_expire_after() {
        let mut c: LruCache<u32, u32> = LruCache::new(4).with_ttl(Some(Duration::from_millis(40)));
        c.insert(1, 1, 11);
        assert_eq!(c.get(1, &1), Some(11), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(c.get(1, &1), None, "aged out");
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.expirations), (1, 1, 1));
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        assert_eq!(c.ttl(), None);
        c.insert(1, 1, 11);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(c.get(1, &1), Some(11));
        assert_eq!(c.counters().expirations, 0);
    }

    #[test]
    fn expiry_does_not_shadow_collision_semantics() {
        // A fingerprint collision (different full key) is a plain miss even
        // under a zero TTL: the expiry path only fires for the *matching*
        // key, so collision counting stays truthful.
        let mut c: LruCache<u32, u32> = LruCache::new(4).with_ttl(Some(Duration::ZERO));
        c.insert(7, 100, 1);
        assert_eq!(c.get(7, &200), None);
        let n = c.counters();
        assert_eq!((n.misses, n.expirations), (1, 0));
        assert_eq!(c.len(), 1, "colliding probe does not evict");
    }

    #[test]
    fn hit_rate_reflects_lookups() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert_eq!(c.counters().hit_rate(), 0.0);
        c.insert(1, 1, 1);
        c.get(1, &1);
        c.get(2, &2);
        assert!((c.counters().hit_rate() - 0.5).abs() < 1e-12);
    }

    // ---- StripedLruCache: same semantics, interior locking ----

    #[test]
    fn striped_hit_after_insert_miss_before() {
        let c: StripedLruCache<u32, String> = StripedLruCache::new(4);
        assert_eq!(c.get(1, &10), None);
        c.insert(1, 10, "a".into());
        assert_eq!(c.get(1, &10), Some("a".into()));
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.insertions), (1, 1, 1));
        assert!(format!("{c:?}").contains("StripedLruCache"));
    }

    #[test]
    fn striped_collision_is_a_miss_not_a_wrong_value() {
        let c: StripedLruCache<u32, String> = StripedLruCache::new(4);
        c.insert(7, 100, "for-100".into());
        assert_eq!(c.get(7, &200), None);
        c.insert(7, 200, "for-200".into());
        assert_eq!(c.get(7, &200), Some("for-200".into()));
        assert_eq!(c.get(7, &100), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn striped_capacity_is_global_not_per_stripe() {
        // Capacity 2 with 8 stripes: a third insert must evict even though
        // every entry lives in a different stripe — the bound is on the
        // cache, not the segment.
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(2);
        c.insert(1, 1, 11);
        c.insert(2, 2, 22);
        assert_eq!(c.get(1, &1), Some(11)); // 2 becomes global LRU
        c.insert(3, 3, 33);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2, &2), None, "global LRU entry evicted");
        assert_eq!(c.get(1, &1), Some(11));
        assert_eq!(c.get(3, &3), Some(33));
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn striped_zero_capacity_disables_caching() {
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(0);
        c.insert(1, 1, 1);
        assert!(c.is_empty());
        assert_eq!(c.get(1, &1), None);
    }

    #[test]
    fn striped_zero_ttl_expires_on_first_probe() {
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(4).with_ttl(Some(Duration::ZERO));
        assert_eq!(c.ttl(), Some(Duration::ZERO));
        c.insert(1, 1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, &1), None, "already past its TTL");
        assert!(c.is_empty(), "expired entry evicted on probe");
        let n = c.counters();
        assert_eq!((n.misses, n.expirations, n.hits), (1, 1, 0));
    }

    #[test]
    fn striped_invalidate_all_clears_every_stripe() {
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(64);
        for i in 0..32 {
            c.insert(i, i as u32, i as u32);
        }
        assert_eq!(c.stripe_usage().iter().sum::<usize>(), 32);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.counters().invalidations, 32);
        assert!(c.stripe_usage().iter().all(|&n| n == 0));
    }

    #[test]
    fn striped_stripe_count_is_configurable() {
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(4).with_stripes(3);
        assert_eq!(c.stripes(), 4, "rounded to a power of two");
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(4).with_stripes(1);
        assert_eq!(c.stripes(), 1);
        c.insert(1, 1, 1);
        assert_eq!(c.get(1, &1), Some(1), "single stripe still works");
    }

    #[test]
    fn striped_lock_wait_histogram_counts_acquisitions() {
        let c: StripedLruCache<u32, u32> = StripedLruCache::new(4);
        let h = Arc::new(Histogram::new());
        c.install_lock_wait(Arc::clone(&h));
        c.install_lock_wait(Arc::new(Histogram::new())); // second install ignored
        c.insert(1, 1, 11); // 1 acquisition (under capacity: no rebalance locks)
        assert_eq!(c.get(1, &1), Some(11)); // 1 more
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn striped_churn_holds_capacity_and_counter_invariants() {
        // 8 threads of mixed get/insert over 64 keys against capacity 16:
        // constant cross-stripe eviction, yet every bound and counter
        // identity of the single-owner cache must hold afterwards.
        const CAPACITY: usize = 16;
        const THREADS: u64 = 8;
        const OPS: u64 = 400;
        let c: Arc<StripedLruCache<u64, u64>> = Arc::new(StripedLruCache::new(CAPACITY));
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let c = Arc::clone(&c);
                sc.spawn(move || {
                    // Disjoint per-thread keyspaces: a key is only ever
                    // inserted by its owner, so no insert is a same-key
                    // replacement and the entry-count identity below is
                    // exact. Eviction still crosses threads and stripes.
                    for op in 0..OPS {
                        let key = t * 8 + op % 8;
                        if c.get(key, &key).is_none() {
                            c.insert(key, key, key * 2);
                        }
                    }
                });
            }
        });
        let n = c.counters();
        assert_eq!(n.hits + n.misses, THREADS * OPS);
        assert_eq!(n.insertions, n.misses, "one insert per miss");
        assert!(n.evictions > 0, "capacity pressure must have evicted");
        assert!(c.len() <= CAPACITY, "{} > {CAPACITY}", c.len());
        // Entry count identity once all threads have joined: live =
        // inserted − evicted − expired − invalidated − replaced (none
        // here: keys are stable per fingerprint and there are no
        // collisions in this keyspace).
        assert_eq!(
            c.len() as u64,
            n.insertions - n.evictions - n.expirations - n.invalidations
        );
        assert_eq!(c.stripe_usage().iter().sum::<usize>(), c.len());
        // Surviving values are never torn — each maps to its own key.
        for key in 0..64u64 {
            if let Some(v) = c.get(key, &key) {
                assert_eq!(v, key * 2);
            }
        }
    }

    #[test]
    fn stripe_debug_matches_usage_and_reports_ages() {
        let c: StripedLruCache<u64, u64> = StripedLruCache::new(64);
        for key in 0..32u64 {
            c.insert(key, key, key);
        }
        let usage = c.stripe_usage();
        let debug = c.stripe_debug();
        assert_eq!(debug.len(), usage.len());
        for (n, (dn, oldest)) in usage.iter().zip(&debug) {
            assert_eq!(n, dn);
            assert_eq!(oldest.is_some(), *dn > 0, "{debug:?}");
        }
    }
}
