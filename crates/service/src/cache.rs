//! A dependency-free LRU cache with observability counters.
//!
//! The service keys entries by a 64-bit request [fingerprint]
//! (`koios_common::fingerprint`) but stores the *full* key alongside each
//! entry and verifies equality on lookup — a fingerprint collision is
//! reported as a miss (and the colliding insert replaces the entry), never
//! as a wrong result.
//!
//! Recency is tracked with a monotone tick and a `BTreeMap<tick, fp>`
//! index, giving `O(log n)` touch/insert/evict without unsafe pointer
//! juggling.
//!
//! Entries can carry a **TTL** ([`LruCache::with_ttl`]): each entry
//! remembers its insertion instant, and a probe that finds an entry older
//! than the TTL evicts it and reports a miss — the first half of the
//! ROADMAP "cache admission/TTL policies" item, bounding how stale a served
//! answer can be when the corpus changes out of band.
//!
//! [fingerprint]: koios_common::fingerprint::Fingerprinter

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Monotone counters describing cache behaviour since construction (or the
/// last [`LruCache::reset_counters`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint collision).
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries found past their TTL on probe (evicted, also counted as
    /// misses).
    pub expirations: u64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<K, V> {
    key: K,
    value: V,
    stamp: u64,
    created: Instant,
}

/// A least-recently-used map from `(fingerprint, full key)` to values,
/// optionally with a per-entry time-to-live.
pub struct LruCache<K, V> {
    map: HashMap<u64, Entry<K, V>>,
    recency: BTreeMap<u64, u64>, // stamp -> fingerprint, oldest first
    tick: u64,
    capacity: usize,
    ttl: Option<Duration>,
    counters: CacheCounters,
}

impl<K: Eq, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries; `capacity == 0` disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            recency: BTreeMap::new(),
            tick: 0,
            capacity,
            ttl: None,
            counters: CacheCounters::default(),
        }
    }

    /// Sets a time-to-live: probes evict (and miss on) entries inserted
    /// more than `ttl` ago. `None` restores the default — entries live
    /// until displaced or invalidated.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }

    /// The configured time-to-live, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters since construction or the last reset.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Zeroes the counters (entries are kept).
    pub fn reset_counters(&mut self) {
        self.counters = CacheCounters::default();
    }

    /// Looks up `key` under `fp`, refreshing its recency on a hit. An entry
    /// past the configured TTL is evicted and reported as a miss — the
    /// probe is the eviction point, so an idle cache holds expired entries
    /// only until someone asks for them (or capacity displaces them).
    pub fn get(&mut self, fp: u64, key: &K) -> Option<V> {
        let expired = matches!(
            (self.map.get(&fp), self.ttl),
            (Some(entry), Some(ttl)) if entry.key == *key && entry.created.elapsed() >= ttl
        );
        if expired {
            let old = self.map.remove(&fp).expect("checked above");
            self.recency.remove(&old.stamp);
            self.counters.expirations += 1;
            self.counters.misses += 1;
            return None;
        }
        let tick = &mut self.tick;
        match self.map.get_mut(&fp) {
            Some(entry) if entry.key == *key => {
                self.recency.remove(&entry.stamp);
                *tick += 1;
                entry.stamp = *tick;
                self.recency.insert(entry.stamp, fp);
                self.counters.hits += 1;
                Some(entry.value.clone())
            }
            _ => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `(fp, key)`, evicting the least-recently-used
    /// entry when full. An insert with the same fingerprint (same key or a
    /// collision) replaces the existing entry in place.
    pub fn insert(&mut self, fp: u64, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let stamp = self.tick;
        let created = Instant::now();
        let entry = Entry {
            key,
            value,
            stamp,
            created,
        };
        if let Some(old) = self.map.insert(fp, entry) {
            self.recency.remove(&old.stamp);
        } else if self.map.len() > self.capacity {
            if let Some((&oldest, &victim)) = self.recency.iter().next() {
                self.recency.remove(&oldest);
                self.map.remove(&victim);
                self.counters.evictions += 1;
            }
        }
        self.recency.insert(stamp, fp);
        self.counters.insertions += 1;
    }

    /// Drops every entry (e.g. after the underlying repository or
    /// similarity model changed).
    pub fn invalidate_all(&mut self) {
        self.counters.invalidations += self.map.len() as u64;
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        assert_eq!(c.get(1, &10), None);
        c.insert(1, 10, "a".into());
        assert_eq!(c.get(1, &10), Some("a".into()));
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.insertions), (1, 1, 1));
    }

    #[test]
    fn fingerprint_collision_is_a_miss_not_a_wrong_value() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        c.insert(7, 100, "for-100".into());
        // Same fingerprint, different full key.
        assert_eq!(c.get(7, &200), None);
        assert_eq!(c.counters().misses, 1);
        // The colliding insert replaces the entry.
        c.insert(7, 200, "for-200".into());
        assert_eq!(c.get(7, &200), Some("for-200".into()));
        assert_eq!(c.get(7, &100), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1, 11);
        c.insert(2, 2, 22);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(c.get(1, &1), Some(11));
        c.insert(3, 3, 33);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2, &2), None, "LRU entry evicted");
        assert_eq!(c.get(1, &1), Some(11));
        assert_eq!(c.get(3, &3), Some(33));
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn invalidate_all_clears_and_counts() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 1, 1);
        c.insert(2, 2, 2);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.counters().invalidations, 2);
        assert_eq!(c.get(1, &1), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 1, 1);
        assert!(c.is_empty());
        assert_eq!(c.get(1, &1), None);
    }

    #[test]
    fn reinsert_same_key_updates_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1, 10);
        c.insert(1, 1, 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(1, &1), Some(20));
    }

    #[test]
    fn zero_ttl_expires_on_first_probe() {
        let mut c: LruCache<u32, u32> = LruCache::new(4).with_ttl(Some(Duration::ZERO));
        c.insert(1, 1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, &1), None, "already past its TTL");
        assert!(c.is_empty(), "expired entry evicted on probe");
        let n = c.counters();
        assert_eq!((n.misses, n.expirations, n.hits), (1, 1, 0));
        // Reinsertion works; the entry expires again on the next probe.
        c.insert(1, 1, 12);
        assert_eq!(c.get(1, &1), None);
        assert_eq!(c.counters().expirations, 2);
    }

    #[test]
    fn entries_survive_within_ttl_and_expire_after() {
        let mut c: LruCache<u32, u32> = LruCache::new(4).with_ttl(Some(Duration::from_millis(40)));
        c.insert(1, 1, 11);
        assert_eq!(c.get(1, &1), Some(11), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(c.get(1, &1), None, "aged out");
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.expirations), (1, 1, 1));
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        assert_eq!(c.ttl(), None);
        c.insert(1, 1, 11);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(c.get(1, &1), Some(11));
        assert_eq!(c.counters().expirations, 0);
    }

    #[test]
    fn expiry_does_not_shadow_collision_semantics() {
        // A fingerprint collision (different full key) is a plain miss even
        // under a zero TTL: the expiry path only fires for the *matching*
        // key, so collision counting stays truthful.
        let mut c: LruCache<u32, u32> = LruCache::new(4).with_ttl(Some(Duration::ZERO));
        c.insert(7, 100, 1);
        assert_eq!(c.get(7, &200), None);
        let n = c.counters();
        assert_eq!((n.misses, n.expirations), (1, 0));
        assert_eq!(c.len(), 1, "colliding probe does not evict");
    }

    #[test]
    fn hit_rate_reflects_lookups() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert_eq!(c.counters().hit_rate(), 0.0);
        c.insert(1, 1, 1);
        c.get(1, &1);
        c.get(2, &2);
        assert!((c.counters().hit_rate() - 0.5).abs() < 1e-12);
    }
}
