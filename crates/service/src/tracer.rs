//! Request-trace assembly for the service layer.
//!
//! The engine crates stay telemetry-free (the PR 6 rule): the service
//! translates what it already measures — queue wait, cache probes, the
//! [`SearchStats`] timing seams, mutation epochs — into the span trees of
//! [`koios_telemetry::trace`]. One [`Tracer`] per service owns the shared
//! [`TraceSink`]; each request builds its tree in a worker-owned
//! [`TraceBuilder`] (no locks on the hot path) and offers it to the sink
//! on completion, where tail-based sampling decides retention.

use koios_common::fingerprint::Fingerprinter;
use koios_core::SearchStats;
use koios_telemetry::trace::{
    mint_id, TraceBuilder, TraceConfig, TraceContext, TraceSink, TraceSinkStats,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Per-service trace recorder: mints trace ids, starts builders, and owns
/// the retention ring.
#[derive(Debug)]
pub struct Tracer {
    sink: Arc<TraceSink>,
    // Id seed: fingerprint of the construction wall clock, so two services
    // in one process (or across restarts) mint disjoint id streams.
    seed: u64,
    next: AtomicU64,
}

impl Tracer {
    /// Builds the recorder. `slow_threshold` (the slow-query-log
    /// threshold) becomes a retention rule unless the policy already
    /// carries one, keeping every slow-log line joinable against
    /// `GET /traces`.
    pub fn new(mut cfg: TraceConfig, slow_threshold: Option<Duration>) -> Self {
        if cfg.policy.slow_threshold.is_none() {
            cfg.policy.slow_threshold = slow_threshold;
        }
        let mut fp = Fingerprinter::new();
        let now = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap_or_default();
        fp.write_u64(now.as_nanos() as u64);
        fp.write_u64(cfg.policy.seed);
        Tracer {
            sink: Arc::new(TraceSink::new(cfg.capacity, cfg.policy)),
            seed: fp.finish(),
            next: AtomicU64::new(1),
        }
    }

    /// Mints a fresh non-zero trace id (fingerprint machinery: seed ×
    /// monotone sequence through the FNV/splitmix mixer).
    pub fn mint_trace_id(&self) -> u64 {
        mint_id(self.seed, self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts a request trace at `started` (the submission instant, so the
    /// queue span begins at offset zero). A wire-propagated context keeps
    /// the remote caller's trace id and parent span; its `sampled` flag
    /// force-retains the trace.
    pub fn begin(&self, ctx: Option<TraceContext>, started: Instant) -> TraceBuilder {
        match ctx {
            Some(c) => TraceBuilder::new(c.trace_id, c.parent_span, c.sampled, started),
            None => TraceBuilder::new(self.mint_trace_id(), 0, false, started),
        }
    }

    /// Seals a request tree and offers it to the sink; returns the trace
    /// id for the response.
    pub fn finish(
        &self,
        builder: TraceBuilder,
        total: Duration,
        timed_out: bool,
        rejected: bool,
    ) -> u64 {
        let id = builder.trace_id();
        self.sink.offer(builder.finish(total, timed_out, rejected));
        id
    }

    /// Records a mutation (`ingest`/`snapshot`/`reload`) as a single-span
    /// trace stamped with the epoch it published. Mutations are rare and
    /// operationally interesting, so they are always retained (forced).
    pub fn record_mutation(
        &self,
        op: &'static str,
        epoch: u64,
        started: Instant,
        duration: Duration,
    ) -> u64 {
        let mut tb = TraceBuilder::new(self.mint_trace_id(), 0, true, started);
        let root = tb.root();
        tb.add_detail(op, root, 0, duration.as_nanos() as u64, None, None, epoch);
        tb.set_epoch(epoch);
        self.finish(tb, duration, false, false)
    }

    /// The retention ring (lookups, listing, late spans).
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Sink lifetime counters.
    pub fn stats(&self) -> TraceSinkStats {
        self.sink.stats()
    }
}

/// Synthesizes the search sub-tree of a request trace from the
/// [`SearchStats`] timing seams: an `executor` span covering the shard
/// batch (submission → last partial back), one `shard` span per
/// partition, the `refine`/`postprocess`/`verify`/`merge` stage spans, and
/// a `cache.token` span summarizing the shared kNN cache's outcome.
///
/// Stage *durations* are the engine's own measurements; stage *offsets*
/// are reconstructed (refine precedes post-processing in the single-engine
/// pipeline; partitioned stage times are parallel maxima across shards),
/// so overlapping spans within the search window are expected for
/// partitioned queries.
pub fn record_search_spans(
    tb: &mut TraceBuilder,
    stats: &SearchStats,
    start_ns: u64,
    search_ns: u64,
) {
    let root = tb.root();
    let search = tb.add_detail("search", root, start_ns, search_ns, None, None, stats.epoch);
    let parent = if search == 0 { root } else { search };

    let knn = &stats.knn_cache;
    if knn.hits + knn.misses > 0 {
        let outcome = if knn.misses == 0 {
            "hit"
        } else if knn.hits == 0 {
            "miss"
        } else {
            "mixed"
        };
        tb.add_detail("cache.token", parent, start_ns, 0, None, Some(outcome), 0);
    }

    if !stats.shard_times.is_empty() {
        let exec_ns = stats.executor_time.as_nanos() as u64;
        let exec = tb.add("executor", parent, start_ns, exec_ns);
        let exec_parent = if exec == 0 { parent } else { exec };
        for (i, t) in stats.shard_times.iter().enumerate() {
            tb.add_detail(
                "shard",
                exec_parent,
                start_ns,
                t.as_nanos() as u64,
                Some(i as u32),
                None,
                0,
            );
        }
    }

    let refine_ns = stats.refine_time.as_nanos() as u64;
    let post_ns = stats.postprocess_time.as_nanos() as u64;
    let verify_ns = stats.verify_time.as_nanos() as u64;
    let merge_ns = stats.merge_time.as_nanos() as u64;
    let mut cursor = start_ns;
    if refine_ns > 0 {
        tb.add("refine", parent, cursor, refine_ns);
        cursor += refine_ns;
    }
    if post_ns > 0 || verify_ns > 0 {
        let post = tb.add("postprocess", parent, cursor, post_ns);
        let post_parent = if post == 0 { parent } else { post };
        if verify_ns > 0 {
            tb.add("verify", post_parent, cursor, verify_ns);
        }
    }
    if merge_ns > 0 {
        let merge_start = (start_ns + search_ns).saturating_sub(merge_ns);
        tb.add("merge", parent, merge_start, merge_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koios_telemetry::trace::SamplingPolicy;

    fn tracer() -> Tracer {
        Tracer::new(
            TraceConfig {
                capacity: 32,
                policy: SamplingPolicy {
                    probability: 1.0,
                    top_percent: 0.0,
                    seed: 7,
                    slow_threshold: None,
                },
            },
            None,
        )
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let t = tracer();
        let a = t.mint_trace_id();
        let b = t.mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn search_spans_cover_the_partitioned_pipeline() {
        let t = tracer();
        let mut tb = t.begin(None, Instant::now());
        let root = tb.root();
        tb.add("queue", root, 0, 1_000);
        let stats = SearchStats {
            refine_time: Duration::from_millis(5),
            postprocess_time: Duration::from_millis(2),
            verify_time: Duration::from_millis(1),
            merge_time: Duration::from_millis(1),
            executor_time: Duration::from_millis(6),
            shard_times: vec![Duration::from_millis(6), Duration::from_millis(4)],
            epoch: 3,
            ..SearchStats::default()
        };
        record_search_spans(&mut tb, &stats, 1_000, 9_000_000);
        let id = t.finish(tb, Duration::from_millis(9), false, false);
        let trace = t.sink().get(id).expect("probability 1.0 retains");
        assert!(trace.well_formed());
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        for expect in [
            "request",
            "queue",
            "search",
            "executor",
            "shard",
            "refine",
            "postprocess",
            "verify",
            "merge",
        ] {
            assert!(names.contains(&expect), "missing span {expect}: {names:?}");
        }
        let shards: Vec<u32> = trace.spans.iter().filter_map(|s| s.shard).collect();
        assert_eq!(shards, vec![0, 1]);
        assert_eq!(
            trace
                .spans
                .iter()
                .find(|s| s.name == "search")
                .unwrap()
                .epoch,
            3
        );
    }

    #[test]
    fn mutation_traces_are_forced_and_epoch_stamped() {
        let t = tracer();
        let id = t.record_mutation("ingest", 9, Instant::now(), Duration::from_millis(2));
        let trace = t.sink().get(id).unwrap();
        assert!(trace.forced);
        assert_eq!(trace.spans[0].epoch, 9);
        assert_eq!(trace.spans[1].name, "ingest");
        assert_eq!(trace.spans[1].epoch, 9);
    }
}
