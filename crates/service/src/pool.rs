//! A persistent worker pool with an MPMC submission queue.
//!
//! The first serving layer drained each batch with a fresh
//! `std::thread::scope` pool, which meant (a) thread spawn/join cost on
//! every batch, (b) no way to *submit* work and await it later, and (c) no
//! cross-batch sharing of the pool — two concurrent `search_batch` calls
//! each spun up their own threads. This module replaces that with
//! long-lived workers draining one hand-rolled MPMC queue
//! (`Mutex<VecDeque>` + [`Condvar`]; crates.io — and therefore crossbeam —
//! is unreachable here):
//!
//! * [`WorkerPool::submit`] enqueues a closure and returns a [`Ticket`], a
//!   futures-style handle filled exactly once by whichever worker runs the
//!   job. Callers submit-then-await; [`Ticket::wait`] blocks, and
//!   [`Ticket::is_ready`] polls.
//! * Submission order is completion-assignment order: workers pop from the
//!   queue front, so the queue is FIFO-fair across submitters.
//! * **Graceful shutdown**: dropping the pool (or calling
//!   [`WorkerPool::shutdown`]) stops *intake* and wakes every worker, but
//!   workers drain the queue before exiting — every ticket issued before
//!   shutdown resolves. Tickets hold their slot independently of the pool,
//!   so they may outlive it.
//! * **Panic containment**: a job's unwind is caught at the job boundary
//!   and re-raised by [`Ticket::wait`] on the waiting thread (the same
//!   observable behaviour as the scoped pool it replaces) — it can neither
//!   kill the worker nor leave a ticket permanently unfilled.
//!
//! The pool is job-agnostic (`FnOnce() -> T` per submission); the service
//! layers its request lifecycle on top and keeps the admission-control,
//! deadline and cache semantics in `service.rs`.

use koios_telemetry::{Gauge, Histogram};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue observability handles ([`WorkerPool::new_instrumented`]): the
/// depth gauge moves on submit/dequeue, the wait histogram records each
/// job's submit→dequeue time. Both are plain relaxed atomics, so the
/// queue's mutex hold times are unchanged.
#[derive(Clone)]
pub struct PoolInstruments {
    /// Jobs submitted but not yet picked up (`koios_queue_depth`).
    pub depth: Arc<Gauge>,
    /// Submit→dequeue wait per job (`koios_queue_wait_seconds`).
    pub wait: Arc<Histogram>,
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signaled on every submit and on shutdown.
    ready: Condvar,
}

/// What a worker deposited: the job's return value, or the panic payload
/// it unwound with (re-raised at the waiter, like the old scoped pool).
type JobResult<T> = std::thread::Result<T>;

/// The write-once rendezvous between a worker and the ticket holder.
struct Slot<T> {
    value: Mutex<Option<JobResult<T>>>,
    filled: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            value: Mutex::new(None),
            filled: Condvar::new(),
        }
    }

    fn fill(&self, value: JobResult<T>) {
        let mut guard = self.value.lock().expect("slot lock");
        debug_assert!(guard.is_none(), "a slot is filled exactly once");
        *guard = Some(value);
        self.filled.notify_all();
    }
}

fn unwrap_result<T>(result: JobResult<T>) -> T {
    match result {
        Ok(v) => v,
        // Re-raise the job's panic on the waiting thread — the same
        // observable behaviour as the old per-batch `std::thread::scope`
        // pool, where a worker panic propagated to the batch caller.
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// A handle to one submitted job's eventual result.
///
/// Obtained from [`WorkerPool::submit`]; redeem it with [`Ticket::wait`].
/// The ticket owns its result slot, so it stays redeemable even after the
/// pool that issued it shut down (shutdown drains the queue first). If the
/// job panicked, `wait` re-raises that panic on the waiting thread; the
/// worker itself survives (the unwind is caught at the job boundary).
#[must_use = "a ticket holds the job's only result; wait on it"]
pub struct Ticket<T> {
    slot: Arc<Slot<T>>,
}

impl<T> Ticket<T> {
    /// A ticket that is already resolved (used when work ran inline, e.g.
    /// because the pool had shut down).
    pub fn ready(value: T) -> Self {
        let slot = Slot::new();
        *slot.value.lock().expect("slot lock") = Some(Ok(value));
        Ticket {
            slot: Arc::new(slot),
        }
    }

    /// Blocks until the job has run and returns its result (re-raising the
    /// job's panic, if it panicked).
    pub fn wait(self) -> T {
        let mut guard = self.slot.value.lock().expect("slot lock");
        loop {
            match guard.take() {
                Some(result) => {
                    drop(guard);
                    return unwrap_result(result);
                }
                None => guard = self.slot.filled.wait(guard).expect("slot lock"),
            }
        }
    }

    /// Blocks up to `timeout`; `Err(self)` gives the ticket back untouched
    /// when the job has not finished in time. Robust against spurious
    /// condvar wakeups: the full `timeout` must really elapse before the
    /// ticket is returned unredeemed.
    pub fn wait_timeout(self, timeout: Duration) -> Result<T, Ticket<T>> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.slot.value.lock().expect("slot lock");
        loop {
            if let Some(result) = guard.take() {
                drop(guard);
                return Ok(unwrap_result(result));
            }
            let now = Instant::now();
            if now >= deadline {
                drop(guard);
                return Err(self);
            }
            let (next, _) = self
                .slot
                .filled
                .wait_timeout(guard, deadline - now)
                .expect("slot lock");
            guard = next;
        }
    }

    /// Whether [`Ticket::wait`] would return without blocking.
    pub fn is_ready(&self) -> bool {
        self.slot.value.lock().expect("slot lock").is_some()
    }
}

/// A fixed-width pool of long-lived worker threads over one FIFO queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    instruments: Option<PoolInstruments>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) threads that immediately start
    /// draining the queue.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, None)
    }

    /// [`WorkerPool::new`] with queue observability: every submit bumps
    /// `instruments.depth`, every dequeue decrements it and records the
    /// job's queue wait into `instruments.wait`.
    pub fn new_instrumented(workers: usize, instruments: PoolInstruments) -> Self {
        Self::build(workers, Some(instruments))
    }

    fn build(workers: usize, instruments: Option<PoolInstruments>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            instruments,
        }
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut q = shared.queue.lock().expect("queue lock");
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return; // queue drained and intake closed
                    }
                    q = shared.ready.wait(q).expect("queue lock");
                }
            };
            job(); // run outside the queue lock
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The number of worker threads still running (a worker that panicked
    /// out of its loop stops counting — the `/healthz?full` liveness
    /// signal).
    pub fn live_workers(&self) -> usize {
        self.handles.iter().filter(|h| !h.is_finished()).count()
    }

    /// Jobs submitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").jobs.len()
    }

    /// Enqueues `job` and returns the ticket for its result.
    ///
    /// After [`WorkerPool::shutdown`] the job is rejected: it is returned
    /// inside `Err` so the caller can run it inline or drop it — a silently
    /// never-resolving ticket would deadlock its holder.
    pub fn submit<T, F>(&self, job: F) -> Result<Ticket<T>, F>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(Slot::new());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            if q.shutdown {
                return Err(job);
            }
            // The unwind is caught at the job boundary so a panicking job
            // can neither kill its worker nor leave its ticket unfilled
            // (which would deadlock the waiter); the payload is re-raised
            // by `Ticket::wait`.
            let run = move || slot.fill(std::panic::catch_unwind(AssertUnwindSafe(job)));
            match &self.instruments {
                None => q.jobs.push_back(Box::new(run)),
                Some(ins) => {
                    // Incremented after the shutdown check, so rejected
                    // jobs never count; decremented when a worker starts
                    // the job, so depth tracks *waiting* jobs only.
                    ins.depth.inc();
                    let depth = Arc::clone(&ins.depth);
                    let wait = Arc::clone(&ins.wait);
                    let enqueued = Instant::now();
                    q.jobs.push_back(Box::new(move || {
                        depth.dec();
                        wait.record_duration(enqueued.elapsed());
                        run();
                    }));
                }
            }
        }
        self.shared.ready.notify_one();
        Ok(ticket)
    }

    /// Closes intake, wakes every worker, and joins them after they drain
    /// the queue. Every ticket issued before this call resolves. Idempotent
    /// (also invoked by `Drop`).
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn submit_then_wait_returns_the_result() {
        let pool = WorkerPool::new(2);
        let t = pool.submit(|| 6 * 7).ok().expect("pool accepting");
        assert_eq!(t.wait(), 42);
    }

    #[test]
    fn many_jobs_all_resolve_on_few_workers() {
        let pool = WorkerPool::new(3);
        let tickets: Vec<_> = (0..64)
            .map(|i| pool.submit(move || i * i).ok().expect("accepting"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), i * i);
        }
    }

    #[test]
    fn zero_workers_still_runs_on_one_thread() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.submit(|| 1).ok().expect("accepting").wait(), 1);
    }

    #[test]
    fn concurrent_submitters_race_one_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let ran = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|sc| {
            for s in 0..8 {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                sc.spawn(move || {
                    let tickets: Vec<_> = (0..16)
                        .map(|i| {
                            let ran = Arc::clone(&ran);
                            pool.submit(move || {
                                ran.fetch_add(1, Ordering::Relaxed);
                                s * 100 + i
                            })
                            .ok()
                            .expect("accepting")
                        })
                        .collect();
                    for (i, t) in tickets.into_iter().enumerate() {
                        assert_eq!(t.wait(), s * 100 + i);
                    }
                });
            }
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn shutdown_drains_pending_tickets() {
        let mut pool = WorkerPool::new(1);
        let slow = pool
            .submit(|| {
                std::thread::sleep(Duration::from_millis(30));
                0usize
            })
            .ok()
            .expect("accepting");
        // These queue up behind the sleeper on the single worker.
        let tickets: Vec<_> = (1..8)
            .map(|i| pool.submit(move || i).ok().expect("accepting"))
            .collect();
        pool.shutdown();
        assert_eq!(slow.wait(), 0);
        for (i, t) in tickets.into_iter().enumerate() {
            assert!(t.is_ready(), "shutdown drained every queued job");
            assert_eq!(t.wait(), i + 1);
        }
    }

    #[test]
    fn submit_after_shutdown_returns_the_job() {
        let mut pool = WorkerPool::new(1);
        pool.shutdown();
        match pool.submit(|| 9) {
            Err(job) => assert_eq!(job(), 9, "caller can run it inline"),
            Ok(_) => panic!("intake must be closed"),
        }
    }

    #[test]
    fn wait_timeout_returns_ticket_then_result() {
        let pool = WorkerPool::new(1);
        let t = pool
            .submit(|| {
                std::thread::sleep(Duration::from_millis(50));
                7
            })
            .ok()
            .expect("accepting");
        let t = match t.wait_timeout(Duration::from_millis(1)) {
            Err(t) => t,
            Ok(_) => return, // absurdly slow scheduler; nothing to assert
        };
        assert_eq!(t.wait(), 7);
    }

    #[test]
    fn panicking_job_propagates_to_waiter_and_pool_survives() {
        let pool = WorkerPool::new(1);
        let boom = pool
            .submit(|| -> usize { panic!("job blew up") })
            .ok()
            .expect("accepting");
        // Queued behind the panicking job on the same single worker: if the
        // panic killed the worker, this would never resolve.
        let after = pool.submit(|| 5).ok().expect("accepting");
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| boom.wait()));
        let payload = caught.expect_err("panic re-raised at the waiter");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("job blew up"));
        assert_eq!(after.wait(), 5, "worker survived the panic");
    }

    #[test]
    fn instrumented_pool_tracks_depth_and_wait() {
        let depth = Arc::new(Gauge::new());
        let wait = Arc::new(Histogram::new());
        let pool = WorkerPool::new_instrumented(
            1,
            PoolInstruments {
                depth: Arc::clone(&depth),
                wait: Arc::clone(&wait),
            },
        );
        // Park the single worker so the next jobs measurably queue.
        let (release, gate) = std::sync::mpsc::channel::<()>();
        let parked = pool
            .submit(move || gate.recv().expect("release signal"))
            .ok()
            .expect("accepting");
        // Wait until the worker picked the parked job up (depth back to 0).
        while depth.get() != 0 {
            std::thread::yield_now();
        }
        let queued: Vec<_> = (0..3)
            .map(|i| pool.submit(move || i).ok().expect("accepting"))
            .collect();
        assert_eq!(depth.get(), 3, "three jobs wait behind the parked one");
        release.send(()).unwrap();
        parked.wait();
        for (i, t) in queued.into_iter().enumerate() {
            assert_eq!(t.wait(), i);
        }
        assert_eq!(depth.get(), 0, "every dequeue decremented");
        let snap = wait.snapshot();
        assert_eq!(snap.count(), 4, "every job recorded its queue wait");
        assert!(snap.max_ns > 0);
    }

    #[test]
    fn drop_joins_workers() {
        let ran = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<_> = {
            let pool = WorkerPool::new(2);
            (0..10)
                .map(|_| {
                    let ran = Arc::clone(&ran);
                    pool.submit(move || ran.fetch_add(1, Ordering::Relaxed))
                        .ok()
                        .expect("accepting")
                })
                .collect()
            // pool drops here: drains, joins
        };
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        for t in tickets {
            assert!(t.is_ready(), "tickets outlive the pool, resolved");
            t.wait();
        }
    }
}
