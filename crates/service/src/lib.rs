//! Concurrent query serving for Koios.
//!
//! The paper (ICDE 2023) evaluates single-query latency; a production
//! deployment instead serves a *stream* of queries against one corpus. The
//! expensive parts of a Koios search setup — building the inverted index,
//! wiring the similarity function — are query-independent, and the
//! filter–verification pipeline repeats most of its work across similar
//! queries. This crate amortizes both:
//!
//! * **Owned engine backends** — [`SearchService`] holds an
//!   [`EngineBackend`](koios_core::EngineBackend): a single
//!   [`Koios<'static>`](koios_core::OwnedKoios) or a sharded
//!   [`PartitionedKoios<'static>`](koios_core::OwnedPartitionedKoios)
//!   (paper §VI: per-shard indexes searched in parallel under one shared
//!   monotone `θlb`), built over an `Arc<Repository>` (see
//!   [`koios_embed::repository::RepoRef`]), so the service has no borrowed
//!   lifetime and can live for the process duration, shared across
//!   threads. Routing is backend-transparent: identical queries produce
//!   identical scores and identical cache keys on either variant, and
//!   per-request deadlines bound every shard *and* the partitioned
//!   merge-verification loop.
//! * **A persistent worker pool with a submission queue** —
//!   [`pool::WorkerPool`] keeps a fixed set of long-lived threads draining
//!   one hand-rolled MPMC queue (`Mutex<VecDeque>` + `Condvar`).
//!   [`SearchService::submit`] enqueues a single request and returns a
//!   [`ResponseHandle`] to await later; [`SearchService::search_batch`] is
//!   a thin submit-all/await-all wrapper that returns responses in
//!   submission order (each lands in its own ticket slot — no re-sort).
//!   Per-request deadlines cover queue *and* search time; requests whose
//!   deadline lapses before pickup are rejected unrun (admission control).
//!   Shutdown drains: every handle issued before [`SearchService::shutdown`]
//!   (or drop) resolves.
//! * **An LRU result cache** — keyed by a stable 64-bit fingerprint of the
//!   normalized query tokens and every result-affecting parameter
//!   (`k`, `α`, UB mode, filter toggles), with hit/miss/eviction counters
//!   and explicit invalidation. Collisions are detected by full-key
//!   comparison and served as misses, never as wrong results.
//! * **A shared token-level kNN cache** — one
//!   [`koios_index::knn_cache::TokenKnnCache`] installed into the engine
//!   configuration so *overlapping* (not just identical) queries reuse
//!   complete per-element similarity lists; invalidated together with the
//!   result cache via a generation bump
//!   ([`SearchService::invalidate_cache`]).
//!
//! Observability is first-class: [`ServiceStats`] aggregates the engine's
//! per-query [`koios_core::SearchStats`] across the service lifetime next
//! to cache and admission counters, and a `koios-telemetry` registry
//! ([`metrics::ServiceMetrics`]) tracks latency *distributions* the folded
//! stats cannot express — per-stage histograms (`refine`/`verify`/
//! `postprocess`/`merge`, matching the paper's pipeline names), per-shard
//! search time, pool queue depth and queue wait, cache mutex lock-wait,
//! and the request's queue/search/serialize phase split. Scrape it with
//! [`SearchService::render_metrics`] (Prometheus text format; served as
//! `GET /metrics` by `koios-net`), and catch outliers with the structured
//! slow-query log ([`slowlog::SlowQueryLog`]): one JSON line per request
//! over a configurable latency threshold, through a pluggable sink.
//!
//! Every request also records a **span tree** ([`tracer::Tracer`] over
//! [`koios_telemetry::trace`]): queue wait, cache probes, the executor
//! batch with per-shard spans, the refine/verify/merge stage breakdown,
//! and — for live mutations — epoch-stamped ingest/snapshot/reload spans.
//! A fixed ring retains the interesting tail (timeouts, rejections, slow
//! and top-percentile requests, plus a deterministic sample), browsable
//! via [`SearchService::traces`] / `GET /traces`, with slow-log lines and
//! `/metrics` exemplars carrying the joinable `trace_id`.

pub mod cache;
pub mod metrics;
pub mod pool;
pub mod request;
pub mod service;
pub mod slowlog;
pub mod stats;
pub mod tracer;

pub use cache::{CacheCounters, LruCache, StripedLruCache};
pub use metrics::ServiceMetrics;
pub use pool::{PoolInstruments, Ticket, WorkerPool};
pub use request::{CacheKey, CacheOutcome, SearchRequest, ServiceResponse};
pub use service::{IngestOutcome, LiveServiceError, ResponseHandle, SearchService, ServiceConfig};
pub use slowlog::{SlowQueryLog, SlowQuerySink};
pub use stats::{ServiceStats, SnapshotInfo};
pub use tracer::Tracer;
