//! Structured slow-query logging.
//!
//! Requests whose end-to-end latency (queue + search) crosses a
//! configurable threshold emit **one JSON line** through a pluggable sink:
//! the request fingerprint (the same hex form operators see in cache keys,
//! [`koios_common::fingerprint::hex`]), the effective `k`/`α`, the
//! per-stage nanosecond breakdown, the cache outcome, and — for
//! partitioned backends — the per-shard split. One line per offending
//! query keeps the log greppable and the hot path allocation-free until a
//! query actually crosses the threshold.
//!
//! Sinks are plain `Fn(&str)` closures behind an `Arc`, so tests collect
//! into a `Mutex<Vec<String>>`, servers append to a file
//! ([`SlowQueryLog::to_file`]), and CI ships the file as an artifact.

use crate::request::CacheOutcome;
use koios_common::fingerprint;
use koios_core::SearchStats;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where slow-query lines go. Called once per offending query with one
/// complete JSON line (no trailing newline).
pub type SlowQuerySink = Arc<dyn Fn(&str) + Send + Sync>;

/// Threshold + sink pair installed via
/// [`crate::ServiceConfig::with_slow_query_log`].
#[derive(Clone)]
pub struct SlowQueryLog {
    threshold: Duration,
    sink: SlowQuerySink,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("threshold", &self.threshold)
            .field("sink", &"<fn>")
            .finish()
    }
}

impl SlowQueryLog {
    /// Logs queries slower than `threshold` through `sink`.
    pub fn new(threshold: Duration, sink: SlowQuerySink) -> Self {
        SlowQueryLog { threshold, sink }
    }

    /// Appends lines to the file at `path` (created if missing), fsync-free
    /// — the OS flushes; a crash loses at most the tail of a diagnostic
    /// log. Writes are serialized by an internal mutex.
    pub fn to_file(threshold: Duration, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let file = Mutex::new(file);
        Ok(Self::new(
            threshold,
            Arc::new(move |line| {
                let mut f = file.lock().expect("slow-query log file lock");
                let _ = writeln!(f, "{line}");
            }),
        ))
    }

    /// Logs to standard error (one line per slow query).
    pub fn to_stderr(threshold: Duration) -> Self {
        Self::new(threshold, Arc::new(|line| eprintln!("{line}")))
    }

    /// The configured latency threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Emits one line if the record's total latency crosses the threshold.
    pub(crate) fn observe(&self, record: &SlowQueryRecord<'_>) {
        if record.queue + record.search >= self.threshold {
            (self.sink)(&record.render());
        }
    }
}

/// Everything one slow-query line reports. Borrowed from the request path
/// — building the record is free; JSON rendering happens only past the
/// threshold.
pub(crate) struct SlowQueryRecord<'a> {
    pub fingerprint: u64,
    pub k: usize,
    pub alpha: f64,
    /// Corpus epoch of the backend that served (or would have served) the
    /// request, so slow queries are attributable to a corpus version even
    /// after later live mutations.
    pub epoch: u64,
    pub queue: Duration,
    pub search: Duration,
    pub cache: CacheOutcome,
    /// Id of the request's span tree (`None` when tracing is disabled).
    /// Slow traces are always retained by the tail sampler, so the line is
    /// joinable against `GET /traces?id=…`.
    pub trace_id: Option<u64>,
    /// Span-tree depth recorded so far (0 when tracing is disabled) —
    /// operators can tell a full partitioned tree from a flat cache-hit
    /// trace before fetching it.
    pub trace_depth: usize,
    /// `None` for cache hits (no engine work happened).
    pub stats: Option<&'a SearchStats>,
}

impl SlowQueryRecord<'_> {
    fn render(&self) -> String {
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"fingerprint\":\"{}\",\"k\":{},\"alpha\":{},\"epoch\":{},\"total_ns\":{},\
             \"queue_ns\":{},\"search_ns\":{},\"cache\":\"{}\"",
            fingerprint::hex(self.fingerprint),
            self.k,
            self.alpha,
            self.epoch,
            (self.queue + self.search).as_nanos(),
            self.queue.as_nanos(),
            self.search.as_nanos(),
            match self.cache {
                CacheOutcome::Hit => "hit",
                CacheOutcome::Miss => "miss",
                CacheOutcome::Bypassed => "bypassed",
                CacheOutcome::Rejected => "rejected",
            },
        );
        if let Some(trace_id) = self.trace_id {
            let _ = write!(
                line,
                ",\"trace_id\":\"{}\",\"trace_depth\":{}",
                fingerprint::hex(trace_id),
                self.trace_depth,
            );
        }
        if let Some(stats) = self.stats {
            let _ = write!(
                line,
                ",\"refine_ns\":{},\"postprocess_ns\":{},\"verify_ns\":{},\"merge_ns\":{},\
                 \"knn_cache_hits\":{},\"knn_cache_misses\":{},\"timed_out\":{}",
                stats.refine_time.as_nanos(),
                stats.postprocess_time.as_nanos(),
                stats.verify_time.as_nanos(),
                stats.merge_time.as_nanos(),
                stats.knn_cache.hits,
                stats.knn_cache.misses,
                stats.timed_out,
            );
            if !stats.shard_times.is_empty() {
                line.push_str(",\"shards_ns\":[");
                for (i, t) in stats.shard_times.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{}", t.as_nanos());
                }
                line.push(']');
            }
            // EXPLAIN requests attach the stage funnel, so a retained slow
            // line answers "where did the candidates go" without a rerun.
            if let Some(f) = &stats.funnel {
                let _ = write!(line, ",\"funnel\":\"{}\"", f.summary());
            }
        }
        line.push('}');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collecting() -> (SlowQuerySink, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let lines = Arc::clone(&lines);
            Arc::new(move |line: &str| lines.lock().unwrap().push(line.to_string()))
                as SlowQuerySink
        };
        (sink, lines)
    }

    fn record(stats: Option<&SearchStats>) -> SlowQueryRecord<'_> {
        SlowQueryRecord {
            fingerprint: 0xE6F2_8F54_69D3_412F,
            k: 5,
            alpha: 0.8,
            epoch: 7,
            queue: Duration::from_nanos(100),
            search: Duration::from_nanos(900),
            cache: CacheOutcome::Miss,
            trace_id: Some(0xABCD),
            trace_depth: 3,
            stats,
        }
    }

    #[test]
    fn below_threshold_stays_silent() {
        let (sink, lines) = collecting();
        let log = SlowQueryLog::new(Duration::from_micros(10), sink);
        log.observe(&record(None));
        assert!(lines.lock().unwrap().is_empty());
    }

    #[test]
    fn slow_queries_emit_one_json_line() {
        let (sink, lines) = collecting();
        let log = SlowQueryLog::new(Duration::from_nanos(1000), sink);
        let stats = SearchStats {
            refine_time: Duration::from_nanos(700),
            postprocess_time: Duration::from_nanos(200),
            verify_time: Duration::from_nanos(150),
            merge_time: Duration::from_nanos(50),
            shard_times: vec![Duration::from_nanos(300), Duration::from_nanos(400)],
            ..Default::default()
        };
        log.observe(&record(Some(&stats)));
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"fingerprint\":\"0xe6f28f5469d3412f\""));
        assert!(line.contains("\"epoch\":7"));
        assert!(line.contains("\"total_ns\":1000"));
        assert!(line.contains("\"refine_ns\":700"));
        assert!(line.contains("\"verify_ns\":150"));
        assert!(line.contains("\"shards_ns\":[300,400]"));
        assert!(line.contains("\"timed_out\":false"));
        assert!(line.contains("\"trace_id\":\"0x000000000000abcd\""));
        assert!(line.contains("\"trace_depth\":3"));
    }

    #[test]
    fn explain_stats_attach_the_funnel_summary() {
        let (sink, lines) = collecting();
        let log = SlowQueryLog::new(Duration::ZERO, sink);
        let stats = SearchStats {
            funnel: Some(Box::new(koios_core::FunnelCounts {
                candidates_discovered: 4,
                returned: 2,
                ..Default::default()
            })),
            ..Default::default()
        };
        log.observe(&record(Some(&stats)));
        let lines = lines.lock().unwrap();
        assert!(lines[0].contains("\"funnel\":\"discovered=4"));
        assert!(lines[0].contains("returned=2\""));
    }

    #[test]
    fn untraced_services_omit_the_trace_fields() {
        let (sink, lines) = collecting();
        let log = SlowQueryLog::new(Duration::ZERO, sink);
        let mut r = record(None);
        r.trace_id = None;
        log.observe(&r);
        assert!(!lines.lock().unwrap()[0].contains("trace_id"));
    }

    #[test]
    fn cache_hits_log_without_stage_breakdown() {
        let (sink, lines) = collecting();
        let log = SlowQueryLog::new(Duration::ZERO, sink);
        let mut r = record(None);
        r.cache = CacheOutcome::Hit;
        log.observe(&r);
        let lines = lines.lock().unwrap();
        assert!(lines[0].contains("\"cache\":\"hit\""));
        assert!(!lines[0].contains("refine_ns"));
    }

    #[test]
    fn file_sink_appends_lines() {
        let dir = std::env::temp_dir().join("koios-slowlog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = SlowQueryLog::to_file(Duration::ZERO, &path).unwrap();
        log.observe(&record(None));
        log.observe(&record(None));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
