//! Service-level observability.

use crate::cache::CacheCounters;
use koios_core::SearchStats;
use koios_index::knn_cache::KnnCacheSnapshot;
use std::time::{Duration, SystemTime};

/// Provenance of a backend restored from a `koios-store` snapshot
/// ([`crate::SearchService::from_snapshot`]): which file, how big, and how
/// long the warm start took — what an operator checks to confirm a restart
/// really skipped the rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The snapshot file the backend was restored from.
    pub path: String,
    /// The snapshot's format version.
    pub format_version: u32,
    /// Total snapshot size in bytes.
    pub bytes: u64,
    /// Partitions restored (1 for a single-index layout).
    pub partitions: usize,
    /// Sets in the restored repository.
    pub num_sets: usize,
    /// Vocabulary size of the restored repository.
    pub vocab_size: usize,
    /// Length of the snapshot's delta chain (0 for a plain base — see
    /// `koios_store::append_delta`). Each delta was replayed onto the base
    /// during the load.
    pub deltas: usize,
    /// Highest epoch recorded in the delta chain (0 for a plain base); the
    /// restored engine resumes its epoch count from here.
    pub latest_epoch: u64,
    /// Wall time of read + restore (file to query-ready backend).
    pub load_time: Duration,
}

/// Aggregated counters for a [`crate::SearchService`] since construction
/// (or the last [`crate::SearchService::reset_stats`]).
///
/// `engine` folds every executed search's [`SearchStats`] together with
/// [`SearchStats::merge_sequential`], so its timings are *cumulative engine
/// time* (across all workers), not wall-clock time, and its memory report
/// is the per-label *peak* across searches (each search's footprint is a
/// transient snapshot, so peaks are meaningful where sums would read like
/// a leak).
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Requests received (including cache hits and rejections).
    pub queries: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that had to run a search.
    pub searched: u64,
    /// Requests refused without running a search: their deadline had
    /// already expired at admission, or their parameter overrides were
    /// invalid. Deadline expiries are *also* counted in `timed_out`.
    pub rejected: u64,
    /// Requests that observed a deadline expiry — rejected at admission
    /// (also in `rejected`) or expired mid-search (partial results, not
    /// cached). Always agrees with the number of responses whose
    /// `result.stats.timed_out` is set, so callers and operators see the
    /// same count.
    pub timed_out: u64,
    /// Number of index partitions the backend searches (1 for a single
    /// engine; see [`koios_core::EngineBackend`]).
    pub partitions: usize,
    /// Result-cache behaviour (hits/misses/evictions/invalidations).
    pub cache: CacheCounters,
    /// Shared token-level kNN cache state and behaviour (`None` when the
    /// service runs with `token_cache_bytes == 0`). Element-level hit
    /// counts also appear per search in `engine.knn_cache`; this snapshot
    /// adds the global view: bytes held, entries, evictions, generation.
    pub token_cache: Option<KnnCacheSnapshot>,
    /// Provenance of the snapshot the backend was warm-started from
    /// (`None` when the service was built from live structures). Updated
    /// by [`crate::SearchService::reload`].
    pub snapshot: Option<SnapshotInfo>,
    /// Epoch of the currently served backend: 0 at construction, +1 per
    /// applied [`crate::SearchService::ingest`] batch, strictly increasing
    /// across [`crate::SearchService::reload`]. Every search response's
    /// `stats.epoch` reports the epoch of the backend that served it.
    pub engine_epoch: u64,
    /// Sets appended by live ingestion since construction.
    pub sets_added: u64,
    /// Sets tombstoned by live ingestion since construction.
    pub sets_removed: u64,
    /// Folded per-search engine instrumentation.
    pub engine: SearchStats,
    /// Seconds since the service was constructed (monotone clock; not
    /// reset by [`crate::SearchService::reset_stats`], since the service
    /// did not restart).
    pub uptime_secs: f64,
    /// Wall-clock instant of service construction, for correlating
    /// restarts across machines (`UNIX_EPOCH` on a default snapshot).
    pub start_time: SystemTime,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            queries: 0,
            batches: 0,
            cache_hits: 0,
            searched: 0,
            rejected: 0,
            timed_out: 0,
            partitions: 0,
            cache: CacheCounters::default(),
            token_cache: None,
            snapshot: None,
            engine_epoch: 0,
            sets_added: 0,
            sets_removed: 0,
            engine: SearchStats::default(),
            uptime_secs: 0.0,
            start_time: SystemTime::UNIX_EPOCH,
        }
    }
}

impl ServiceStats {
    /// Fraction of non-bypassing requests answered from the result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Fraction of per-element kNN probes answered from the token cache
    /// (0 when the token cache is disabled or was never probed).
    pub fn token_cache_hit_rate(&self) -> f64 {
        self.token_cache
            .map(|tc| tc.counters.hit_rate())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = ServiceStats::default();
        assert_eq!(s.queries, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.engine.em_full, 0);
        assert_eq!(s.uptime_secs, 0.0);
        assert_eq!(s.start_time, SystemTime::UNIX_EPOCH);
    }
}
