//! Service requests and responses.

use koios_common::fingerprint::Fingerprinter;
use koios_common::TokenId;
use koios_core::{KoiosConfig, SearchResult, UbMode};
use koios_telemetry::trace::TraceContext;
use std::time::Duration;

/// One top-k query submitted to the service.
///
/// Requests inherit the service engine's [`KoiosConfig`] and may override
/// the per-query knobs (`k`, `α`, time budget) without rebuilding any
/// index. Tokens need not be sorted or deduplicated — the service
/// normalizes them, so permutations and duplicates of the same query
/// fingerprint identically.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// Query tokens (see `Repository::intern_query`).
    pub tokens: Vec<TokenId>,
    /// Override of the engine's `k`.
    pub k: Option<usize>,
    /// Override of the engine's `α`.
    pub alpha: Option<f64>,
    /// Per-request deadline budget, measured from batch submission; covers
    /// queue time *and* search time. Falls back to the service default.
    pub time_budget: Option<Duration>,
    /// Skip the result cache for this request (no lookup, no fill).
    pub bypass_cache: bool,
    /// Propagated trace context (parsed from a `traceparent`-style header
    /// by the HTTP front-end, or minted by an in-process caller). `None`
    /// lets the service mint its own trace id; the context's `sampled`
    /// flag force-retains the trace in the `GET /traces` ring.
    pub trace: Option<TraceContext>,
    /// EXPLAIN mode: collect the per-stage funnel report
    /// ([`koios_core::FunnelCounts`]) alongside the normal stats. Hits are
    /// byte-identical either way, so explain is deliberately *not* part of
    /// the cache key — but an explain request served from the cache carries
    /// no funnel (no engine work ran to count).
    pub explain: bool,
}

impl SearchRequest {
    /// A request for `tokens` with every knob inherited from the service.
    pub fn new(tokens: Vec<TokenId>) -> Self {
        SearchRequest {
            tokens,
            k: None,
            alpha: None,
            time_budget: None,
            bypass_cache: false,
            trace: None,
            explain: false,
        }
    }

    /// Overrides the number of results.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the similarity threshold `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Sets the request deadline budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Disables the result cache for this request.
    pub fn bypassing_cache(mut self) -> Self {
        self.bypass_cache = true;
        self
    }

    /// Attaches a propagated trace context (the request's span tree is
    /// recorded under `ctx.trace_id`, rooted at `ctx.parent_span`).
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Enables EXPLAIN mode: the response carries the funnel report.
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }
}

/// The full cache key: normalized query plus every engine parameter that
/// changes results. Stored next to the cached value so a fingerprint
/// collision can never surface a wrong result.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheKey {
    /// Sorted, deduplicated query tokens.
    pub tokens: Vec<TokenId>,
    /// Effective `k`.
    pub k: usize,
    /// Effective `α` (bit pattern — exact-value identity).
    pub alpha_bits: u64,
    /// Upper-bound mode discriminant.
    pub ub_mode: u8,
    /// Filter toggles (`em_early_termination`, `no_em_filter`,
    /// `iub_filter`, `verify_all`) packed into one byte.
    pub flags: u8,
    /// Corpus epoch the answer was computed against. Part of the key so a
    /// result cached before a live mutation (or a snapshot reload) can
    /// never be served — or refilled by an in-flight search — after the
    /// backend was swapped for a newer corpus version.
    pub epoch: u64,
}

impl Eq for CacheKey {}

fn ub_mode_discriminant(mode: UbMode) -> u8 {
    match mode {
        UbMode::SoundRowMax => 0,
        UbMode::PaperGreedy => 1,
    }
}

impl CacheKey {
    /// Builds the key for a normalized query under an effective config.
    pub fn new(normalized_tokens: Vec<TokenId>, cfg: &KoiosConfig) -> Self {
        let flags = (cfg.em_early_termination as u8)
            | (cfg.no_em_filter as u8) << 1
            | (cfg.iub_filter as u8) << 2
            | (cfg.verify_all as u8) << 3;
        CacheKey {
            tokens: normalized_tokens,
            k: cfg.k,
            alpha_bits: cfg.alpha.to_bits(),
            ub_mode: ub_mode_discriminant(cfg.ub_mode),
            flags,
            epoch: cfg.epoch,
        }
    }

    /// The stable 64-bit fingerprint of this key.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u32_ids(self.tokens.iter().map(|t| t.0));
        fp.write_usize(self.k);
        fp.write_u64(self.alpha_bits);
        fp.write_u32(self.ub_mode as u32);
        fp.write_u32(self.flags as u32);
        fp.write_u64(self.epoch);
        fp.finish()
    }
}

/// How the cache participated in answering a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// The cache was probed without success. Executed requests searched
    /// (and, when complete, stored the result); a deadline-rejected
    /// request also reports `Miss`, since the probe runs before admission
    /// control.
    Miss,
    /// The cache was never consulted because the request opted out via
    /// [`SearchRequest::bypass_cache`].
    Bypassed,
    /// The cache was never consulted because the request was rejected
    /// before the probe (invalid parameter overrides) — reported truthfully
    /// instead of masquerading as [`CacheOutcome::Bypassed`], so
    /// per-outcome metrics never conflate deliberate bypasses with
    /// rejections.
    Rejected,
}

/// The service's answer to one [`SearchRequest`].
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The search result. For cache hits the hits are the cached ones and
    /// the stats are zeroed (no engine work happened). For rejected
    /// requests the hits are empty; deadline rejections additionally set
    /// `stats.timed_out` (invalid-parameter rejections do not, and report
    /// [`CacheOutcome::Rejected`]).
    pub result: SearchResult,
    /// Cache participation.
    pub cache: CacheOutcome,
    /// The request was refused without running: its deadline had already
    /// expired when a worker picked it up (admission control), or its
    /// parameter overrides were invalid.
    pub rejected: bool,
    /// Time between batch submission and a worker starting the request.
    pub queue_time: Duration,
    /// Id of the span tree this request recorded (`None` when the service
    /// runs without tracing). Resolve it via `GET /traces?id=…` — if the
    /// tail sampler retained the trace.
    pub trace_id: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tokens: Vec<u32>, cfg: &KoiosConfig) -> CacheKey {
        CacheKey::new(tokens.into_iter().map(TokenId).collect(), cfg)
    }

    #[test]
    fn fingerprint_is_parameter_sensitive() {
        let cfg = KoiosConfig::new(5, 0.8);
        let base = key(vec![1, 2, 3], &cfg).fingerprint();
        assert_eq!(base, key(vec![1, 2, 3], &cfg).fingerprint());
        assert_ne!(base, key(vec![1, 2, 4], &cfg).fingerprint());
        assert_ne!(
            base,
            key(vec![1, 2, 3], &KoiosConfig::new(6, 0.8)).fingerprint()
        );
        assert_ne!(
            base,
            key(vec![1, 2, 3], &KoiosConfig::new(5, 0.81)).fingerprint()
        );
        let paper = KoiosConfig::new(5, 0.8).with_ub_mode(UbMode::PaperGreedy);
        assert_ne!(base, key(vec![1, 2, 3], &paper).fingerprint());
        let baseline = KoiosConfig::new(5, 0.8).baseline();
        assert_ne!(base, key(vec![1, 2, 3], &baseline).fingerprint());
        // A mutated corpus (new epoch) invalidates every earlier entry.
        let bumped = KoiosConfig::new(5, 0.8).with_epoch(1);
        assert_ne!(base, key(vec![1, 2, 3], &bumped).fingerprint());
    }

    #[test]
    fn request_builder_sets_fields() {
        let r = SearchRequest::new(vec![TokenId(1)])
            .with_k(3)
            .with_alpha(0.5)
            .with_time_budget(Duration::from_millis(10))
            .bypassing_cache()
            .with_explain(true);
        assert_eq!(r.k, Some(3));
        assert_eq!(r.alpha, Some(0.5));
        assert_eq!(r.time_budget, Some(Duration::from_millis(10)));
        assert!(r.bypass_cache);
        assert!(r.explain);
    }
}
